"""HTAP mixed workload: the paper's Fig. 1 scenario, both ways.

Part A runs the scenario on the *performance model* at paper scale:
an S/4HANA-style OLTP query against the ACDOCA catalog, concurrent with
an OLAP column scan, with and without cache partitioning — the paper's
headline chart.

Part B runs the same *kind* of workload functionally on the real
engine at reduced scale: OLTP point selects against a wide table while
an OLAP scan executes, demonstrating that partitioned execution returns
identical query results while the scheduler programs CAT masks.

Run: python examples/htap_mixed_workload.py
"""

import numpy as np

from repro import CachePartitioning, Database
from repro.experiments import fig01_teaser
from repro.experiments.reporting import format_table
from repro.workloads.s4hana import build_functional_acdoca


def part_a_model() -> None:
    print("Part A — modelled at paper scale (Fig. 1)\n")
    result = fig01_teaser.run()
    print(format_table(result.headers, result.rows))
    print()


def part_b_functional() -> None:
    print("Part B — functional HTAP execution at reduced scale\n")
    table, data = build_functional_acdoca(rows=20_000,
                                          payload_columns=6)
    db = Database()
    db.tables[table.name] = table  # adopt the prebuilt wide table

    db.execute("CREATE COLUMN TABLE FACTS ( M INT )")
    db.load("FACTS", {
        "M": np.random.default_rng(9).integers(1, 10**5, size=200_000)
    })

    key = int(data["K0"][123])
    oltp_sql = "SELECT C00, C01 FROM ACDOCA WHERE K0 = ?"
    olap_sql = "SELECT COUNT(*) FROM FACTS WHERE FACTS.M > ?"

    baseline_oltp = db.execute(oltp_sql, [key])
    baseline_olap = db.execute(olap_sql, [50_000])

    with CachePartitioning(db):
        for _ in range(3):  # interleave OLTP and OLAP statements
            partitioned_olap = db.execute(olap_sql, [50_000])
            partitioned_oltp = db.execute(oltp_sql, [key])

    assert partitioned_olap.matches == baseline_olap.matches
    assert np.array_equal(partitioned_oltp["C00"],
                          baseline_oltp["C00"])

    olap_masks = {
        record.mask
        for record in db.scheduler.dispatch_log
        if record.pool == "olap" and record.job_name == "column_scan"
    }
    oltp_masks = {
        record.mask
        for record in db.scheduler.dispatch_log
        if record.pool == "oltp"
    }
    print(f"  OLTP rows fetched: {len(partitioned_oltp['C00'])} "
          f"(identical with and without partitioning)")
    print(f"  OLAP matches:      {partitioned_olap.matches}")
    print(f"  scan CAT masks seen:  "
          f"{sorted(hex(m) for m in olap_masks)}")
    print(f"  OLTP pool masks seen: "
          f"{sorted(hex(m) for m in oltp_masks)} "
          "(dedicated pool keeps the full cache)")
    stats = db.controller.stats
    print(f"  kernel calls: {stats.kernel_calls} of "
          f"{stats.associations_requested} associations "
          f"({stats.elided_calls} elided)")


def main() -> None:
    part_a_model()
    part_b_functional()


if __name__ == "__main__":
    main()
