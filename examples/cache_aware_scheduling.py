"""Cache-aware co-scheduling: the paper's future-work idea, working.

The paper closes (Sec. VIII) by suggesting that cache allocation should
inform *scheduling*: co-run polluting operators with each other, and
let cache-sensitive queries run protected.  This example

1. classifies a mixed batch of queries *online* (CMT-style probing —
   no operator knowledge needed),
2. builds naive (FCFS) and cache-aware schedules,
3. simulates both and reports the makespan win.

Run: python examples/cache_aware_scheduling.py
"""

from repro.core.online import OnlineClassifier
from repro.core.scheduling import CacheAwareScheduler, ScheduledQuery
from repro.experiments.reporting import format_table
from repro.workloads.microbench import DICT_40_MIB, query1, query2, query3


def main() -> None:
    classifier = OnlineClassifier()
    scheduler = CacheAwareScheduler()
    workers = scheduler.spec.cores

    profiles = [
        query1().profile(name="scan_1"),
        query2(DICT_40_MIB, 10**4).profile(workers, name="agg_small"),
        query1().profile(name="scan_2"),
        query2(DICT_40_MIB, 10**5).profile(workers, name="agg_large"),
        query3(10**6).profile(workers, name="join_tiny_vector"),
        query3(10**8).profile(workers, name="join_big_vector"),
    ]

    print("Step 1: online CUID classification (probe runs)\n")
    batch = []
    for profile in profiles:
        outcome = classifier.classify(profile)
        batch.append(
            ScheduledQuery(profile.name, profile, outcome.cuid)
        )
        print(f"  {profile.name:<18} -> {outcome.cuid.value:<10} "
              f"(throughput at 10% LLC: "
              f"{outcome.restricted_ratio:.2f}x of full)")

    print("\nStep 2: schedules\n")
    outcomes = scheduler.compare(batch)
    rows = []
    for strategy, outcome in outcomes.items():
        for index, phase in enumerate(outcome.phases):
            rows.append((
                strategy,
                index,
                " + ".join(q.name for q in phase.queries),
                "partitioned" if phase.partitioned else "shared LLC",
                round(phase.duration_s, 3),
            ))
    print(format_table(
        ("strategy", "phase", "co-run", "cache", "seconds"), rows
    ))

    naive = outcomes["naive"].makespan_s
    aware = outcomes["cache_aware"].makespan_s
    print(f"\nMakespan: naive {naive:.2f}s, cache-aware {aware:.2f}s "
          f"-> {naive / aware:.2f}x faster")
    print("(Paper Sec. VIII: 'co-run operators with high cache "
          "pollution characteristics, but let cache-sensitive queries "
          "rather run alone.')")


if __name__ == "__main__":
    main()
