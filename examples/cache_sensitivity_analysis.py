"""Deriving a partitioning scheme from micro-benchmarks (Sec. IV -> V-B).

Reproduces the paper's methodology end to end:

1. sweep the LLC allocation for each operator (the paper's Figs. 4-6),
2. classify each operator's cache sensitivity,
3. derive a partitioning scheme automatically with the advisor —
   recovering the paper's 10 % / 100 % / 60 % scheme from data rather
   than by hand.

Run: python examples/cache_sensitivity_analysis.py
"""

from repro import analyze_sweep, derive_policy
from repro.experiments.reporting import format_table
from repro.workloads.microbench import (
    DICT_40_MIB,
    query1,
    query2,
    query3,
)
from repro.workloads.mixed import ConcurrencyExperiment

SWEEP_WAYS = [2, 4, 8, 12, 16, 20]


def main() -> None:
    experiment = ConcurrencyExperiment()
    workers = experiment.spec.cores

    operators = {
        "column_scan": query1().profile(),
        "aggregation_40mib": query2(DICT_40_MIB, 10**5).profile(workers),
        "join_1e8_keys": query3(10**8).profile(workers),
    }

    print("Step 1: LLC-allocation sweeps (normalized throughput)\n")
    sweeps = {}
    rows = []
    for name, profile in operators.items():
        sweep = experiment.llc_sweep(profile, ways_list=SWEEP_WAYS)
        sweeps[name] = sweep
        for fraction, normalized in sweep:
            rows.append((name, f"{fraction:.0%}", round(normalized, 3)))
    print(format_table(("operator", "llc_fraction", "normalized"), rows))

    print("\nStep 2: sensitivity classification\n")
    reports = []
    for name, sweep in sweeps.items():
        report = analyze_sweep(name, sweep)
        reports.append(report)
        print(f"  {name}: {report.sensitivity.value} "
              f"(min safe fraction {report.min_safe_fraction:.0%}, "
              f"worst degradation {report.worst_degradation:.0%})")

    print("\nStep 3: derived partitioning scheme\n")
    scheme = derive_policy(reports, name="derived_from_microbench")
    print(f"  polluting operators  -> {scheme.polluting_fraction:.0%} "
          "of the LLC")
    print(f"  sensitive operators  -> {scheme.sensitive_fraction:.0%}")
    print(f"  adaptive (LLC-sized) -> "
          f"{scheme.adaptive_sensitive_fraction:.0%}")
    masks = scheme.masks(experiment.spec)
    print(f"  bitmasks: " + ", ".join(
        f"{kind}={mask:#x}" for kind, mask in masks.items()
    ))
    print("\n(The paper's hand-derived scheme is 10 % / 100 % / 60 % — "
          "masks 0x3 / 0xfffff / 0xfff.)")


if __name__ == "__main__":
    main()
