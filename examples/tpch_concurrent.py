"""TPC-H under cache pollution (the paper's Fig. 11 scenario).

Runs each TPC-H query (SF 100 catalog) concurrently with a polluting
column scan on the performance model, with and without the paper's
partitioning scheme, and reports which queries profit — Q1, Q7, Q8 and
Q9, the plans that decode the 29 MiB ``L_EXTENDEDPRICE`` dictionary.

Run: python examples/tpch_concurrent.py [--fast]
"""

import sys

from repro.experiments import fig11_tpch
from repro.experiments.reporting import format_table


def main(fast: bool = False) -> None:
    result = fig11_tpch.run(fast=fast)

    rows = []
    off = {}
    for name, label, tpch_norm, scan_norm in result.rows:
        if label == "off":
            off[name] = (tpch_norm, scan_norm)
        else:
            off_tpch, off_scan = off[name]
            rows.append((
                name,
                round(off_tpch, 3),
                round(tpch_norm, 3),
                f"{tpch_norm - off_tpch:+.3f}",
                round(off_scan, 3),
                round(scan_norm, 3),
            ))
    print(format_table(
        ("query", "off", "partitioned", "gain", "scan_off",
         "scan_partitioned"),
        rows,
        title="TPC-H || column scan, normalized throughput",
    ))

    gains = fig11_tpch.improvements(result)
    winners = sorted(gains, key=gains.get, reverse=True)[:4]
    print("\nLargest partitioning gains: " + ", ".join(
        f"{name} ({gains[name]:+.3f})" for name in winners
    ))
    print("Paper Sec. VI-D: Q1, Q7, Q8 and Q9 profit most — their "
          "plans decode the 29 MiB L_EXTENDEDPRICE dictionary.")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
