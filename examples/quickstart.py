"""Quickstart: a cache-partitioned in-memory DBMS in ~40 lines.

Creates the paper's three micro-benchmark tables (Fig. 3), runs the
three queries (Fig. 2) through the SQL engine, then enables the paper's
cache-partitioning scheme and shows how the engine maps each operator's
cache-usage identifier (CUID) to a CAT bitmask — including the
compare-before-set syscall elision.

Run: python examples/quickstart.py
"""

from repro import CachePartitioning, Database
from repro.storage.datagen import DataGenerator

ROWS = 100_000


def main() -> None:
    db = Database()
    generator = DataGenerator(seed=7)

    # --- DDL (paper Fig. 3) -------------------------------------------
    db.execute("CREATE COLUMN TABLE A ( X INT )")
    db.execute("CREATE COLUMN TABLE B ( V INT, G INT )")
    db.execute("CREATE COLUMN TABLE R ( P INT, PRIMARY KEY(P) )")
    db.execute("CREATE COLUMN TABLE S ( F INT )")

    # --- load ---------------------------------------------------------
    db.load("A", {"X": generator.scan_table(ROWS, distinct=10_000)})
    db.load("B", generator.aggregation_table(ROWS, 2_000, 50))
    primary, foreign = generator.join_tables(5_000, ROWS)
    db.load("R", {"P": primary})
    db.load("S", {"F": foreign})

    # --- the paper's queries (Fig. 2) ---------------------------------
    scan = db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [5_000])
    print(f"Query 1 (column scan):      {scan.matches} matches "
          f"(selectivity {scan.selectivity:.2f})")

    agg = db.execute("SELECT MAX(B.V), B.G FROM B GROUP BY B.G")
    print(f"Query 2 (aggregation):      {agg.num_groups} groups, "
          f"max of first group = {agg.aggregates[0]}")

    join = db.execute("SELECT COUNT(*) FROM R, S WHERE R.P = S.F")
    print(f"Query 3 (foreign key join): {join.matches} matches of "
          f"{join.probes} probes")

    # --- enable cache partitioning (the paper's feature) --------------
    partitioning = CachePartitioning(db)  # 10 % / 100 % / 60 % scheme
    with partitioning:
        print("\nWith cache partitioning enabled:")
        for sql, params in (
            ("SELECT COUNT(*) FROM A WHERE A.X > ?", [5_000]),
            ("SELECT MAX(B.V), B.G FROM B GROUP BY B.G", []),
            ("SELECT COUNT(*) FROM R, S WHERE R.P = S.F", []),
        ):
            print(f"  {db.explain(sql, params)}")
            db.execute(sql, params)

        stats = db.controller.stats
        print(f"\nCAT associations requested: "
              f"{stats.associations_requested}, kernel calls: "
              f"{stats.kernel_calls} (elided: {stats.elided_calls})")
        print(f"resctrl groups: {db.resctrl_fs.groups()}")


if __name__ == "__main__":
    main()
