"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlParseError
from repro.sql.lexer import Token, tokenize


class TestTokenKinds:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From")
        assert tokens[0] == Token("keyword", "SELECT", 0)
        assert tokens[1].value == "FROM"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable my_col")
        assert tokens[0] == Token("ident", "MyTable", 0)
        assert tokens[1].value == "my_col"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].kind == "number"
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"

    def test_parameter(self):
        tokens = tokenize("x > ?")
        assert tokens[2].kind == "param"

    def test_two_char_operators(self):
        tokens = tokenize("a >= b <= c <> d")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == [">=", "<=", "<>"]

    def test_symbols(self):
        tokens = tokenize("( ) , * . ;")
        assert [t.value for t in tokens] == ["(", ")", ",", "*", ".", ";"]


class TestComments:
    def test_line_comment_skipped(self):
        tokens = tokenize("-- Query 1: Column Scan\nSELECT")
        assert len(tokens) == 1
        assert tokens[0].value == "SELECT"

    def test_comment_at_end(self):
        assert tokenize("SELECT -- trailing")[0].value == "SELECT"


class TestPaperQueries:
    """The exact SQL of paper Fig. 2 must tokenize."""

    @pytest.mark.parametrize("sql", [
        "SELECT COUNT(*) FROM A WHERE A.X > ?;",
        "SELECT MAX(B.V), B.G FROM B GROUP BY B.G;",
        "SELECT COUNT(*) FROM R, S WHERE R.P = S.F;",
        "CREATE COLUMN TABLE A( X INT );",
        "CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));",
    ])
    def test_tokenizes(self, sql):
        tokens = tokenize(sql)
        assert tokens  # non-empty and no exception

    def test_invalid_character(self):
        with pytest.raises(SqlParseError):
            tokenize("SELECT @")
