"""Tests for the model calibration constants."""

import pytest

from repro.errors import ModelError
from repro.model.calibration import Calibration, DEFAULT_CALIBRATION
from repro.units import MiB


class TestPaperDerivedSizes:
    def test_dictionary_sizes_match_paper(self):
        # Sec. IV-B: 10^6 distinct INTs -> ~4 MiB; 10^7 -> 40 MiB;
        # 10^8 -> 400 MiB.
        cal = DEFAULT_CALIBRATION
        assert cal.dictionary_bytes(10**6) == pytest.approx(
            4 * MiB, rel=0.05
        )
        assert cal.dictionary_bytes(10**7) == pytest.approx(
            40 * MiB, rel=0.05
        )
        assert cal.dictionary_bytes(10**8) == pytest.approx(
            400 * MiB, rel=0.05
        )

    def test_bit_vector_sizes_match_paper(self):
        # Sec. IV-C: 10^8 keys -> 12.5 MB bit vector.
        cal = DEFAULT_CALIBRATION
        assert cal.bit_vector_bytes(10**8) == 12_500_000
        assert cal.bit_vector_bytes(10**6) == 125_000

    def test_hash_tables_at_1e5_groups_are_llc_comparable(self, spec):
        # Sec. IV-B: at 10^5 groups the hash tables occupy ~the LLC.
        cal = DEFAULT_CALIBRATION
        size = cal.hash_table_bytes(10**5, workers=22)
        assert 0.5 * spec.llc.size_bytes <= size <= 1.5 * spec.llc.size_bytes

    def test_hash_tables_at_1e4_groups_fit_l2(self, spec):
        # Sec. VI-B: up to 10^4 groups the tables mostly fit in L2.
        cal = DEFAULT_CALIBRATION
        per_worker = cal.hash_table_bytes(10**4, workers=22) / 23
        assert per_worker <= 2 * spec.l2.size_bytes


class TestValidation:
    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ModelError):
            Calibration(dict_entry_bytes=0)

    def test_rejects_smt_below_one(self):
        with pytest.raises(ModelError):
            Calibration(smt_compute_factor=0.9)

    def test_rejects_bad_stream_hit_fraction(self):
        with pytest.raises(ModelError):
            Calibration(stream_llc_hit_fraction=1.0)

    def test_helper_validation(self):
        cal = DEFAULT_CALIBRATION
        with pytest.raises(ModelError):
            cal.dictionary_bytes(0)
        with pytest.raises(ModelError):
            cal.hash_table_bytes(0, 1)
        with pytest.raises(ModelError):
            cal.bit_vector_bytes(-5)
