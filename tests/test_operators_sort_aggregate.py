"""Tests for the sort-based aggregation comparator."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.operators.aggregate import GroupedAggregation
from repro.operators.base import CacheUsage
from repro.operators.sort_aggregate import SortAggregation
from repro.storage.table import ColumnTable, Schema, SchemaColumn


def make_table(values: np.ndarray, groups: np.ndarray) -> ColumnTable:
    table = ColumnTable(Schema("B", (SchemaColumn("V"),
                                     SchemaColumn("G"))))
    table.load({"V": values, "G": groups})
    return table


class TestExecution:
    @pytest.mark.parametrize("function", ["MAX", "MIN", "SUM", "COUNT"])
    def test_matches_hash_aggregation(self, rng, function):
        """Sort- and hash-based aggregation must agree exactly."""
        values = rng.integers(1, 300, size=3000)
        groups = rng.integers(1, 25, size=3000)
        table = make_table(values, groups)
        sort_result = SortAggregation(table, "V", "G",
                                      function).execute()
        hash_result = GroupedAggregation(table, "V", "G", function,
                                         workers=3).execute()
        assert np.array_equal(sort_result.groups, hash_result.groups)
        assert np.array_equal(sort_result.aggregates,
                              hash_result.aggregates)

    def test_single_group(self, rng):
        values = rng.integers(1, 100, size=50)
        table = make_table(values, np.full(50, 7))
        result = SortAggregation(table, "V", "G", "SUM").execute()
        assert result.num_groups == 1
        assert result.aggregates[0] == values.sum()

    def test_unsupported_function(self, rng):
        table = make_table(np.array([1]), np.array([1]))
        with pytest.raises(StorageError):
            SortAggregation(table, "V", "G", "AVG2")


class TestClassification:
    def test_sort_aggregation_is_polluting(self, rng):
        table = make_table(np.array([1]), np.array([1]))
        operator = SortAggregation(table, "V", "G")
        assert operator.cache_usage() is CacheUsage.POLLUTING


class TestProfile:
    def test_merge_passes_grow_with_rows(self):
        small = SortAggregation.merge_passes(1e6, workers=22)
        large = SortAggregation.merge_passes(1e10, workers=22)
        assert large >= small >= 1

    def test_profile_streams_more_than_hash(self):
        sort_profile = SortAggregation.profile_from_stats(
            1e9, 10**7, 10**5, workers=22
        )
        hash_profile = GroupedAggregation.profile_from_stats(
            1e9, 10**7, 10**5, workers=22
        )
        assert (
            sort_profile.stream_bytes_per_tuple
            > hash_profile.stream_bytes_per_tuple
        )

    def test_profile_has_no_hash_table(self):
        profile = SortAggregation.profile_from_stats(
            1e9, 10**7, 10**5, workers=22
        )
        names = {region.name for region in profile.regions}
        assert "hash_table" not in names
        assert "run_buffers" in names


class TestExtensionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_sort_vs_hash
        return ext_sort_vs_hash.run()

    def test_sort_more_pollution_robust(self, result):
        from repro.experiments.ext_sort_vs_hash import throughputs
        table = throughputs(result)
        hash_drop = table[("hash_agg", "with_scan")] / table[
            ("hash_agg", "isolated")
        ]
        sort_drop = table[("sort_agg", "with_scan")] / table[
            ("sort_agg", "isolated")
        ]
        assert sort_drop > hash_drop + 0.05

    def test_partitioning_restores_parity(self, result):
        from repro.experiments.ext_sort_vs_hash import throughputs
        table = throughputs(result)
        iso_ratio = table[("hash_agg", "isolated")] / table[
            ("sort_agg", "isolated")
        ]
        part_ratio = table[
            ("hash_agg", "with_scan_partitioned")
        ] / table[("sort_agg", "with_scan_partitioned")]
        assert part_ratio == pytest.approx(iso_ratio, abs=0.15)

    def test_partitioning_helps_both(self, result):
        from repro.experiments.ext_sort_vs_hash import throughputs
        table = throughputs(result)
        for algorithm in ("hash_agg", "sort_agg"):
            assert (
                table[(algorithm, "with_scan_partitioned")]
                > table[(algorithm, "with_scan")]
            )
