"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheSpec, SystemSpec
from repro.units import KiB, MiB


@pytest.fixture
def spec() -> SystemSpec:
    """The paper's machine (Xeon E5-2699 v4)."""
    return SystemSpec()


@pytest.fixture
def small_spec() -> SystemSpec:
    """A scaled-down machine for fast trace-driven simulation.

    Keeps the LLC's 20-way associativity (CAT semantics) but shrinks
    capacities ~256x, so traces of a few hundred thousand accesses
    exercise the same capacity ratios as the real machine.
    """
    return SystemSpec(
        cores=4,
        l1d=CacheSpec(4 * KiB, 4),
        l2=CacheSpec(16 * KiB, 8),
        llc=CacheSpec(220 * KiB, 20),
    )


@pytest.fixture
def tiny_cache_spec() -> CacheSpec:
    """A minimal cache for exact, hand-checkable LRU behaviour."""
    return CacheSpec(size_bytes=8 * 64 * 4, ways=4, line_bytes=64)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)
