"""Tests for the column scan operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.operators.base import CacheUsage
from repro.operators.scan import ColumnScan
from repro.storage.datagen import DataGenerator
from repro.storage.table import ColumnTable, Schema, SchemaColumn


def make_table(values: np.ndarray) -> ColumnTable:
    table = ColumnTable(Schema("A", (SchemaColumn("X"),)))
    table.load({"X": values})
    return table


class TestExecution:
    @pytest.mark.parametrize("op,expected_fn", [
        (">", lambda x, b: x > b),
        (">=", lambda x, b: x >= b),
        ("<", lambda x, b: x < b),
        ("<=", lambda x, b: x <= b),
        ("=", lambda x, b: x == b),
    ])
    def test_counts_match_numpy(self, rng, op, expected_fn):
        values = rng.integers(1, 1000, size=20_000)
        table = make_table(values)
        scan = ColumnScan(table, "X", op, 500)
        result = scan.execute()
        assert result.matches == int(expected_fn(values, 500).sum())
        assert result.rows_scanned == 20_000

    def test_bound_outside_domain(self, rng):
        values = rng.integers(1, 100, size=1000)
        table = make_table(values)
        assert ColumnScan(table, "X", ">", 1000).execute().matches == 0
        assert ColumnScan(table, "X", ">", 0).execute().matches == 1000

    def test_matching_rows(self, rng):
        values = rng.integers(1, 50, size=500)
        table = make_table(values)
        rows = ColumnScan(table, "X", ">", 25).matching_rows()
        assert np.array_equal(rows, np.nonzero(values > 25)[0])

    def test_selectivity(self, rng):
        values = np.arange(1, 101)
        table = make_table(values)
        result = ColumnScan(table, "X", ">", 50).execute()
        assert result.selectivity == pytest.approx(0.5)

    def test_unsupported_operator(self, rng):
        table = make_table(np.array([1, 2]))
        with pytest.raises(StorageError):
            ColumnScan(table, "X", "!=", 1)


class TestClassification:
    def test_scan_is_polluting(self, rng):
        table = make_table(np.array([1, 2, 3]))
        assert ColumnScan(table, "X", ">", 1).cache_usage() is (
            CacheUsage.POLLUTING
        )


class TestProfile:
    def test_paper_stream_width(self):
        # 10^9 rows, 10^6 distinct -> 20 bits -> 2.5 B/tuple.
        profile = ColumnScan.profile_from_stats(1e9, 10**6)
        assert profile.stream_bytes_per_tuple == pytest.approx(
            2.5, rel=0.01
        )
        assert not profile.regions  # no dictionary access during scan

    def test_profile_from_instance(self, rng):
        table = make_table(rng.integers(1, 100, size=1000))
        profile = ColumnScan(table, "X", ">", 10).access_profile(4)
        assert profile.tuples == 1000


class TestAgainstGroundTruthProperty:
    @given(
        values=st.lists(st.integers(1, 1000), min_size=1, max_size=500),
        bound=st.integers(0, 1001),
    )
    @settings(max_examples=100, deadline=None)
    def test_count_matches_for_any_data(self, values, bound):
        array = np.array(values)
        table = make_table(array)
        result = ColumnScan(table, "X", ">", bound).execute()
        assert result.matches == int((array > bound).sum())
