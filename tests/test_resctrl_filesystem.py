"""Tests for the emulated resctrl filesystem."""

import pytest

from repro.errors import ResctrlError
from repro.hardware.cat import CatController
from repro.resctrl.filesystem import ROOT_GROUP, ResctrlFilesystem


@pytest.fixture
def fs(spec) -> ResctrlFilesystem:
    return ResctrlFilesystem(CatController(spec))


class TestGroups:
    def test_root_group_exists(self, fs):
        assert ROOT_GROUP in fs.groups()

    def test_mkdir_creates_group_with_full_mask(self, fs):
        fs.mkdir("scans")
        assert fs.read_schemata("scans") == "L3:0=fffff"

    def test_mkdir_duplicate_rejected(self, fs):
        fs.mkdir("g")
        with pytest.raises(ResctrlError):
            fs.mkdir("g")

    def test_mkdir_invalid_name(self, fs):
        with pytest.raises(ResctrlError):
            fs.mkdir("a/b")
        with pytest.raises(ResctrlError):
            fs.mkdir("")

    def test_clos_exhaustion(self, fs, spec):
        for index in range(spec.cat_classes - 1):  # CLOS 0 is the root
            fs.mkdir(f"g{index}")
        with pytest.raises(ResctrlError):
            fs.mkdir("too_many")

    def test_rmdir_frees_clos(self, fs, spec):
        for index in range(spec.cat_classes - 1):
            fs.mkdir(f"g{index}")
        fs.rmdir("g0")
        fs.mkdir("replacement")  # reuses the freed CLOS

    def test_rmdir_root_rejected(self, fs):
        with pytest.raises(ResctrlError):
            fs.rmdir(ROOT_GROUP)

    def test_rmdir_moves_tasks_to_root(self, fs):
        fs.mkdir("g")
        fs.write_tasks("g", 1234)
        fs.rmdir("g")
        assert fs.group_of_task(1234) == ROOT_GROUP


class TestSchemata:
    def test_write_schemata_programs_cat(self, fs):
        group = fs.mkdir("scans")
        fs.write_schemata("scans", "L3:0=3")
        assert fs.cat.clos_mask(group.clos) == 0x3

    def test_kernel_validates_contiguity(self, fs):
        fs.mkdir("g")
        with pytest.raises(ResctrlError):
            fs.write_schemata("g", "L3:0=5")

    def test_rejects_wrong_domain(self, fs):
        fs.mkdir("g")
        with pytest.raises(ResctrlError):
            fs.write_schemata("g", "L3:1=f")

    def test_unknown_group(self, fs):
        with pytest.raises(ResctrlError):
            fs.write_schemata("nope", "L3:0=f")


class TestTasks:
    def test_task_moves_between_groups(self, fs):
        fs.mkdir("a")
        fs.mkdir("b")
        fs.write_tasks("a", 42)
        assert fs.group_of_task(42) == "a"
        fs.write_tasks("b", 42)
        assert fs.group_of_task(42) == "b"
        assert 42 not in fs.read_tasks("a")
        assert 42 in fs.read_tasks("b")

    def test_unknown_task_is_in_root(self, fs):
        assert fs.group_of_task(999) == ROOT_GROUP

    def test_negative_tid_rejected(self, fs):
        fs.mkdir("g")
        with pytest.raises(ResctrlError):
            fs.write_tasks("g", -1)


class TestCpus:
    def test_write_and_read_cpus(self, fs):
        fs.mkdir("g")
        fs.write_cpus("g", {0, 1})
        assert fs.read_cpus("g") == {0, 1}

    def test_rejects_unknown_cpu(self, fs, spec):
        fs.mkdir("g")
        with pytest.raises(ResctrlError):
            fs.write_cpus("g", {spec.cores})


class TestContextSwitchHook:
    def test_switch_programs_core_clos(self, fs):
        group = fs.mkdir("scans")
        fs.write_schemata("scans", "L3:0=3")
        fs.write_tasks("scans", 1234)
        fs.on_context_switch(core=3, tid=1234)
        assert fs.cat.core_clos(3) == group.clos
        assert fs.cat.core_mask(3) == 0x3

    def test_switch_to_root_task_restores_clos0(self, fs):
        fs.mkdir("scans")
        fs.write_schemata("scans", "L3:0=3")
        fs.write_tasks("scans", 1)
        fs.on_context_switch(0, 1)
        fs.on_context_switch(0, 2)  # task 2 is in the root group
        assert fs.cat.core_clos(0) == 0
