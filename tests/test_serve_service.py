"""Integration tests: the discrete-event query service."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import QueryService, ServiceConfig
from repro.serve.controller import AdaptiveController


def _config(**overrides):
    base = dict(
        profile="poisson",
        policy="none",
        mix="olap",
        duration_s=4.0,
        rate_per_s=8.0,
        seed=7,
    )
    base.update(overrides)
    return ServiceConfig(**base)


@pytest.fixture(scope="module")
def rate_cache():
    """Shared composition->rates cache: identical compositions across
    the module's runs are solved once."""
    return {}


@pytest.fixture(scope="module")
def baseline_report(rate_cache):
    return QueryService(_config(), rate_cache=rate_cache).run()


class TestConservation:
    def test_every_arrival_accounted_for(self, baseline_report):
        report = baseline_report
        assert report.arrived > 0
        # The run drains after the horizon: everything not shed
        # eventually completes.
        assert report.completed + report.shed == report.arrived

    def test_events_balanced(self, baseline_report):
        events = baseline_report.events
        assert events["pushed"] == events["popped"]

    def test_clock_never_precedes_horizon_work(self, baseline_report):
        assert baseline_report.end_time_s > 0.0


class TestDeterminism:
    def test_same_config_byte_identical_report(self, rate_cache):
        first = QueryService(_config(), rate_cache=rate_cache).run()
        second = QueryService(_config(), rate_cache=rate_cache).run()
        assert first.to_json() == second.to_json()

    def test_cold_cache_equals_warm_cache(self, rate_cache):
        warm = QueryService(_config(), rate_cache=rate_cache).run()
        cold = QueryService(_config(), rate_cache={}).run()
        payload_warm = warm.to_dict()
        payload_cold = cold.to_dict()
        # Cache hit counts differ by construction; everything
        # observable about the simulation must not.
        for payload in (payload_warm, payload_cold):
            payload.pop("rate_cache_hits")
            payload.pop("rate_solves")
        assert payload_warm == payload_cold

    def test_different_seed_different_run(self, rate_cache):
        a = QueryService(
            _config(seed=1), rate_cache=rate_cache
        ).run()
        b = QueryService(
            _config(seed=2), rate_cache=rate_cache
        ).run()
        assert a.to_json() != b.to_json()


class TestQueueingAndShedding:
    def test_overload_sheds(self, rate_cache):
        report = QueryService(
            _config(rate_per_s=60.0, max_concurrency=2,
                    queue_depth=2, duration_s=2.0),
            rate_cache=rate_cache,
        ).run()
        assert report.shed > 0
        assert report.completed + report.shed == report.arrived

    def test_latency_includes_queue_wait(self, rate_cache):
        light = QueryService(
            _config(rate_per_s=2.0), rate_cache=rate_cache
        ).run()
        heavy = QueryService(
            _config(rate_per_s=40.0, queue_depth=32,
                    duration_s=3.0),
            rate_cache=rate_cache,
        ).run()
        assert (
            heavy.verdict_for("olap").p99_s
            > light.verdict_for("olap").p99_s
        )


class TestPolicies:
    def test_static_enables_partitioning(self, rate_cache):
        service = QueryService(
            _config(policy="static"), rate_cache=rate_cache
        )
        assert service.cache_controller.enabled
        report = service.run()
        assert report.completed > 0
        assert not report.controller["enabled"]

    def test_none_runs_unpartitioned(self, rate_cache):
        service = QueryService(_config(), rate_cache=rate_cache)
        assert not service.cache_controller.enabled
        for cls in service._build_mix_schedule()[0][1].classes:
            assert service._mask_for(cls) == service.spec.full_mask

    def test_adaptive_reconfigures_and_converges(self, rate_cache):
        report = QueryService(
            _config(policy="adaptive", duration_s=6.0),
            rate_cache=rate_cache,
        ).run()
        controller = report.controller
        assert controller["enabled"]
        assert controller["reconfigurations"] >= 1
        assert controller["ticks"] >= controller["reconfigurations"]
        # Converged: the tail of the decision log is all unchanged.
        decisions = controller["decisions"]
        assert decisions, "expected at least one control decision"
        assert not decisions[-1]["changed"]

    def test_adaptive_starts_unpartitioned(self):
        service = QueryService(_config(policy="adaptive"))
        classes = service._build_mix_schedule()[0][1].classes
        for cls in classes:
            assert service._mask_for(cls) == service.spec.full_mask


class TestReports:
    def test_report_roundtrips_as_json(self, baseline_report,
                                       tmp_path):
        path = baseline_report.write(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["report_version"] == 4
        assert payload["config"]["seed"] == 7
        assert payload["completed"] == baseline_report.completed
        # v2+: the offered arrival log rides along for trace replay.
        assert len(payload["arrivals"]) == payload["arrived"]
        times = [entry[0] for entry in payload["arrivals"]]
        assert times == sorted(times)

    def test_verdict_lookup(self, baseline_report):
        assert baseline_report.verdict_for("olap").tenant == "olap"
        with pytest.raises(ServeError):
            baseline_report.verdict_for("nobody")

    def test_cache_control_stats_reported(self, rate_cache):
        report = QueryService(
            _config(policy="static"), rate_cache=rate_cache
        ).run()
        stats = report.cache_control
        assert stats["associations_requested"] > 0
        assert (
            stats["kernel_calls"] + stats["elided_calls"]
            == stats["associations_requested"]
        )


class TestControllerUnit:
    def test_interval_validation(self, spec):
        from repro.engine.cache_control import CacheController
        from repro.hardware.cat import CatController
        from repro.resctrl.filesystem import ResctrlFilesystem
        from repro.resctrl.interface import ResctrlInterface

        cache_controller = CacheController(
            spec,
            ResctrlInterface(ResctrlFilesystem(CatController(spec))),
        )
        with pytest.raises(ServeError):
            AdaptiveController(
                spec, cache_controller, interval_s=0.0
            )
        with pytest.raises(ServeError):
            AdaptiveController(
                spec, cache_controller, sweep_ways=()
            )

    def test_idle_tick_changes_nothing(self, spec):
        from repro.engine.cache_control import CacheController
        from repro.hardware.cat import CatController
        from repro.resctrl.filesystem import ResctrlFilesystem
        from repro.resctrl.interface import ResctrlInterface

        cache_controller = CacheController(
            spec,
            ResctrlInterface(ResctrlFilesystem(CatController(spec))),
        )
        controller = AdaptiveController(spec, cache_controller)
        decision = controller.tick(1.0, [])
        assert not decision.changed
        assert controller.reconfigurations == 0
        assert not cache_controller.enabled


class TestConfigValidation:
    def test_rejects_bad_enumerations(self):
        with pytest.raises(ServeError):
            _config(profile="uniform")
        with pytest.raises(ServeError):
            _config(policy="magic")
        with pytest.raises(ServeError):
            _config(mix="hybrid")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ServeError):
            _config(duration_s=0.0)
        with pytest.raises(ServeError):
            _config(rate_per_s=-1.0)
        with pytest.raises(ServeError):
            _config(seed=-1)
        with pytest.raises(ServeError):
            _config(mix="shift", shift_at_s=10.0)  # past horizon
