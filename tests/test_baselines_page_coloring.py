"""Tests for the page-coloring baseline."""

import pytest

from repro.baselines.page_coloring import (
    PAGE_BYTES,
    PageColoringPartitioner,
    coloring_capacity_bytes,
    num_colors,
)
from repro.errors import WorkloadError
from repro.units import GiB, MiB


class TestGeometry:
    def test_paper_machine_colors(self, spec):
        # 45056 sets, 64 sets per 4 KiB page -> 704 colors.
        assert num_colors(spec) == 704

    def test_capacity_matches_cat_fraction(self, spec):
        """Capacity-wise, coloring and CAT grant the same bytes for the
        same fraction — the difference is re-partitioning, not size."""
        colors = num_colors(spec)
        ten_percent = coloring_capacity_bytes(spec, colors // 10)
        assert ten_percent == pytest.approx(spec.mask_bytes(0x3),
                                            rel=0.02)

    def test_full_grant_is_whole_llc(self, spec):
        assert coloring_capacity_bytes(spec, num_colors(spec)) == (
            spec.llc.size_bytes
        )

    def test_validation(self, spec):
        with pytest.raises(WorkloadError):
            coloring_capacity_bytes(spec, 0)
        with pytest.raises(WorkloadError):
            coloring_capacity_bytes(spec, num_colors(spec) + 1)


class TestRepartitioning:
    def test_initial_assignment_is_free(self, spec):
        partitioner = PageColoringPartitioner(spec)
        event = partitioner.assign("t", frozenset({0, 1}),
                                   resident_bytes=GiB)
        assert event.cost_seconds == 0.0

    def test_unchanged_assignment_is_free(self, spec):
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("t", frozenset({0, 1}), resident_bytes=GiB)
        event = partitioner.assign("t", frozenset({0, 1}),
                                   resident_bytes=GiB)
        assert event.cost_seconds == 0.0

    def test_shrinking_colors_costs_copies(self, spec):
        """Losing half the colors moves half the resident bytes at
        2x DRAM bandwidth (read + write)."""
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("t", frozenset({0, 1}),
                           resident_bytes=8 * GiB)
        event = partitioner.assign("t", frozenset({0}),
                                   resident_bytes=8 * GiB)
        expected = 2 * 4 * GiB / spec.dram.bandwidth_bytes_per_s
        assert event.resident_bytes == pytest.approx(4 * GiB)
        assert event.cost_seconds == pytest.approx(expected)

    def test_growing_colors_is_free(self, spec):
        # Pages in still-granted colors stay put; new colors are empty.
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("t", frozenset({0}), resident_bytes=GiB)
        event = partitioner.assign("t", frozenset({0, 1, 2}),
                                   resident_bytes=GiB)
        assert event.cost_seconds == 0.0

    def test_cat_equivalent_is_microseconds(self, spec):
        partitioner = PageColoringPartitioner(spec)
        event = partitioner.cat_equivalent_cost()
        assert event.cost_seconds < 1e-5

    def test_cost_accounting_by_mechanism(self, spec):
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("t", frozenset(range(10)),
                           resident_bytes=GiB)
        partitioner.assign("t", frozenset(range(5)),
                           resident_bytes=GiB)
        partitioner.cat_equivalent_cost()
        coloring = partitioner.total_repartition_seconds("page_coloring")
        cat = partitioner.total_repartition_seconds("cat")
        assert coloring > 1000 * cat

    def test_capacity_of(self, spec):
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("t", frozenset(range(70)))
        assert partitioner.capacity_of("t") == pytest.approx(
            coloring_capacity_bytes(spec, 70)
        )
        with pytest.raises(WorkloadError):
            partitioner.capacity_of("nobody")

    def test_validation(self, spec):
        partitioner = PageColoringPartitioner(spec)
        with pytest.raises(WorkloadError):
            partitioner.assign("t", frozenset())
        with pytest.raises(WorkloadError):
            partitioner.assign("t", frozenset({num_colors(spec)}))
        with pytest.raises(WorkloadError):
            partitioner.assign("t", frozenset({0}), resident_bytes=-1)


class TestExperiment:
    def test_extension_experiment_shape(self):
        from repro.experiments import ext_baselines
        result = ext_baselines.run()
        by_key = {
            (row[0], row[1]): row[2] for row in result.rows
        }
        # Coloring cost grows with re-partition frequency; CAT stays
        # negligible.
        assert by_key[(100, "page_coloring")] > by_key[(10, "page_coloring")]
        assert by_key[(100, "cat")] < 0.01
        assert by_key[(100, "page_coloring")] > 1.0
