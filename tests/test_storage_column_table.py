"""Tests for dictionary-encoded columns, tables and schemas."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import DictEncodedColumn
from repro.storage.table import ColumnTable, Schema, SchemaColumn


class TestColumn:
    def test_roundtrip(self, rng):
        values = rng.integers(1, 1000, size=5000)
        column = DictEncodedColumn.from_values("X", values)
        assert np.array_equal(column.materialize(), values)

    def test_bits_per_value(self):
        values = np.arange(10**6 // 100) * 100  # 10^4 distinct
        column = DictEncodedColumn.from_values("X", values)
        assert column.bits_per_value == 14  # ceil(log2(10^4))

    def test_packed_size_smaller_than_raw(self, rng):
        values = rng.integers(1, 100, size=10_000)
        column = DictEncodedColumn.from_values("X", values)
        assert column.packed_size_bytes < values.nbytes

    def test_values_at(self, rng):
        values = rng.integers(1, 500, size=1000)
        column = DictEncodedColumn.from_values("X", values)
        rows = np.array([0, 10, 999])
        assert np.array_equal(column.values_at(rows), values[rows])

    def test_values_at_out_of_range(self, rng):
        column = DictEncodedColumn.from_values("X", np.array([1, 2]))
        with pytest.raises(StorageError):
            column.values_at(np.array([5]))

    def test_empty_name_rejected(self):
        with pytest.raises(StorageError):
            DictEncodedColumn.from_values("", np.array([1]))


class TestSchema:
    def test_primary_key_detection(self):
        schema = Schema("R", (
            SchemaColumn("P", primary_key=True), SchemaColumn("V"),
        ))
        assert schema.primary_key == "P"

    def test_no_primary_key(self):
        schema = Schema("A", (SchemaColumn("X"),))
        assert schema.primary_key is None

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            Schema("T", (SchemaColumn("X"), SchemaColumn("X")))

    def test_multiple_pks_rejected(self):
        with pytest.raises(StorageError):
            Schema("T", (
                SchemaColumn("A", primary_key=True),
                SchemaColumn("B", primary_key=True),
            ))

    def test_unknown_column_lookup(self):
        schema = Schema("T", (SchemaColumn("X"),))
        with pytest.raises(StorageError):
            schema.column("Y")

    def test_unsupported_type_rejected(self):
        with pytest.raises(StorageError):
            SchemaColumn("X", data_type="BLOB")


class TestTable:
    def _table(self, rng):
        schema = Schema("B", (SchemaColumn("V"), SchemaColumn("G")))
        table = ColumnTable(schema)
        data = {
            "V": rng.integers(1, 100, size=1000),
            "G": rng.integers(1, 10, size=1000),
        }
        table.load(data)
        return table, data

    def test_load_and_read(self, rng):
        table, data = self._table(rng)
        assert table.num_rows == 1000
        assert np.array_equal(table.column("V").materialize(), data["V"])

    def test_load_validates_columns(self, rng):
        schema = Schema("B", (SchemaColumn("V"),))
        table = ColumnTable(schema)
        with pytest.raises(StorageError):
            table.load({"WRONG": np.array([1])})

    def test_load_validates_lengths(self, rng):
        schema = Schema("B", (SchemaColumn("V"), SchemaColumn("G")))
        table = ColumnTable(schema)
        with pytest.raises(StorageError):
            table.load({"V": np.array([1, 2]), "G": np.array([1])})

    def test_pk_loads_build_index(self, rng):
        schema = Schema("R", (SchemaColumn("P", primary_key=True),))
        table = ColumnTable(schema)
        keys = rng.permutation(np.arange(1, 101))
        table.load({"P": keys})
        assert table.has_index("P")
        row = table.index("P").lookup(keys[5])
        assert list(row) == [5]

    def test_duplicate_pk_rejected(self):
        schema = Schema("R", (SchemaColumn("P", primary_key=True),))
        table = ColumnTable(schema)
        with pytest.raises(StorageError):
            table.load({"P": np.array([1, 1, 2])})

    def test_create_index_on_demand(self, rng):
        table, data = self._table(rng)
        assert not table.has_index("G")
        table.create_index("G")
        value = int(data["G"][0])
        rows = table.index("G").lookup(value)
        assert np.array_equal(rows, np.nonzero(data["G"] == value)[0])

    def test_unknown_column_rejected(self, rng):
        table, _ = self._table(rng)
        with pytest.raises(StorageError):
            table.column("NOPE")
        with pytest.raises(StorageError):
            table.index("NOPE")
