"""Tests for partitioning schemes and database integration."""

import numpy as np
import pytest

from repro.core.integration import CachePartitioning
from repro.core.policy import (
    PartitioningScheme,
    join_restricted_scheme,
    paper_scheme,
    unpartitioned_scheme,
)
from repro.engine.database import Database
from repro.errors import CatError


class TestSchemes:
    def test_paper_scheme_masks(self, spec):
        policy = paper_scheme().to_cuid_policy(spec)
        assert policy.polluting_mask == 0x3
        assert policy.sensitive_mask == 0xFFFFF
        assert policy.adaptive_sensitive_mask == 0xFFF

    def test_join_restricted_scheme(self, spec):
        policy = join_restricted_scheme().to_cuid_policy(spec)
        assert policy.adaptive_sensitive_mask == 0x3

    def test_unpartitioned_scheme(self, spec):
        policy = unpartitioned_scheme().to_cuid_policy(spec)
        assert policy.polluting_mask == spec.full_mask

    def test_masks_reporting(self, spec):
        masks = paper_scheme().masks(spec)
        assert masks == {
            "polluting": 0x3,
            "sensitive": 0xFFFFF,
            "adaptive_sensitive": 0xFFF,
        }

    def test_fraction_validation(self):
        with pytest.raises(CatError):
            PartitioningScheme("bad", 0.0, 1.0, 0.5)
        with pytest.raises(CatError):
            PartitioningScheme("bad", 0.1, 1.5, 0.5)


class TestIntegration:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE COLUMN TABLE A ( X INT )")
        database.load("A", {"X": np.arange(1, 1001)})
        return database

    def test_enable_disable(self, db):
        partitioning = CachePartitioning(db)
        partitioning.enable()
        assert db.cache_partitioning_enabled
        partitioning.disable()
        assert not db.cache_partitioning_enabled

    def test_context_manager(self, db):
        with CachePartitioning(db):
            assert db.cache_partitioning_enabled
            db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [500])
            assert db.scheduler.dispatch_log[-1].mask == 0x3
        assert not db.cache_partitioning_enabled

    def test_default_scheme_is_papers(self, db):
        partitioning = CachePartitioning(db)
        assert partitioning.scheme.name == "paper_default"

    def test_apply_scheme_live(self, db):
        partitioning = CachePartitioning(db)
        partitioning.enable()
        partitioning.apply_scheme(unpartitioned_scheme())
        db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [500])
        assert db.scheduler.dispatch_log[-1].mask == db.spec.full_mask
