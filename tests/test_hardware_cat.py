"""Tests for the CAT model (repro.hardware.cat)."""

import pytest

from repro.config import SystemSpec
from repro.errors import CatError
from repro.hardware.cat import (
    CatController,
    contiguous_mask,
    is_contiguous,
    mask_from_fraction,
)


class TestContiguity:
    @pytest.mark.parametrize("mask", [0x1, 0x3, 0xF, 0xFF0, 0xFFFFF, 0x8])
    def test_contiguous(self, mask):
        assert is_contiguous(mask)

    @pytest.mark.parametrize("mask", [0x5, 0x9, 0xF0F, 0x11])
    def test_non_contiguous(self, mask):
        assert not is_contiguous(mask)

    def test_zero_is_not_contiguous(self):
        assert not is_contiguous(0)

    def test_negative_is_not_contiguous(self):
        assert not is_contiguous(-1)


class TestContiguousMask:
    def test_paper_masks(self):
        assert contiguous_mask(2) == 0x3
        assert contiguous_mask(12) == 0xFFF
        assert contiguous_mask(20) == 0xFFFFF

    def test_shifted(self):
        assert contiguous_mask(2, shift=2) == 0xC

    def test_rejects_zero_bits(self):
        with pytest.raises(CatError):
            contiguous_mask(0)

    def test_rejects_negative_shift(self):
        with pytest.raises(CatError):
            contiguous_mask(2, shift=-1)


class TestMaskFromFraction:
    def test_paper_scheme_fractions(self, spec):
        # The exact masks of paper Sec. V-B/V-C.
        assert mask_from_fraction(spec, 0.10) == 0x3
        assert mask_from_fraction(spec, 0.60) == 0xFFF
        assert mask_from_fraction(spec, 1.0) == 0xFFFFF

    def test_rounds_up_to_whole_way(self, spec):
        # Regression: banker's round() turned 0.125 * 20 = 2.5 ways
        # into 2; the documented contract is "round up".
        assert mask_from_fraction(spec, 0.125) == 0x7
        assert mask_from_fraction(spec, 0.51) == 0x7FF
        # A tiny fraction still rounds up to one whole way.
        assert mask_from_fraction(spec, 0.001) == 0x1

    def test_rejects_out_of_range(self, spec):
        with pytest.raises(CatError):
            mask_from_fraction(spec, 0.0)
        with pytest.raises(CatError):
            mask_from_fraction(spec, 1.5)

    def test_shift_overflow_rejected(self, spec):
        with pytest.raises(CatError):
            mask_from_fraction(spec, 1.0, shift=1)


class TestCatController:
    def test_default_state(self, spec):
        cat = CatController(spec)
        assert cat.clos_mask(0) == spec.full_mask
        for core in range(spec.cores):
            assert cat.core_clos(core) == 0
            assert cat.core_mask(core) == spec.full_mask

    def test_program_and_read_clos(self, spec):
        cat = CatController(spec)
        cat.set_clos_mask(1, 0x3)
        assert cat.clos_mask(1) == 0x3
        assert cat.configured_classes() == [0, 1]

    def test_assign_core(self, spec):
        cat = CatController(spec)
        cat.set_clos_mask(2, 0xFF)
        cat.assign_core(5, 2)
        assert cat.core_clos(5) == 2
        assert cat.core_mask(5) == 0xFF

    def test_rejects_unconfigured_clos_assignment(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.assign_core(0, 7)

    def test_rejects_unknown_core(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.assign_core(spec.cores, 0)

    def test_rejects_clos_out_of_range(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.set_clos_mask(16, 0x3)

    def test_rejects_non_contiguous_mask(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.set_clos_mask(1, 0x5)

    def test_rejects_zero_mask(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.set_clos_mask(1, 0)

    def test_rejects_too_wide_mask(self, spec):
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.set_clos_mask(1, 1 << 20)

    def test_minimum_width_enforced(self):
        spec = SystemSpec(cat_min_bits=2)
        cat = CatController(spec)
        with pytest.raises(CatError):
            cat.set_clos_mask(1, 0x1)

    def test_reset_restores_defaults(self, spec):
        cat = CatController(spec)
        cat.set_clos_mask(1, 0x3)
        cat.assign_core(0, 1)
        cat.reset()
        assert cat.core_clos(0) == 0
        assert cat.configured_classes() == [0]
