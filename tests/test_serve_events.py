"""Tests for the deterministic event queue."""

import pytest

from repro.errors import ServeError
from repro.serve.events import EventKind, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.COMPLETION)
        queue.push(1.0, EventKind.ARRIVAL)
        queue.push(2.0, EventKind.CONTROL)
        times = [queue.pop().time_s for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        """Two events at the same instant dispatch in creation order —
        no dependence on payload comparison or hash order."""
        queue = EventQueue()
        first = queue.push(5.0, EventKind.ARRIVAL, tag="a")
        second = queue.push(5.0, EventKind.COMPLETION, tag="b")
        assert first.seq < second.seq
        assert queue.pop().payload["tag"] == "a"
        assert queue.pop().payload["tag"] == "b"

    def test_payload_carried(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.COMPLETION, request_id=7, epoch=2)
        event = queue.pop()
        assert event.kind is EventKind.COMPLETION
        assert event.payload == {"request_id": 7, "epoch": 2}


class TestBookkeeping:
    def test_counters_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, EventKind.ARRIVAL)
        queue.push(2.0, EventKind.ARRIVAL)
        assert len(queue) == 2
        assert queue.pushed == 2
        queue.pop()
        assert queue.popped == 1
        assert len(queue) == 1
        assert bool(queue)

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(4.0, EventKind.CONTROL)
        queue.push(2.0, EventKind.ARRIVAL)
        assert queue.peek_time() == 2.0
        assert len(queue) == 2  # peek does not consume


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ServeError):
            EventQueue().push(-0.1, EventKind.ARRIVAL)

    def test_empty_pop_and_peek(self):
        queue = EventQueue()
        with pytest.raises(ServeError):
            queue.pop()
        with pytest.raises(ServeError):
            queue.peek_time()
