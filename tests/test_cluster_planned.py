"""End-to-end tests for the planned cluster policy
(repro.cluster.fleet + repro.planner integration)."""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import ClusterError

BATCH_HEAVY_TRAINING = tuple(
    (("agg", 1), ("join", 1), ("oltp", 1), ("scan", 40))
    for _ in range(8)
)


def _config(**overrides):
    defaults = dict(
        nodes=3, router="planned", policy="planned",
        duration_s=4.0, rate_per_s=8.0, seed=17,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestConfigValidation:
    def test_planned_policy_requires_planned_router(self):
        with pytest.raises(ClusterError, match="go together"):
            ClusterConfig(policy="planned", router="hash")

    def test_planned_router_requires_planned_policy(self):
        with pytest.raises(ClusterError, match="go together"):
            ClusterConfig(policy="adaptive", router="planned")

    def test_planner_knobs_are_validated(self):
        with pytest.raises(ClusterError):
            _config(plan_interval_s=0.0)
        with pytest.raises(ClusterError):
            _config(plan_forecaster="arima")
        with pytest.raises(ClusterError):
            _config(plan_margin=-0.5)
        with pytest.raises(ClusterError):
            _config(plan_training=(("scan", 1.5),))

    def test_search_knobs_are_validated(self):
        with pytest.raises(ClusterError):
            _config(plan_search="anneal")
        with pytest.raises(ClusterError):
            _config(plan_beam_width=0)
        with pytest.raises(ClusterError):
            _config(plan_search_steps=0)
        with pytest.raises(ClusterError):
            _config(plan_search_candidates=0)

    def test_shift_mix_is_accepted(self):
        config = _config(mix="shift", shift_at_s=1.5)
        assert config.node_config(0).shift_at_s == 1.5


class TestPlannedRun:
    def test_report_carries_planner_and_windows_blocks(self):
        report = Cluster(_config()).run()
        payload = report.to_dict()
        assert payload["fleet_report_version"] == 6
        planner = payload["planner"]
        assert planner["enabled"] is True
        assert planner["ticks"] >= 1
        assert planner["candidates"] > 1
        assert len(planner["decisions"]) == planner["ticks"]
        search = planner["search"]
        assert search["strategy"] == "enum"
        assert search["candidates_scored"] >= planner["candidates"]
        for decision in planner["decisions"]:
            assert decision["best_score"] <= (
                decision["incumbent_score"] + 1e-9
            )
        windows = payload["arrival_windows"]
        assert windows["window_s"] == 1.0
        assert len(windows["classes"]) == 4
        assert len(windows["tenants"]) == 4
        total = sum(
            count
            for window in windows["classes"]
            for count in window.values()
        )
        assert total == report.generated

    def test_request_conservation_holds(self):
        report = Cluster(_config()).run()
        assert report.generated == (
            report.completed + report.shed_admission
            + report.shed_failure + report.shed_no_node
        )
        assert report.generated > 0

    def test_unplanned_policies_report_planner_disabled(self):
        report = Cluster(ClusterConfig(
            nodes=2, duration_s=2.0, rate_per_s=6.0, seed=17,
            policy="none",
        )).run()
        assert report.planner == {"enabled": False}

    def test_sequential_warning_recorded_for_any_jobs_value(self):
        # The warning is a pure function of the config — recorded for
        # jobs=1 too, so the execution block stays byte-identical
        # across --fleet-jobs values.
        for jobs in (1, 3):
            report = Cluster(_config()).run(fleet_jobs=jobs)
            warnings = report.execution["warnings"]
            assert any("planned" in w for w in warnings)
            assert any("sequential" in w for w in warnings)


class TestIdlePlannerLane:
    # First plan tick at or beyond the run end: the planner never
    # acts, so the run must not warn about sequential execution and
    # may use the epoch-parallel path.

    def test_no_tick_and_no_warning_when_interval_exceeds_duration(
        self,
    ):
        report = Cluster(
            _config(plan_interval_s=99.0)
        ).run(fleet_jobs=1)
        assert report.planner["ticks"] == 0
        assert report.planner["decisions"] == []
        assert report.execution["warnings"] == []

    def test_interval_equal_to_duration_never_ticks(self):
        report = Cluster(_config(plan_interval_s=4.0)).run()
        assert report.planner["ticks"] == 0
        assert report.execution["warnings"] == []

    def test_idle_lane_jobs_do_not_change_bytes(self):
        sequential = Cluster(
            _config(plan_interval_s=99.0)
        ).run(fleet_jobs=1)
        fanned = Cluster(
            _config(plan_interval_s=99.0)
        ).run(fleet_jobs=3)
        assert _dumps(sequential) == _dumps(fanned)

    def test_active_lane_still_warns(self):
        report = Cluster(_config()).run(fleet_jobs=3)
        assert report.planner["ticks"] >= 1
        assert any(
            "sequential" in w
            for w in report.execution["warnings"]
        )


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [0, 17, 0xBEEF])
    def test_run_vs_run(self, seed):
        first = Cluster(_config(seed=seed)).run()
        second = Cluster(_config(seed=seed)).run()
        assert _dumps(first) == _dumps(second)

    def test_fleet_jobs_do_not_change_bytes(self):
        sequential = Cluster(_config()).run(fleet_jobs=1)
        fanned = Cluster(_config()).run(fleet_jobs=4)
        assert _dumps(sequential) == _dumps(fanned)

    def test_migrating_run_is_byte_stable(self):
        config = _config(
            nodes=4, duration_s=6.0,
            plan_training=BATCH_HEAVY_TRAINING,
        )
        first = Cluster(config).run()
        second = Cluster(config).run(fleet_jobs=2)
        assert first.planner["reconfigurations"] >= 1
        assert _dumps(first) == _dumps(second)

    @pytest.mark.parametrize("seed", [17, 0xBEEF])
    def test_beam_search_is_byte_stable(self, seed):
        config = _config(seed=seed, plan_search="beam")
        first = Cluster(config).run(fleet_jobs=1)
        second = Cluster(config).run(fleet_jobs=4)
        assert first.planner["search"]["strategy"] == "beam"
        assert first.planner["search"]["candidates_scored"] > 0
        assert _dumps(first) == _dumps(second)

    def test_beam_never_scores_worse_than_enum(self):
        # Beam seeds its frontier with the full enumerated family, so
        # tick-by-tick the best score it sees can only be <= enum's
        # (offered arrival windows — hence forecasts — are identical
        # across the two runs).
        enum_run = Cluster(_config(
            nodes=4, duration_s=6.0,
            plan_training=BATCH_HEAVY_TRAINING,
        )).run()
        beam_run = Cluster(_config(
            nodes=4, duration_s=6.0,
            plan_training=BATCH_HEAVY_TRAINING,
            plan_search="beam",
        )).run()
        enum_best = [
            d["best_score"]
            for d in enum_run.planner["decisions"]
        ]
        beam_best = [
            d["best_score"]
            for d in beam_run.planner["decisions"]
        ]
        assert len(enum_best) == len(beam_best) >= 1
        for beam, enum in zip(beam_best, enum_best):
            assert beam <= enum + 1e-12


class TestMigration:
    @pytest.fixture(scope="class")
    def migrated(self):
        # Batch-dominated training makes the first tick's forecast
        # prefer a batch-isolation blueprint over the boot spread, so
        # the planner re-homes tenants through a blackout.
        return Cluster(_config(
            nodes=4, duration_s=6.0,
            plan_training=BATCH_HEAVY_TRAINING,
        )).run()

    def test_migration_happens_and_is_recorded(self, migrated):
        planner = migrated.planner
        assert planner["reconfigurations"] >= 1
        assert planner["migrated_tenants"] > 0
        changed = [
            d for d in planner["decisions"] if d["changed"]
        ]
        assert changed
        assert changed[0]["migrations"] > 0

    def test_blackout_defers_arrivals_without_losing_them(
        self, migrated
    ):
        assert migrated.planner["deferred_requests"] > 0
        assert migrated.generated == (
            migrated.completed + migrated.shed_admission
            + migrated.shed_failure + migrated.shed_no_node
        )

    def test_downtime_lands_in_request_latency(self, migrated):
        # Deferred arrivals keep their original timestamps, so the
        # blackout wait is part of measured latency: some tenant's
        # worst completion must wait at least the downtime window.
        downtime = migrated.config.plan_downtime_s
        worst = max(
            verdict.p99_s for verdict in migrated.fleet_slo
        )
        assert worst >= downtime

    def test_scheme_changes_reprogram_nodes(self, migrated):
        blueprint = migrated.planner["blueprint"]
        schemes = blueprint["schemes"]
        assert len(schemes) == migrated.config.nodes
        # The isolation blueprint runs the batch nodes unpartitioned.
        assert "full" in schemes


class TestShiftMix:
    def test_shift_run_conserves_and_reports(self):
        report = Cluster(_config(
            mix="shift", profile="diurnal", duration_s=4.0,
        )).run()
        assert report.generated == (
            report.completed + report.shed_admission
            + report.shed_failure + report.shed_no_node
        )
        assert report.config.mix == "shift"
