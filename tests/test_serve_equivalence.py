"""Cross-implementation equivalence: scalar vs vectorized serve path.

The vectorized engine is the default hot path; the scalar engine is
the reference implementation.  The contract is *byte-identical
reports*: every float in the report must match exactly, not within a
tolerance — the vector path may only batch the same arithmetic, never
reorder it.  This is what keeps the engine choice out of the
determinism domain (``ServiceConfig``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import QueryService, ServiceConfig


def _report(engine: str, **overrides) -> str:
    defaults = dict(
        profile="poisson", policy="none", mix="olap",
        duration_s=4.0, rate_per_s=8.0, seed=7,
    )
    defaults.update(overrides)
    config = ServiceConfig(**defaults)
    return QueryService(config, engine=engine).run().to_json()


def _assert_engines_agree(**overrides) -> None:
    assert _report("vector", **overrides) == _report(
        "scalar", **overrides
    )


class TestPolicies:
    def test_none(self):
        _assert_engines_agree(policy="none")

    def test_static(self):
        _assert_engines_agree(policy="static")

    def test_adaptive(self):
        _assert_engines_agree(policy="adaptive", duration_s=6.0)


class TestProfiles:
    def test_bursty(self):
        _assert_engines_agree(profile="bursty")

    def test_diurnal(self):
        _assert_engines_agree(profile="diurnal")

    def test_mix_shift(self):
        _assert_engines_agree(mix="shift", duration_s=6.0)


class TestSampling:
    def test_sampled_run_identical(self):
        _assert_engines_agree(
            duration_s=9.0, sample_window_s=1.0, sample_period=3,
            sample_warmup=0.5,
        )

    def test_warmup_disabled(self):
        _assert_engines_agree(
            duration_s=9.0, sample_window_s=1.5, sample_period=2,
            sample_warmup=0.0,
        )


class TestPropertyBased:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        profile=st.sampled_from(("poisson", "bursty", "diurnal")),
        policy=st.sampled_from(("none", "static", "adaptive")),
    )
    def test_reports_byte_identical(self, seed, profile, policy):
        _assert_engines_agree(
            seed=seed, profile=profile, policy=policy,
            duration_s=3.0, rate_per_s=6.0,
        )
