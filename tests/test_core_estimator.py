"""Tests for the statistics-driven working-set estimator."""

import pytest

from repro.core.estimator import (
    ColumnStatistics,
    WorkingSetEstimate,
    WorkingSetEstimator,
)
from repro.errors import WorkloadError
from repro.operators.base import CacheUsage
from repro.units import MiB


@pytest.fixture
def estimator():
    return WorkingSetEstimator(workers=22)


def stats(name, rows, distinct, max_value=None):
    return ColumnStatistics(name, rows, distinct, max_value)


class TestColumnStatistics:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ColumnStatistics("x", 0, 1)
        with pytest.raises(WorkloadError):
            ColumnStatistics("x", 10, 0)
        with pytest.raises(WorkloadError):
            ColumnStatistics("x", 10, 11)


class TestEstimates:
    def test_scan_keeps_nothing(self, estimator):
        estimate = estimator.estimate_scan(stats("X", 10**9, 10**6))
        assert estimate.cuid is CacheUsage.POLLUTING
        assert estimate.total_bytes == 0

    def test_aggregation_matches_paper_sizes(self, estimator):
        estimate = estimator.estimate_aggregation(
            stats("V", 10**9, 10**7),  # 40 MiB dictionary
            stats("G", 10**9, 10**5),  # LLC-sized hash tables
        )
        assert estimate.cuid is CacheUsage.SENSITIVE
        assert estimate.dictionary_bytes == pytest.approx(
            40 * MiB, rel=0.05
        )
        assert estimate.hash_table_bytes > 30 * MiB

    def test_join_classification_follows_bit_vector(self, estimator):
        tiny = estimator.estimate_join(
            stats("P", 10**6, 10**6, max_value=10**6)
        )
        llc_sized = estimator.estimate_join(
            stats("P", 10**8, 10**8, max_value=10**8)
        )
        huge = estimator.estimate_join(
            stats("P", 10**9, 10**9, max_value=10**9)
        )
        assert tiny.cuid is CacheUsage.POLLUTING
        assert llc_sized.cuid is CacheUsage.SENSITIVE
        assert huge.cuid is CacheUsage.POLLUTING

    def test_join_uses_max_value_for_sparse_domains(self, estimator):
        # 10^6 distinct keys spread over a 10^8 domain still need a
        # 12.5 MB bit vector.
        sparse = estimator.estimate_join(
            stats("P", 10**6, 10**6, max_value=10**8)
        )
        assert sparse.bit_vector_bytes == 12_500_000
        assert sparse.cuid is CacheUsage.SENSITIVE


class TestMaskSelection:
    def test_paper_masks(self, estimator):
        scan = estimator.estimate_scan(stats("X", 10**9, 10**6))
        assert estimator.mask_for(scan) == 0x3
        agg = estimator.estimate_aggregation(
            stats("V", 10**9, 10**7), stats("G", 10**9, 10**5)
        )
        assert estimator.mask_for(agg) == 0xFFFFF

    def test_adaptive_join_gets_60_percent(self, estimator):
        join = estimator.estimate_join(
            stats("P", 10**8, 10**8, max_value=10**8)
        )
        assert estimator.mask_for(join) == 0xFFF

    def test_recommended_mask_shrinks_small_sensitive(self, estimator):
        """A 4 MiB-dictionary aggregation with tiny groups fits in a
        few ways; the estimator grants just enough + headroom."""
        small = estimator.estimate_aggregation(
            stats("V", 10**9, 10**6),   # 4 MiB dictionary
            stats("G", 10**9, 10**2),   # tiny tables
        )
        mask = estimator.recommended_mask(small)
        ways = bin(mask).count("1")
        assert 2 <= ways <= 4  # ~4 MiB needs 2 ways, +1 headroom

    def test_recommended_mask_keeps_full_for_large(self, estimator):
        large = estimator.estimate_aggregation(
            stats("V", 10**9, 10**8),   # 400 MiB dictionary
            stats("G", 10**9, 10**6),
        )
        assert estimator.recommended_mask(large) == 0xFFFFF

    def test_recommended_mask_never_below_hw_min(self, estimator):
        scan = estimator.estimate_scan(stats("X", 10**9, 10**6))
        mask = estimator.recommended_mask(scan)
        assert bin(mask).count("1") >= estimator.spec.cat_min_bits


class TestSensitivityPrediction:
    def test_llc_sized_working_set_is_pollution_sensitive(
        self, estimator
    ):
        agg = estimator.estimate_aggregation(
            stats("V", 10**9, 10**7), stats("G", 10**9, 10**5)
        )
        assert estimator.estimate_sensitivity_to_corunner(agg)

    def test_l2_resident_working_set_is_safe(self, estimator):
        tiny = WorkingSetEstimate(
            "tiny", CacheUsage.SENSITIVE, dictionary_bytes=1 * MiB
        )
        assert not estimator.estimate_sensitivity_to_corunner(tiny)

    def test_compulsory_miss_working_set_is_safe(self, estimator):
        huge = WorkingSetEstimate(
            "huge", CacheUsage.SENSITIVE,
            dictionary_bytes=400 * MiB,
        )
        assert not estimator.estimate_sensitivity_to_corunner(huge)
