"""Property-based tests for the cache simulator (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.units import KiB

LINE = 64


def _build(ways: int, sets: int, masks: dict[int, int]):
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(sets * ways * LINE, ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
    )
    cat = CatController(spec)
    for clos, mask in masks.items():
        cat.set_clos_mask(clos, mask)
    return SetAssociativeCache(spec.llc, cat=cat)


addresses = st.lists(
    st.integers(min_value=0, max_value=4095), min_size=1, max_size=300
)


@given(trace=addresses)
@settings(max_examples=60, deadline=None)
def test_occupancy_bounded_by_capacity(trace):
    cache = _build(4, 8, {})
    for line in trace:
        cache.access(line * LINE)
    assert cache.valid_lines() <= 4 * 8


@given(trace=addresses)
@settings(max_examples=60, deadline=None)
def test_rereference_is_always_a_hit(trace):
    """Accessing an address twice in a row must hit the second time."""
    cache = _build(4, 8, {})
    for line in trace:
        cache.access(line * LINE)
        assert cache.access(line * LINE) is True


@given(trace=addresses)
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_accesses(trace):
    cache = _build(4, 8, {})
    for line in trace:
        cache.access(line * LINE)
    assert cache.stats.hits + cache.stats.misses == len(trace)


@given(trace=addresses, restricted=addresses)
@settings(max_examples=60, deadline=None)
def test_way_mask_confinement(trace, restricted):
    """A CLOS restricted to ways 0-1 never occupies ways 2-3."""
    cache = _build(4, 8, {1: 0x3})
    for line in restricted:
        cache.access(line * LINE, clos=1)
    assert cache.lines_in_ways(0xC) == 0


@given(protected=st.sets(st.integers(0, 1), min_size=1, max_size=2),
       churn=addresses)
@settings(max_examples=60, deadline=None)
def test_disjoint_masks_isolate(protected, churn):
    """Lines in CLOS 1's exclusive ways survive any CLOS 2 churn.

    This is the hardware guarantee the paper's partitioning relies on.
    """
    cache = _build(4, 8, {1: 0x3, 2: 0xC})
    protected_addrs = [line * LINE for line in protected]
    for addr in protected_addrs:
        cache.access(addr, clos=1)
    for line in churn:
        cache.access(line * LINE, clos=2)
    for addr in protected_addrs:
        assert cache.contains(addr)


@given(trace=addresses)
@settings(max_examples=30, deadline=None)
def test_full_mask_equals_unmasked_behaviour(trace):
    """CLOS 0 (full mask) behaves exactly like a cache without CAT."""
    with_cat = _build(4, 8, {})
    without_cat = SetAssociativeCache(
        CacheSpec(8 * 4 * LINE, 4)
    )
    results_a = [with_cat.access(line * LINE, clos=0) for line in trace]
    results_b = [without_cat.access(line * LINE) for line in trace]
    assert results_a == results_b
