"""Tests for the content-addressed simulation cache."""

import json

import pytest

from repro.config import SystemSpec
from repro.model.calibration import DEFAULT_CALIBRATION
from repro.model.simulator import QuerySpec
from repro.obs import MetricsRegistry, install, reset
from repro.parallel import (
    KEY_SCHEMA,
    SimulationCache,
    SimulationRequest,
    decode_results,
    encode_results,
    evaluate,
)
from repro.workloads.microbench import query1, query2


def _request(spec=None, profile=None, cores=None, mask=None):
    spec = spec if spec is not None else SystemSpec()
    if profile is None:
        profile = query1().profile(DEFAULT_CALIBRATION)
    return SimulationRequest(
        spec=spec,
        calibration=DEFAULT_CALIBRATION,
        queries=(
            QuerySpec(
                name=profile.name,
                profile=profile,
                cores=cores if cores is not None else spec.cores,
                mask=mask if mask is not None else spec.full_mask,
            ),
        ),
    )


class TestKey:
    def test_equal_content_equal_key(self):
        assert _request().key() == _request().key()

    def test_mask_changes_key(self):
        assert _request(mask=0x3).key() != _request(mask=0xF).key()

    def test_cores_change_key(self):
        assert _request(cores=2).key() != _request(cores=4).key()

    def test_profile_changes_key(self):
        other = query2(10**7, 10**4).profile(8, DEFAULT_CALIBRATION)
        assert _request().key() != _request(profile=other).key()

    def test_query_order_changes_key(self):
        # Deliberate: the fixed point's float-summation order follows
        # the query list, so different orderings must not alias.
        spec = SystemSpec()
        scan = query1().profile(DEFAULT_CALIBRATION)
        agg = query2(10**7, 10**4).profile(
            spec.cores, DEFAULT_CALIBRATION
        )
        specs = [
            QuerySpec(p.name, p, spec.cores, spec.full_mask)
            for p in (scan, agg)
        ]
        forward = SimulationRequest(
            spec=spec, calibration=DEFAULT_CALIBRATION,
            queries=tuple(specs),
        )
        backward = SimulationRequest(
            spec=spec, calibration=DEFAULT_CALIBRATION,
            queries=tuple(reversed(specs)),
        )
        assert forward.key() != backward.key()

    def test_solver_params_change_key(self):
        loose = SimulationRequest(
            spec=_request().spec,
            calibration=DEFAULT_CALIBRATION,
            queries=_request().queries,
            tolerance=1e-3,
        )
        assert loose.key() != _request().key()

    def test_key_payload_is_json_canonical(self):
        payload = _request().key_payload()
        assert payload["key_schema"] == KEY_SCHEMA
        # The content address is computed on the canonical dump; two
        # payloads of the same request produce identical bytes.
        canonical = json.dumps(payload, sort_keys=True)
        assert canonical == json.dumps(
            _request().key_payload(), sort_keys=True
        )


class TestCodec:
    def test_results_round_trip_exactly(self):
        results = _request().solve()
        decoded = decode_results(
            json.loads(json.dumps(encode_results(results)))
        )
        assert decoded.keys() == results.keys()
        for name in results:
            assert decoded[name] == results[name]

    def test_decoded_objects_are_fresh(self):
        results = _request().solve()
        decoded = decode_results(encode_results(results))
        for name in results:
            assert decoded[name] is not results[name]


class TestLru:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationCache(capacity=0)

    def test_put_get(self):
        cache = SimulationCache(capacity=4)
        cache.put("k1", {"a": 1})
        assert cache.get("k1") == {"a": 1}
        assert cache.get("missing") is None

    def test_eviction_order_is_least_recently_used(self):
        cache = SimulationCache(capacity=2)
        cache.put("k1", {"n": 1})
        cache.put("k2", {"n": 2})
        cache.get("k1")  # refresh k1: k2 becomes the LRU entry
        cache.put("k3", {"n": 3})
        assert cache.get("k2") is None
        assert cache.get("k1") == {"n": 1}
        assert cache.get("k3") == {"n": 3}

    def test_eviction_metric(self):
        registry = MetricsRegistry()
        install(new_metrics=registry)
        try:
            cache = SimulationCache(capacity=1)
            cache.put("k1", {})
            cache.put("k2", {})
            assert registry.counter("sim.cache.evictions").value == 1
        finally:
            reset()


class TestDiskLayer:
    def test_round_trip(self, tmp_path):
        cache = SimulationCache(capacity=4, disk_dir=tmp_path)
        cache.put("deadbeef", {"x": 1.5})
        # A second cache instance sharing the directory sees the entry.
        other = SimulationCache(capacity=4, disk_dir=tmp_path)
        assert other.get("deadbeef") == {"x": 1.5}

    def test_entries_namespaced_by_key_schema(self, tmp_path):
        cache = SimulationCache(capacity=4, disk_dir=tmp_path)
        cache.put("deadbeef", {})
        assert (tmp_path / f"v{KEY_SCHEMA}" / "deadbeef.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SimulationCache(capacity=4, disk_dir=tmp_path)
        path = tmp_path / f"v{KEY_SCHEMA}" / "deadbeef.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ torn write", encoding="utf-8")
        assert cache.get("deadbeef") is None

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        registry = MetricsRegistry()
        install(new_metrics=registry)
        try:
            writer = SimulationCache(capacity=4, disk_dir=tmp_path)
            writer.put("deadbeef", {"x": 1})
            reader = SimulationCache(capacity=4, disk_dir=tmp_path)
            reader.get("deadbeef")
            reader.get("deadbeef")
            assert registry.counter("sim.cache.disk_hits").value == 1
            assert registry.counter("sim.cache.hits").value == 1
        finally:
            reset()


class TestEvaluate:
    def test_matches_direct_solve(self):
        request = _request()
        direct = request.solve()
        [cached] = evaluate([request], cache=SimulationCache())
        assert cached == direct

    def test_duplicate_requests_solved_once(self):
        registry = MetricsRegistry()
        install(new_metrics=registry)
        try:
            request = _request()
            first, second = evaluate(
                [request, request], cache=SimulationCache()
            )
            assert first == second
            assert registry.counter("sim.cache.misses").value == 1
            # The duplicate counts as the hit it would sequentially be.
            assert registry.counter("sim.cache.hits").value == 1
            assert registry.counter("sim.cache.stores").value == 1
        finally:
            reset()

    def test_no_cache_disables_dedup(self):
        registry = MetricsRegistry()
        install(new_metrics=registry)
        try:
            request = _request()
            first, second = evaluate([request, request], cache=None)
            assert first == second
            # The pre-cache code path: two solves, no cache traffic.
            assert registry.counter("simulator.solves").value == 2
            assert "sim.cache.misses" not in registry.snapshot()[
                "counters"
            ]
        finally:
            reset()

    def test_warm_cache_skips_solves(self):
        registry = MetricsRegistry()
        install(new_metrics=registry)
        try:
            request = _request()
            cache = SimulationCache()
            evaluate([request], cache=cache)
            solves = registry.counter("simulator.solves").value
            [warm] = evaluate([request], cache=cache)
            assert registry.counter("simulator.solves").value == solves
            assert warm == request.solve()
        finally:
            reset()

    def test_results_preserve_request_order(self):
        few_cores = _request(cores=2)
        all_cores = _request(cores=8)
        outcomes = evaluate(
            [few_cores, all_cores, few_cores], cache=SimulationCache()
        )
        name = query1().profile(DEFAULT_CALIBRATION).name
        assert outcomes[0] == outcomes[2]
        assert (
            outcomes[0][name].throughput_tuples_per_s
            < outcomes[1][name].throughput_tuples_per_s
        )
