"""Tests for trace generators (repro.hardware.trace)."""

import numpy as np
import pytest

from repro.hardware.trace import (
    MemoryAccess,
    interleave,
    random_region_trace,
    sequential_trace,
)


class TestMemoryAccess:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryAccess(-1, "s")


class TestSequentialTrace:
    def test_one_access_per_line(self):
        accesses = list(sequential_trace(0, 256, "scan"))
        assert [a.addr for a in accesses] == [0, 64, 128, 192]

    def test_base_offset(self):
        accesses = list(sequential_trace(1000, 128, "scan"))
        assert [a.addr for a in accesses] == [1000, 1064]

    def test_empty(self):
        assert list(sequential_trace(0, 0, "scan")) == []

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            list(sequential_trace(0, 64, "scan", step_bytes=0))


class TestRandomRegionTrace:
    def test_addresses_stay_in_region(self, rng):
        base, size = 4096, 1024
        accesses = list(
            random_region_trace(base, size, 500, "ht", rng)
        )
        assert len(accesses) == 500
        for access in accesses:
            assert base <= access.addr < base + size

    def test_line_aligned(self, rng):
        accesses = list(random_region_trace(0, 4096, 100, "ht", rng))
        assert all(a.addr % 64 == 0 for a in accesses)

    def test_roughly_uniform(self, rng):
        # With 16 lines and 4800 accesses, every line should appear.
        accesses = list(random_region_trace(0, 1024, 4800, "ht", rng))
        lines = {a.addr // 64 for a in accesses}
        assert lines == set(range(16))

    def test_rejects_empty_region(self, rng):
        with pytest.raises(ValueError):
            list(random_region_trace(0, 0, 1, "ht", rng))


class TestInterleave:
    def test_round_robin(self):
        a = sequential_trace(0, 128, "a")
        b = sequential_trace(1 << 20, 128, "b")
        merged = [access.stream for access in interleave(a, b)]
        assert merged == ["a", "b", "a", "b"]

    def test_uneven_lengths(self):
        a = sequential_trace(0, 192, "a")  # 3 accesses
        b = sequential_trace(1 << 20, 64, "b")  # 1 access
        merged = [access.stream for access in interleave(a, b)]
        assert merged == ["a", "b", "a", "a"]

    def test_empty(self):
        assert list(interleave()) == []
