"""Acceptance tests for the extension experiments."""

import pytest

from repro.experiments import ext_baselines, ext_scheduling


class TestSchedulingExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_scheduling.run()

    def test_cache_aware_wins(self, result):
        makespans = ext_scheduling.makespans(result)
        assert makespans["cache_aware"] < makespans["naive"]

    def test_speedup_is_material(self, result):
        makespans = ext_scheduling.makespans(result)
        speedup = makespans["naive"] / makespans["cache_aware"]
        assert speedup > 1.1

    def test_polluters_corun_in_cache_aware_plan(self, result):
        pairs = [
            row[2]
            for row in result.rows
            if row[0] == "cache_aware"
        ]
        assert any(
            "scan" in pair and pair.count("scan") == 2 for pair in pairs
        )

    def test_both_strategies_schedule_all_queries(self, result):
        for strategy in ("naive", "cache_aware"):
            names = set()
            for row in result.rows:
                if row[0] == strategy:
                    names.update(row[2].split("+"))
            assert names == {
                "scan_1", "scan_2", "agg_1", "agg_2",
                "join_small", "join_big",
            }


class TestTraceValidationExtension:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_trace_validation
        return ext_trace_validation.run(fast=True)

    def test_model_tracks_exact_simulation(self, result):
        """Analytic and exact hit ratios agree within a few percent —
        the figure-level guarantee that the reproduction's conclusions
        are not simulator artefacts."""
        for row in result.rows:
            assert row[5] <= 0.08  # abs error column

    def test_partitioning_effect_visible_on_both(self, result):
        by_key = {(row[0], row[2]): row[3] for row in result.rows}
        assert by_key[(1024, True)] > by_key[(1024, False)] + 0.3
        assert by_key[(2048, True)] > by_key[(2048, False)] + 0.3


class TestSkewExtension:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_skew
        return ext_skew.run(fast=True)

    def _value(self, result, distribution, configuration):
        rows = [
            row for row in result.rows
            if row[0] == distribution and row[1] == configuration
        ]
        assert len(rows) == 1
        return rows[0][2]

    def test_skew_less_sensitive_at_mid_cache(self, result):
        uniform = self._value(result, "uniform", "isolated_llc_40%")
        skewed = self._value(result, "zipf_80_20", "isolated_llc_40%")
        assert skewed > uniform + 0.05

    def test_skew_more_pollution_robust(self, result):
        uniform = self._value(result, "uniform", "with_scan")
        skewed = self._value(result, "zipf_80_20", "with_scan")
        assert skewed > uniform + 0.1

    def test_partitioning_helps_both_distributions(self, result):
        for distribution in ("uniform", "zipf_80_20"):
            off = self._value(result, distribution, "with_scan")
            on = self._value(result, distribution,
                             "with_scan_partitioned")
            assert on > off

    def test_uniform_gains_more_from_partitioning(self, result):
        """The paper's uniform data is the hardest case for its own
        mechanism; skew shrinks the gain but never flips it."""
        gain = {}
        for distribution in ("uniform", "zipf_80_20"):
            off = self._value(result, distribution, "with_scan")
            on = self._value(result, distribution,
                             "with_scan_partitioned")
            gain[distribution] = on - off
        assert gain["uniform"] > gain["zipf_80_20"]


class TestBaselineExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_baselines.run()

    def test_cat_repartitioning_negligible(self, result):
        for row in result.rows:
            if row[1] == "cat":
                assert row[3] < 1e-4  # overhead vs workload

    def test_coloring_cost_scales_with_changes(self, result):
        coloring = {
            row[0]: row[2] for row in result.rows
            if row[1] == "page_coloring"
        }
        assert coloring[100] > coloring[10] > coloring[1] > 0

    def test_equal_capacity_note(self, result):
        assert any("equal capacity" in note for note in result.notes)
