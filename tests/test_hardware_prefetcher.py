"""Tests for the stream prefetcher model."""

import pytest

from repro.hardware.prefetcher import StreamPrefetcher


class TestDetection:
    def test_no_prefetch_before_trigger(self):
        prefetcher = StreamPrefetcher(trigger_length=3, degree=2)
        assert prefetcher.observe("s", 10) == []
        assert prefetcher.observe("s", 11) == []

    def test_prefetch_after_trigger(self):
        prefetcher = StreamPrefetcher(trigger_length=3, degree=2)
        prefetcher.observe("s", 10)
        prefetcher.observe("s", 11)
        assert prefetcher.observe("s", 12) == [13, 14]

    def test_continues_prefetching_on_stream(self):
        prefetcher = StreamPrefetcher(trigger_length=2, degree=1)
        prefetcher.observe("s", 0)
        assert prefetcher.observe("s", 1) == [2]
        assert prefetcher.observe("s", 2) == [3]

    def test_non_sequential_resets_run(self):
        prefetcher = StreamPrefetcher(trigger_length=3, degree=1)
        prefetcher.observe("s", 10)
        prefetcher.observe("s", 11)
        prefetcher.observe("s", 99)  # breaks the run
        assert prefetcher.observe("s", 100) == []

    def test_repeated_line_is_neutral(self):
        prefetcher = StreamPrefetcher(trigger_length=2, degree=1)
        prefetcher.observe("s", 5)
        assert prefetcher.observe("s", 5) == []
        assert prefetcher.observe("s", 6) == [7]

    def test_streams_tracked_independently(self):
        prefetcher = StreamPrefetcher(trigger_length=2, degree=1)
        prefetcher.observe("a", 0)
        prefetcher.observe("b", 100)
        assert prefetcher.observe("a", 1) == [2]
        assert prefetcher.observe("b", 101) == [102]

    def test_tracker_capacity_eviction(self):
        prefetcher = StreamPrefetcher(trigger_length=2, degree=1,
                                      max_streams=2)
        prefetcher.observe("a", 0)
        prefetcher.observe("b", 10)
        prefetcher.observe("c", 20)  # evicts one tracker entry
        # Capacity respected: no crash, at most 2 live streams tracked.
        assert prefetcher.observe("c", 21) == [22]

    def test_issued_counter(self):
        prefetcher = StreamPrefetcher(trigger_length=1, degree=3)
        prefetcher.observe("s", 0)
        assert prefetcher.issued == 3

    def test_reset(self):
        prefetcher = StreamPrefetcher(trigger_length=1, degree=1)
        prefetcher.observe("s", 0)
        prefetcher.reset()
        assert prefetcher.issued == 0

    @pytest.mark.parametrize("kwargs", [
        {"trigger_length": 0}, {"degree": 0}, {"max_streams": 0},
    ])
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            StreamPrefetcher(**kwargs)
