"""Tests for the fleet simulation (repro.cluster.fleet / node / faults)."""

import json

import pytest

from repro import seeding
from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultSpec,
    seeded_faults,
    validate_schedule,
)
from repro.errors import ClusterError
from repro.obs import observing


def _run(**overrides):
    defaults = dict(
        nodes=2, router="hash", policy="none", duration_s=3.0,
        rate_per_s=6.0, seed=7,
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults)).run()


class TestConfigValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ClusterError):
            ClusterConfig(nodes=0)

    def test_rejects_unknown_router(self):
        with pytest.raises(ClusterError):
            ClusterConfig(router="random")

    def test_rejects_replay_profile(self):
        with pytest.raises(ClusterError):
            ClusterConfig(profile="replay")

    def test_rejects_unknown_mix(self):
        with pytest.raises(ClusterError):
            ClusterConfig(mix="mixed")

    def test_rejects_fault_outside_fleet(self):
        with pytest.raises(ClusterError):
            ClusterConfig(nodes=2, faults=(FaultSpec(5, 1.0),))

    def test_rejects_overlapping_outages(self):
        with pytest.raises(ClusterError):
            ClusterConfig(
                nodes=2,
                faults=(
                    FaultSpec(1, 1.0, 5.0),
                    FaultSpec(1, 2.0, 3.0),
                ),
            )

    def test_node_seeds_derive_from_fleet_seed(self):
        config = ClusterConfig(seed=42)
        assert config.node_config(0).seed == seeding.derive_from(
            42, "node/0"
        )
        assert config.node_config(0).seed != config.node_config(1).seed


class TestConservationAndReport:
    def test_request_conservation(self):
        report = _run()
        assert report.generated == (
            report.completed + report.shed_admission
            + report.shed_failure + report.shed_no_node
        )
        assert report.generated > 0

    def test_report_structure_roundtrips_as_json(self):
        report = _run()
        payload = json.loads(report.to_json())
        assert payload["fleet_report_version"] == 6
        assert payload["execution"]["epochs"] == 1
        assert payload["execution"]["warnings"] == []
        assert len(payload["nodes"]) == 2
        for node in payload["nodes"]:
            # Each node embeds a full v4 single-node service report.
            assert node["report"]["report_version"] == 4
            assert node["routed_in"] == node["report"]["arrived"]
        tenants = [v["tenant"] for v in payload["fleet_slo"]]
        assert {"batch", "olap", "oltp"} <= set(tenants)

    def test_fleet_histograms_merge_node_histograms(self):
        report = _run()
        fleet = {
            v.tenant: v.completed for v in report.fleet_slo
            if v.completed
        }
        summed: dict = {}
        for node_report in report.node_reports:
            for verdict in node_report.slo:
                if verdict.completed:
                    summed[verdict.tenant] = (
                        summed.get(verdict.tenant, 0)
                        + verdict.completed
                    )
        assert fleet == summed
        assert report.aggregate["completed"] == sum(fleet.values())

    def test_batch_tenant_has_no_latency_target(self):
        report = _run()
        batch = report.fleet_verdict_for("batch")
        assert batch.target_p99_s is None
        assert batch.ok

    def test_cluster_metrics_counted(self):
        with observing() as (_, metrics):
            report = _run(nodes=3, rate_per_s=8.0)
        counters = metrics.snapshot()["counters"]
        assert counters["cluster.routed"] == report.generated
        assert "cluster.failover" not in counters  # nothing died
        assert report.forwarded > 0

    def test_runs_exactly_once(self):
        cluster = Cluster(ClusterConfig(
            nodes=1, policy="none", duration_s=2.0, rate_per_s=4.0,
        ))
        cluster.run()
        with pytest.raises(ClusterError):
            cluster.run()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        first = _run(router="affinity", policy="adaptive")
        second = _run(router="affinity", policy="adaptive")
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self):
        assert _run(seed=7).to_json() != _run(seed=8).to_json()

    def test_node0_report_independent_of_fleet_size(self):
        # The satellite guarantee: per-node arrival streams derive
        # from (fleet seed, node index) alone, and with a router that
        # keeps an unloaded fleet local, node 0 sees byte-identical
        # traffic whether it has 0 or 3 peers.
        def node0(n):
            return _run(
                nodes=n, router="least-loaded", rate_per_s=4.0,
                duration_s=4.0,
            ).node_reports[0].to_json()

        assert node0(1) == node0(4)

    def test_source_streams_differ_between_nodes(self):
        report = _run(router="least-loaded", rate_per_s=4.0)
        logs = [
            node_report.arrivals
            for node_report in report.node_reports
        ]
        assert logs[0] != logs[1]


class TestScalingMachinery:
    """Structural guarantees behind the fleet-scaling fix: the shared
    solve memo dedupes model solves across nodes, the merged event heap
    replaces the per-event scan, and neither perturbs node reports."""

    def test_solve_memo_shared_and_deduping(self):
        cluster = Cluster(ClusterConfig(
            nodes=4, router="least-loaded", policy="none",
            duration_s=3.0, rate_per_s=6.0, seed=7,
        ))
        cluster.run()
        solves = sum(node.rate_solves for node in cluster.nodes)
        assert len(cluster.solve_memo) > 0
        # Peers hit compositions their siblings already solved, so the
        # fleet performs fewer model solves than the nodes report.
        assert len(cluster.solve_memo) < solves
        for node in cluster.nodes:
            assert node.solve_memo is cluster.solve_memo

    def test_memo_does_not_change_node_counters(self):
        # A node's rate_solves counts its own cache misses whether or
        # not a peer already populated the memo — so the counter is
        # identical between a 1-node and a 4-node fleet.
        def node0_solves(n):
            cluster = Cluster(ClusterConfig(
                nodes=n, router="least-loaded", policy="none",
                duration_s=3.0, rate_per_s=6.0, seed=7,
            ))
            cluster.run()
            return cluster.nodes[0].rate_solves

        assert node0_solves(1) == node0_solves(4)

    def test_node_solves_independent_of_fleet_jobs(self):
        # Workers are pre-warmed from the parent memo snapshot per
        # wave, so a node's rate_solves counts the same cache misses
        # whether the fleet runs sequentially or across processes.
        def solves(fleet_jobs):
            cluster = Cluster(ClusterConfig(
                nodes=4, router="hash", policy="none",
                duration_s=3.0, rate_per_s=6.0, seed=7,
            ))
            cluster.run(fleet_jobs=fleet_jobs)
            return [node.rate_solves for node in cluster.nodes]

        assert solves(1) == solves(4)

    def test_frontier_heap_drains_clean(self):
        cluster = Cluster(ClusterConfig(
            nodes=3, router="least-loaded", policy="none",
            duration_s=3.0, rate_per_s=6.0, seed=7,
        ))
        cluster.run()
        # Only stale (version-superseded) entries may remain staged.
        for time_s, lane, index, version in cluster._frontier:
            assert cluster._lane_versions[(lane, index)] != version

    def test_scalar_and_vector_fleets_identical(self):
        config = ClusterConfig(
            nodes=2, router="least-loaded", policy="none",
            duration_s=3.0, rate_per_s=6.0, seed=7,
        )
        vector = Cluster(config, engine="vector").run()
        scalar = Cluster(config, engine="scalar").run()
        assert vector.to_json() == scalar.to_json()

    def test_rejects_unknown_engine(self):
        with pytest.raises(ClusterError):
            Cluster(ClusterConfig(nodes=1), engine="turbo")


class TestSampling:
    def test_sampled_fleet_sees_fewer_arrivals(self):
        full = _run(duration_s=6.0)
        sampled = _run(
            duration_s=6.0, sample_window_s=1.0, sample_period=3,
        )
        assert 0 < sampled.generated < full.generated

    def test_sampled_fleet_deterministic(self):
        kwargs = dict(
            duration_s=6.0, sample_window_s=1.0, sample_period=3,
            sample_warmup=0.5,
        )
        assert _run(**kwargs).to_json() == _run(**kwargs).to_json()

    def test_sampling_knobs_in_report_config(self):
        report = _run(
            duration_s=6.0, sample_window_s=1.0, sample_period=3,
        )
        payload = json.loads(report.to_json())
        assert payload["config"]["sample_window_s"] == 1.0
        assert payload["config"]["sample_period"] == 3
        assert payload["config"]["sample_warmup"] == 0.5

    def test_node0_invariance_holds_under_sampling(self):
        def node0(n):
            return _run(
                nodes=n, router="least-loaded", rate_per_s=4.0,
                duration_s=6.0, sample_window_s=1.0,
                sample_period=3,
            ).node_reports[0].to_json()

        assert node0(1) == node0(4)

    def test_arrivals_confined_to_simulated_windows(self):
        report = _run(
            duration_s=9.0, sample_window_s=1.0, sample_period=3,
        )
        for node_report in report.node_reports:
            for entry in node_report.arrivals:
                window = int(entry[0] // 1.0)
                assert window % 3 == 0


class TestFaults:
    def test_fault_spec_validation(self):
        with pytest.raises(ClusterError):
            FaultSpec(-1, 1.0)
        with pytest.raises(ClusterError):
            FaultSpec(0, -1.0)
        with pytest.raises(ClusterError):
            FaultSpec(0, 2.0, recover_at_s=2.0)

    def test_validate_schedule_sorts(self):
        ordered = validate_schedule(
            (FaultSpec(1, 3.0), FaultSpec(0, 1.0)), nodes=2
        )
        assert [f.kill_at_s for f in ordered] == [1.0, 3.0]

    def test_seeded_faults_deterministic_and_valid(self):
        first = seeded_faults(4, 3, duration_s=10.0, seed=99)
        second = seeded_faults(4, 3, duration_s=10.0, seed=99)
        assert first == second
        assert seeded_faults(4, 3, 10.0, seed=100) != first
        for fault in first:
            assert 0 <= fault.node < 4
            assert 0.0 < fault.kill_at_s < 10.0
            assert fault.recover_at_s > fault.kill_at_s

    def test_seeded_faults_need_two_nodes(self):
        with pytest.raises(ClusterError):
            seeded_faults(1, 1, 10.0, seed=1)

    def test_kill_and_recovery_accounting(self):
        kill_at, recover_at = 1.0, 2.0
        with observing() as (_, metrics):
            report = _run(
                nodes=3, rate_per_s=10.0, duration_s=4.0,
                faults=(FaultSpec(1, kill_at, recover_at),),
            )
        stats = report.node_stats[1]
        assert stats["kills"] == 1
        assert stats["alive"] is True  # recovered
        assert stats["downtime_s"] == pytest.approx(
            recover_at - kill_at
        )
        assert report.shed_failure == stats["failure_shed"]
        assert report.failovers > 0
        assert report.failovers == sum(
            s["failover_in"] for s in report.node_stats
        )
        counters = metrics.snapshot()["counters"]
        assert counters["cluster.failover"] == report.failovers
        if report.shed_failure:
            assert counters["cluster.shed"] == report.shed_failure
        # Conservation still holds with mid-run losses.
        assert report.generated == (
            report.completed + report.shed_admission
            + report.shed_failure + report.shed_no_node
        )

    def test_unrecovered_node_sheds_nothing_after_death(self):
        report = _run(
            nodes=2, rate_per_s=8.0, duration_s=3.0,
            faults=(FaultSpec(0, 1.0),),  # never recovers
        )
        stats = report.node_stats[0]
        assert stats["alive"] is False
        end = max(
            3.0,
            *(r.end_time_s for r in report.node_reports),
        )
        assert stats["downtime_s"] == pytest.approx(end - 1.0)
        # Node 0 accepted nothing after the kill: its last arrival
        # predates the fault.
        last_arrival = max(
            (t for t, _ in report.node_reports[0].arrivals),
            default=0.0,
        )
        assert last_arrival <= 1.0

    def test_single_node_fleet_with_dead_node_sheds_no_node(self):
        report = _run(
            nodes=1, router="least-loaded", rate_per_s=8.0,
            duration_s=3.0, faults=(FaultSpec(0, 1.0),),
        )
        assert report.shed_no_node > 0
        assert report.generated == (
            report.completed + report.shed_admission
            + report.shed_failure + report.shed_no_node
        )

    def test_faults_are_byte_deterministic(self):
        faults = (FaultSpec(1, 1.0, 2.0),)
        first = _run(nodes=3, faults=faults, rate_per_s=8.0)
        second = _run(nodes=3, faults=faults, rate_per_s=8.0)
        assert first.to_json() == second.to_json()


class TestAdaptiveFleet:
    def test_adaptive_nodes_reconfigure(self):
        report = _run(policy="adaptive", rate_per_s=8.0)
        for node_report in report.node_reports:
            controller = node_report.controller
            assert controller["enabled"]
            assert controller["ticks"] > 0
        assert any(
            node_report.controller["reconfigurations"] > 0
            for node_report in report.node_reports
        )

    def test_affinity_router_reports_classifications(self):
        report = _run(router="affinity", rate_per_s=8.0)
        described = report.router
        assert described["policy"] == "affinity"
        assert described["classifications"]["scan"] == "polluting"
        assert described["classifications"]["agg"] == "sensitive"
