"""Tests for interval sampling (SampleGrid) in the serve layer."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import QueryService, SampleGrid, ServiceConfig


class TestSampleGrid:
    def test_validation(self):
        with pytest.raises(ServeError):
            SampleGrid(window_s=0.0)
        with pytest.raises(ServeError):
            SampleGrid(window_s=1.0, period=0)
        with pytest.raises(ServeError):
            SampleGrid(window_s=1.0, warmup_fraction=1.0)
        with pytest.raises(ServeError):
            SampleGrid(window_s=1.0, warmup_fraction=-0.1)

    def test_window_of(self):
        grid = SampleGrid(window_s=2.0, period=3)
        assert grid.window_of(0.0) == 0
        assert grid.window_of(1.99) == 0
        assert grid.window_of(2.0) == 1
        assert grid.window_of(13.5) == 6

    def test_simulated_every_period_th_window(self):
        grid = SampleGrid(window_s=1.0, period=3)
        assert grid.simulated(0.5)
        assert not grid.simulated(1.5)
        assert not grid.simulated(2.5)
        assert grid.simulated(3.5)

    def test_period_one_simulates_everything(self):
        grid = SampleGrid(window_s=1.0, period=1, warmup_fraction=0.0)
        for t in (0.1, 0.9, 5.3, 17.7):
            assert grid.simulated(t)
            assert grid.measured(t)

    def test_measured_requires_post_warmup(self):
        grid = SampleGrid(
            window_s=2.0, period=2, warmup_fraction=0.5
        )
        assert grid.simulated(0.5) and not grid.measured(0.5)
        assert grid.measured(1.5)
        # Skipped windows are never measured.
        assert not grid.measured(2.5)

    def test_next_simulated_start(self):
        grid = SampleGrid(window_s=1.0, period=3)
        # From a skipped window, jump to the next simulated one.
        assert grid.next_simulated_start(1.5) == 3.0
        assert grid.next_simulated_start(2.2) == 3.0
        # From a simulated window, the *next* simulated window.
        assert grid.next_simulated_start(0.5) == 3.0
        assert grid.next_simulated_start(3.1) == 6.0


class TestConfigKnobs:
    def test_defaults_off(self):
        assert ServiceConfig().sample_grid() is None

    def test_grid_built_from_config(self):
        config = ServiceConfig(
            sample_window_s=2.0, sample_period=4,
            sample_warmup=0.25,
        )
        grid = config.sample_grid()
        assert grid == SampleGrid(
            window_s=2.0, period=4, warmup_fraction=0.25
        )

    def test_invalid_knobs_rejected_at_config(self):
        with pytest.raises(ServeError):
            ServiceConfig(sample_window_s=-1.0)
        with pytest.raises(ServeError):
            ServiceConfig(sample_window_s=1.0, sample_period=0)

    def test_knobs_serialized(self):
        config = ServiceConfig(
            sample_window_s=1.0, sample_period=5
        )
        payload = config.to_dict()
        assert payload["sample_window_s"] == 1.0
        assert payload["sample_period"] == 5
        assert payload["sample_warmup"] == 0.5


def _run(**overrides):
    defaults = dict(
        profile="poisson", policy="none", mix="olap",
        duration_s=9.0, rate_per_s=10.0, seed=7,
    )
    defaults.update(overrides)
    return QueryService(ServiceConfig(**defaults)).run()


class TestSampledService:
    def test_sampled_run_sees_fewer_arrivals(self):
        full = _run()
        sampled = _run(sample_window_s=1.0, sample_period=3)
        assert 0 < sampled.arrived < full.arrived

    def test_arrivals_confined_to_simulated_windows(self):
        report = _run(sample_window_s=1.0, sample_period=3)
        for entry in report.arrivals:
            assert int(entry[0] // 1.0) % 3 == 0

    def test_warmup_arrivals_run_but_are_not_measured(self):
        report = _run(
            sample_window_s=1.0, sample_period=3,
            sample_warmup=0.5,
        )
        measured = sum(v.completed for v in report.slo)
        # Warmup arrivals complete (they shape queue state) without
        # contributing latency observations.
        assert 0 < measured < report.completed

    def test_zero_warmup_measures_everything(self):
        report = _run(
            sample_window_s=1.0, sample_period=3,
            sample_warmup=0.0,
        )
        assert sum(v.completed for v in report.slo) == (
            report.completed
        )

    def test_sampled_run_deterministic(self):
        kwargs = dict(sample_window_s=1.0, sample_period=3)
        assert _run(**kwargs).to_json() == _run(**kwargs).to_json()

    def test_report_records_knobs(self):
        report = _run(sample_window_s=1.0, sample_period=3)
        payload = json.loads(report.to_json())
        assert payload["config"]["sample_window_s"] == 1.0
        assert payload["config"]["sample_period"] == 3
        assert payload["report_version"] == 4
