"""Tests for the PCM-style performance counters."""

import pytest

from repro.hardware.counters import CounterSample, PerfCounters


class TestCounterSample:
    def test_hit_ratio(self):
        sample = CounterSample(instructions=100, llc_references=50,
                               llc_hits=40)
        assert sample.llc_hit_ratio == pytest.approx(0.8)
        assert sample.llc_misses == 10
        assert sample.misses_per_instruction == pytest.approx(0.1)

    def test_zero_division_guards(self):
        sample = CounterSample()
        assert sample.llc_hit_ratio == 0.0
        assert sample.misses_per_instruction == 0.0

    def test_delta(self):
        before = CounterSample(10, 5, 4)
        after = CounterSample(30, 15, 10)
        delta = after.delta(before)
        assert delta == CounterSample(20, 10, 6)

    def test_combined(self):
        total = CounterSample(1, 2, 1).combined(CounterSample(9, 8, 7))
        assert total == CounterSample(10, 10, 8)


class TestPerfCounters:
    def test_record_and_sample(self):
        counters = PerfCounters()
        counters.record("q1", instructions=100, llc_references=10,
                        llc_hits=8)
        counters.record("q1", instructions=50, llc_references=5,
                        llc_hits=1)
        sample = counters.sample("q1")
        assert sample.instructions == 150
        assert sample.llc_hits == 9

    def test_system_aggregate(self):
        counters = PerfCounters()
        counters.record("a", instructions=10)
        counters.record("b", instructions=20, llc_references=4,
                        llc_hits=2)
        system = counters.system()
        assert system.instructions == 30
        assert system.llc_references == 4

    def test_unknown_scope_is_zero(self):
        counters = PerfCounters()
        assert counters.sample("nope") == CounterSample()

    def test_rejects_negative(self):
        counters = PerfCounters()
        with pytest.raises(ValueError):
            counters.record("x", instructions=-1)

    def test_rejects_hits_above_references(self):
        counters = PerfCounters()
        with pytest.raises(ValueError):
            counters.record("x", llc_references=1, llc_hits=2)

    def test_scopes_sorted(self):
        counters = PerfCounters()
        counters.record("b")
        counters.record("a")
        assert counters.scopes() == ["a", "b"]

    def test_reset(self):
        counters = PerfCounters()
        counters.record("a", instructions=1)
        counters.reset()
        assert counters.system() == CounterSample()
