"""Tests for the inclusive cache hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.hardware.cat import CatController
from repro.hardware.fastcache import SamplingPlan
from repro.hardware.hierarchy import CacheHierarchy
from repro.hardware.prefetcher import StreamPrefetcher
from repro.hardware.trace import (
    MemoryAccess,
    random_region_trace,
    sequential_trace,
)
from repro.obs import runtime


class TestHitLevels:
    def test_first_access_goes_to_dram(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        result = hierarchy.access(0, MemoryAccess(0x1000, "s"))
        assert result.level == "DRAM"
        assert hierarchy.dram_accesses == 1

    def test_second_access_hits_l1(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        hierarchy.access(0, MemoryAccess(0x1000, "s"))
        result = hierarchy.access(0, MemoryAccess(0x1000, "s"))
        assert result.level == "L1"

    def test_other_core_hits_llc(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        hierarchy.access(0, MemoryAccess(0x1000, "s"))
        result = hierarchy.access(1, MemoryAccess(0x1000, "s"))
        assert result.level == "LLC"

    def test_unknown_core_rejected(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        with pytest.raises(ConfigError):
            hierarchy.access(small_spec.cores, MemoryAccess(0, "s"))


class TestInclusivity:
    def test_llc_eviction_back_invalidates_private_caches(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        hierarchy.access(0, MemoryAccess(0x0, "victim"))
        assert hierarchy.l1(0).contains(0x0)
        # Thrash the LLC set that holds line 0 until it is evicted.
        sets = small_spec.llc.sets
        for i in range(1, small_spec.llc.ways + 2):
            hierarchy.access(0, MemoryAccess(i * sets * 64, "churn"))
        if not hierarchy.llc.contains(0x0):
            # Inclusive invariant: the private copies are gone too.
            assert not hierarchy.l1(0).contains(0x0)
            assert not hierarchy.l2(0).contains(0x0)

    def test_inclusive_invariant_holds_globally(self, small_spec, rng):
        hierarchy = CacheHierarchy(small_spec)
        for addr in rng.integers(0, 1 << 16, size=1500):
            hierarchy.access(int(addr) % small_spec.cores,
                             MemoryAccess(int(addr) * 64, "w"))
        # Every line in any L1/L2 must also be present in the LLC.
        for core in range(small_spec.cores):
            for cache in (hierarchy.l1(core), hierarchy.l2(core)):
                for cache_set in cache._sets:
                    for line in cache_set:
                        if line.valid:
                            assert hierarchy.llc.contains(
                                line.tag * 64
                            )


class TestCatIntegration:
    def test_core_clos_drives_allocation(self, small_spec):
        cat = CatController(small_spec)
        cat.set_clos_mask(1, 0x3)
        cat.assign_core(0, 1)
        hierarchy = CacheHierarchy(small_spec, cat=cat)
        for access in sequential_trace(0, 64 * 64 * 300, "scan"):
            hierarchy.access(0, access)
        # Core 0 (CLOS 1, ways 0-1) never filled ways 2-19 of the LLC.
        assert hierarchy.llc.lines_in_ways(0xFFFFC) == 0


class TestPrefetcherIntegration:
    def test_prefetcher_turns_stream_into_llc_hits(self, small_spec):
        with_pf = CacheHierarchy(
            small_spec, prefetcher=StreamPrefetcher(trigger_length=2,
                                                    degree=4)
        )
        levels = with_pf.run_trace(
            0, sequential_trace(0, 64 * 400, "scan")
        )
        without_pf = CacheHierarchy(small_spec)
        base_levels = without_pf.run_trace(
            0, sequential_trace(0, 64 * 400, "scan")
        )
        # The prefetcher converts demand DRAM accesses into LLC hits.
        assert levels["DRAM"] < base_levels["DRAM"]
        assert levels["LLC"] > base_levels["LLC"]

    def test_run_trace_respects_max_accesses(self, small_spec):
        hierarchy = CacheHierarchy(small_spec)
        levels = hierarchy.run_trace(
            0, sequential_trace(0, 64 * 100, "s"), max_accesses=10
        )
        assert sum(levels.values()) == 10


def _mixed_trace(rng, accesses=6000):
    """Random probes over a hot region interleaved with a line scan."""
    trace = []
    scan_line = 1 << 22
    for i in range(accesses):
        if i % 3:
            line = int(rng.integers(0, 3000))
            trace.append(MemoryAccess(line * 64, "region"))
        else:
            scan_line += 1
            trace.append(MemoryAccess(scan_line * 64, "scan"))
    return trace


def _hierarchy_digests(hierarchy):
    from repro.hardware.engine import cache_state_digest

    return (
        cache_state_digest(hierarchy.llc),
        tuple(
            cache_state_digest(hierarchy.l1(core))
            for core in range(hierarchy.spec.cores)
        ),
        tuple(
            cache_state_digest(hierarchy.l2(core))
            for core in range(hierarchy.spec.cores)
        ),
    )


class TestBatchedReplay:
    """The staged/batched fast-engine path vs the per-access truth."""

    def _run(self, small_spec, trace, engine, prefetcher=None, cat=None):
        hierarchy = CacheHierarchy(
            small_spec,
            cat=cat,
            prefetcher=prefetcher,
            engine=engine,
        )
        levels = hierarchy.run_trace(0, trace)
        return hierarchy, levels

    def test_matches_reference_engine(self, small_spec, rng):
        trace = _mixed_trace(rng)
        ref, ref_levels = self._run(small_spec, trace, "ref")
        fast, fast_levels = self._run(small_spec, trace, "fast")
        assert ref_levels == fast_levels
        assert ref.dram_accesses == fast.dram_accesses
        assert _hierarchy_digests(ref) == _hierarchy_digests(fast)

    def test_matches_reference_with_prefetcher(self, small_spec, rng):
        trace = _mixed_trace(rng)
        ref, ref_levels = self._run(
            small_spec, trace, "ref",
            prefetcher=StreamPrefetcher(trigger_length=2, degree=4),
        )
        fast, fast_levels = self._run(
            small_spec, trace, "fast",
            prefetcher=StreamPrefetcher(trigger_length=2, degree=4),
        )
        assert ref_levels == fast_levels
        assert ref.dram_accesses == fast.dram_accesses
        assert _hierarchy_digests(ref) == _hierarchy_digests(fast)

    def test_matches_reference_under_cat(self, small_spec, rng):
        trace = _mixed_trace(rng)
        results = []
        for engine in ("ref", "fast"):
            cat = CatController(small_spec)
            cat.set_clos_mask(1, 0x3)
            cat.assign_core(0, 1)
            hierarchy, levels = self._run(
                small_spec, trace, engine, cat=cat
            )
            results.append((levels, _hierarchy_digests(hierarchy)))
        assert results[0] == results[1]
        assert results[0][0]["DRAM"] > 0

    def test_conflicting_chunk_falls_back_and_stays_exact(
        self, small_spec
    ):
        # Thrash one LLC set so lines resident in L1 are evicted from
        # the LLC *within* a chunk: staging cannot be exact, the chunk
        # must rewind to the per-access path (counted as a fallback).
        sets = small_spec.llc.sets
        lines = list(range(small_spec.llc.ways + 4)) * 3
        trace = [MemoryAccess(i * sets * 64, "thrash") for i in lines]
        with runtime.observing() as (_, metrics):
            fast, fast_levels = self._run(small_spec, trace, "fast")
            fallbacks = metrics.counter("sim.trace.fallbacks").value
        ref, ref_levels = self._run(small_spec, trace, "ref")
        assert fallbacks > 0
        assert ref_levels == fast_levels
        assert _hierarchy_digests(ref) == _hierarchy_digests(fast)

    def test_sampled_run_trace_deterministic_across_engines(
        self, small_spec, rng
    ):
        trace = _mixed_trace(rng, accesses=4000)
        plan = SamplingPlan(window=500, period=2, warmup_fraction=0.5)
        results = []
        for engine in ("ref", "fast"):
            hierarchy = CacheHierarchy(small_spec, engine=engine)
            levels = hierarchy.run_trace(0, trace, sample=plan)
            results.append((levels, hierarchy.dram_accesses))
        assert results[0] == results[1]
        # Half the windows were skipped entirely.
        assert sum(results[0][0].values()) < len(trace)
