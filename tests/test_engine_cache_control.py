"""Tests for the CUID policy and the compare-before-set controller."""

import numpy as np
import pytest

from repro.config import SystemSpec
from repro.engine.cache_control import CacheController, CuidPolicy
from repro.engine.job import Job
from repro.hardware.cat import CatController
from repro.operators.base import CacheUsage
from repro.operators.join import ForeignKeyJoin
from repro.resctrl.filesystem import ResctrlFilesystem
from repro.resctrl.interface import ResctrlInterface
from repro.storage.table import ColumnTable, Schema, SchemaColumn


@pytest.fixture
def resctrl(spec):
    return ResctrlInterface(ResctrlFilesystem(CatController(spec)))


@pytest.fixture
def controller(spec, resctrl):
    return CacheController(spec, resctrl, enabled=True)


def job_with_cuid(cuid: CacheUsage) -> Job:
    return Job(f"job_{cuid.value}", callable=lambda: None, cuid=cuid)


def join_job(spec, pk_rows: int) -> Job:
    pk_table = ColumnTable(
        Schema("R", (SchemaColumn("P", primary_key=True),))
    )
    pk_table.load({"P": np.arange(1, 101)})
    fk_table = ColumnTable(Schema("S", (SchemaColumn("F"),)))
    fk_table.load({"F": np.array([1, 2])})
    operator = ForeignKeyJoin(pk_table, "P", fk_table, "F", spec=spec)
    # Override the predicted vector size by monkeypatching the PK data
    # is cumbersome; instead patch bit_vector_bytes via calibration of
    # keys: build tables already define it.  For size control we use
    # the classify-relevant attribute directly.
    job = Job("join", operator=operator)
    return job


class TestCuidPolicy:
    def test_paper_default_masks(self, spec):
        policy = CuidPolicy.paper_default(spec)
        assert policy.polluting_mask == 0x3
        assert policy.sensitive_mask == 0xFFFFF
        assert policy.adaptive_sensitive_mask == 0xFFF

    def test_mask_for_polluting(self, spec):
        policy = CuidPolicy.paper_default(spec)
        assert policy.mask_for(
            job_with_cuid(CacheUsage.POLLUTING)
        ) == 0x3

    def test_mask_for_sensitive(self, spec):
        policy = CuidPolicy.paper_default(spec)
        assert policy.mask_for(
            job_with_cuid(CacheUsage.SENSITIVE)
        ) == 0xFFFFF

    def test_adaptive_join_small_vector_polluting(self, spec):
        policy = CuidPolicy.paper_default(spec)
        job = join_job(spec, 100)  # 100 keys: tiny vector -> polluter
        assert policy.mask_for(job) == 0x3

    def test_adaptive_unknown_operator_defaults_sensitive(self, spec):
        policy = CuidPolicy.paper_default(spec)
        job = job_with_cuid(CacheUsage.ADAPTIVE)
        assert policy.mask_for(job) == spec.full_mask


class TestCompareBeforeSet:
    def test_first_association_calls_kernel(self, controller):
        controller.prepare_thread(1000, job_with_cuid(
            CacheUsage.POLLUTING))
        assert controller.stats.kernel_calls == 1
        assert controller.thread_mask(1000) == 0x3

    def test_same_mask_elided(self, controller):
        job = job_with_cuid(CacheUsage.POLLUTING)
        controller.prepare_thread(1000, job)
        controller.prepare_thread(1000, job)
        controller.prepare_thread(1000, job)
        assert controller.stats.associations_requested == 3
        assert controller.stats.kernel_calls == 1
        assert controller.stats.elided_calls == 2

    def test_mask_change_calls_kernel(self, controller):
        controller.prepare_thread(1, job_with_cuid(CacheUsage.POLLUTING))
        controller.prepare_thread(1, job_with_cuid(CacheUsage.SENSITIVE))
        assert controller.stats.kernel_calls == 2

    def test_sensitive_job_on_fresh_thread_is_free(self, controller):
        # Fresh threads already have the full mask: no kernel call.
        controller.prepare_thread(5, job_with_cuid(CacheUsage.SENSITIVE))
        assert controller.stats.kernel_calls == 0

    def test_disabled_elision_always_calls(self, spec, resctrl):
        controller = CacheController(
            spec, resctrl, enabled=True, compare_before_set=False
        )
        job = job_with_cuid(CacheUsage.POLLUTING)
        controller.prepare_thread(1, job)
        controller.prepare_thread(1, job)
        assert controller.stats.kernel_calls == 2


class TestEnableDisable:
    def test_disabled_controller_grants_full_mask(self, spec, resctrl):
        controller = CacheController(spec, resctrl, enabled=False)
        mask = controller.prepare_thread(
            1, job_with_cuid(CacheUsage.POLLUTING)
        )
        assert mask == spec.full_mask
        assert controller.stats.kernel_calls == 0

    def test_disable_restores_threads(self, controller, spec):
        controller.prepare_thread(1, job_with_cuid(CacheUsage.POLLUTING))
        controller.disable()
        assert controller.thread_mask(1) == spec.full_mask

    def test_disable_does_not_inflate_association_stats(
        self, controller, spec
    ):
        # Regression: disable() used to route restores through the
        # job-association path, inflating associations_requested and
        # skewing the elision rate bench_overhead.py reports.
        controller.prepare_thread(1, job_with_cuid(CacheUsage.POLLUTING))
        controller.prepare_thread(2, job_with_cuid(CacheUsage.POLLUTING))
        controller.prepare_thread(3, job_with_cuid(CacheUsage.SENSITIVE))
        assert controller.stats.associations_requested == 3
        assert controller.stats.kernel_calls == 2
        controller.disable()
        # Two restricted threads restored; the full-mask thread (tid 3)
        # needs nothing.  Job-association stats are untouched.
        assert controller.stats.associations_requested == 3
        assert controller.stats.kernel_calls == 2
        assert controller.stats.restores == 2
        assert controller.stats.elided_calls == 1
        assert controller.stats.elision_rate == pytest.approx(1 / 3)
        for tid in (1, 2, 3):
            assert controller.thread_mask(tid) == spec.full_mask

    def test_associate_explicit_mask_counted(self, controller):
        controller.associate(9, 0x3)
        controller.associate(9, 0x3)
        assert controller.stats.associations_requested == 2
        assert controller.stats.kernel_calls == 1
        assert controller.thread_mask(9) == 0x3

    def test_enable_with_new_policy(self, controller, spec):
        custom = CuidPolicy(0xF, spec.full_mask, 0xFF)
        controller.enable(custom)
        mask = controller.prepare_thread(
            2, job_with_cuid(CacheUsage.POLLUTING)
        )
        assert mask == 0xF

    def test_resctrl_state_reflects_controller(self, controller):
        controller.prepare_thread(77, job_with_cuid(
            CacheUsage.POLLUTING))
        assert controller.resctrl.thread_mask(77) == 0x3
