"""Tests for the trace-driven cache simulator (repro.hardware.cache)."""

import numpy as np
import pytest

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.units import KiB


def make_cat(ways: int = 4, clos_masks: dict[int, int] | None = None):
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(8 * 64 * ways, ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
    )
    cat = CatController(spec)
    for clos, mask in (clos_masks or {}).items():
        cat.set_clos_mask(clos, mask)
    return spec, cat


class TestBasicBehaviour:
    def test_miss_then_hit(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        assert cache.access(0x40) is False
        assert cache.access(0x40) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_same_line_different_bytes_hit(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x40)
        assert cache.access(0x41) is True  # same 64 B line

    def test_capacity_eviction(self, tiny_cache_spec):
        # 4 ways: the 5th distinct line mapping to one set evicts LRU.
        cache = SetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        lines = [i * sets * 64 for i in range(5)]  # all map to set 0
        for addr in lines:
            cache.access(addr)
        # The first (LRU) line is gone; the last four are resident.
        assert not cache.contains(lines[0])
        for addr in lines[1:]:
            assert cache.contains(addr)

    def test_lru_order_respects_reuse(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        lines = [i * sets * 64 for i in range(4)]
        for addr in lines:
            cache.access(addr)
        cache.access(lines[0])  # refresh line 0 -> line 1 becomes LRU
        cache.access(4 * sets * 64)  # force an eviction
        assert cache.contains(lines[0])
        assert not cache.contains(lines[1])

    def test_occupancy_never_exceeds_capacity(self, tiny_cache_spec, rng):
        cache = SetAssociativeCache(tiny_cache_spec)
        capacity_lines = tiny_cache_spec.sets * tiny_cache_spec.ways
        for addr in rng.integers(0, 1 << 20, size=2000):
            cache.access(int(addr) * 64)
        assert cache.valid_lines() <= capacity_lines

    def test_invalidate(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x80)
        assert cache.invalidate(0x80 // 64) is True
        assert not cache.contains(0x80)
        assert cache.invalidate(0x80 // 64) is False

    def test_flush(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x40)
        cache.flush()
        assert cache.valid_lines() == 0
        assert cache.stats.accesses == 0

    def test_hit_ratio_zero_without_accesses(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        assert cache.stats.hit_ratio == 0.0

    def test_access_many_returns_delta(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        delta = cache.access_many([0x40, 0x40, 0x80])
        assert delta.misses == 2
        assert delta.hits == 1

    def test_access_many_delta_includes_evictions(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        # Pre-fill set 0, then access_many forces two evictions; the
        # returned delta must count only the evictions of this call.
        cache.access_many([i * sets * 64 for i in range(4)])
        delta = cache.access_many([i * sets * 64 for i in range(4, 6)])
        assert delta.evictions == 2
        assert delta.misses == 2
        assert cache.stats.evictions == 2


class TestStreamAccounting:
    def test_per_stream_stats(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x40, stream="a")
        cache.access(0x40, stream="a")
        cache.access(0x80, stream="b")
        assert cache.stats_by_stream["a"].hits == 1
        assert cache.stats_by_stream["b"].misses == 1

    def test_occupancy_by_stream(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x40, stream="a")
        cache.access(0x80, stream="b")
        occupancy = cache.occupancy_by_stream()
        assert occupancy == {"a": 1, "b": 1}

    def test_prefetch_not_counted_as_demand(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cache.access(0x40, is_prefetch=True)
        assert cache.stats.accesses == 0
        assert cache.contains(0x40)


class TestCatWayMasking:
    def test_restricted_clos_only_fills_its_ways(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        sets = spec.llc.sets
        for i in range(16):
            cache.access(i * sets * 64, clos=1)
        occupancy = cache.occupancy_by_way()
        assert set(occupancy) <= {0, 1}

    def test_isolation_between_disjoint_masks(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3, 2: 0xC})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        sets = spec.llc.sets
        # Fill CLOS 1's ways with its working set.
        protected = [i * sets * 64 for i in range(2)]
        for addr in protected:
            cache.access(addr, clos=1)
        # CLOS 2 churns through many lines of the same set.
        for i in range(2, 50):
            cache.access(i * sets * 64, clos=2)
        # CLOS 1's lines were never evicted: disjoint mask isolation.
        for addr in protected:
            assert cache.contains(addr)

    def test_hits_allowed_anywhere(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3, 2: 0xC})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        cache.access(0x0, clos=2)  # resident in ways 2-3
        # CLOS 1 can *hit* on it although it may not allocate there.
        assert cache.access(0x0, clos=1) is True

    def test_restricted_occupancy_bounded(self, rng):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        for addr in rng.integers(0, 1 << 16, size=3000):
            cache.access(int(addr) * 64, clos=1)
        # Everything CLOS 1 cached lives in its two ways.
        outside = cache.lines_in_ways(0xC)
        assert outside == 0

    def test_clos_ways_memoized_until_mask_change(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        first = cache._clos_ways(1)
        assert cache._clos_ways(1) is first  # cached, not rebuilt
        version = cat.mask_version
        cat.set_clos_mask(1, 0xC)
        assert cat.mask_version > version
        updated = cache._clos_ways(1)
        assert updated is not first
        assert updated == [2, 3]

    def test_mask_reprogramming_respected_mid_trace(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = SetAssociativeCache(spec.llc, cat=cat)
        sets = spec.llc.sets
        cache.access(0, clos=1)
        cat.set_clos_mask(1, 0xC)  # must invalidate the memo
        for i in range(1, 8):
            cache.access(i * sets * 64, clos=1)
        # New fills landed only in ways 2-3; the old line in ways 0-1
        # was never evicted by them.
        assert cache.contains(0)
        assert cache.occupancy_by_way().get(0, 0) + \
            cache.occupancy_by_way().get(1, 0) == 1
