"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment == "fig4"
        assert args.fast

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_single_figure(self, capsys):
        assert main(["run", "fig4", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "column scan" in output
        assert "normalized_throughput" in output

    def test_all_figures_registered(self):
        expected = {
            "fig1", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig12", "ext-sched", "ext-coloring", "ext-sort",
            "ext-trace", "ext-skew", "report",
        }
        assert set(EXPERIMENTS) == expected
