"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    expand_experiments,
    main,
)


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment == "fig4"
        assert args.fast

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_single_figure(self, capsys):
        assert main(["run", "fig4", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "column scan" in output
        assert "normalized_throughput" in output

    def test_all_figures_registered(self):
        expected = {
            "fig1", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig12", "ext-sched", "ext-cluster", "ext-coloring",
            "ext-defense", "ext-planner", "ext-service", "ext-sort",
            "ext-trace", "ext-skew", "report",
        }
        assert set(EXPERIMENTS) == expected


class TestExpansion:
    def test_all_excludes_report(self):
        # Regression: 'run all' used to include 'report', which re-runs
        # every figure itself — the whole evaluation executed twice.
        names = expand_experiments("all")
        assert "report" not in names
        assert set(names) == set(EXPERIMENTS) - {"report"}
        assert names == sorted(names)

    def test_single_name_passes_through(self):
        assert expand_experiments("fig9") == ["fig9"]
        # report stays directly invocable.
        assert expand_experiments("report") == ["report"]


class TestJsonArtifacts:
    def test_json_flag_writes_loadable_artifact(self, tmp_path, capsys):
        from repro.experiments.reporting import format_table
        from repro.experiments.runner import FigureResult
        from repro.obs import load_artifact

        assert main(
            ["run", "fig4", "--fast", "--json", "--out",
             str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "artifact:" in output
        files = list(tmp_path.glob("fig4-*.json"))
        assert len(files) == 1

        artifact = load_artifact(files[0])
        assert artifact.experiment == "fig4"
        assert artifact.fast is True
        figure = FigureResult.from_dict(artifact.figures[0])
        # The stored rows reproduce the printed table exactly.
        assert format_table(
            figure.headers, figure.rows, title=figure.title
        ) in output
        counters = artifact.metrics["counters"]
        assert counters["che.solves"] > 0
        assert counters["simulator.solves"] > 0
        assert artifact.spans is not None

    def test_trace_flag_prints_span_tree(self, capsys, tmp_path):
        assert main(
            ["run", "fig4", "--fast", "--trace"]
        ) == 0
        output = capsys.readouterr().out
        assert "fig4" in output
        assert "solve_segment" in output

    def test_artifact_is_valid_json(self, tmp_path, capsys):
        main(["run", "fig4", "--fast", "--json", "--out",
              str(tmp_path)])
        capsys.readouterr()
        path = next(tmp_path.glob("fig4-*.json"))
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 3
        # Sequential run: launched with the default --jobs 1 and not on
        # a pool worker; no --seed, so the per-component defaults.
        assert payload["jobs"] == 1
        assert payload["worker"] is None
        assert payload["seed"] is None

    def test_seed_recorded_in_artifact(self, tmp_path, capsys):
        main(["run", "fig4", "--fast", "--json", "--seed", "11",
              "--out", str(tmp_path)])
        capsys.readouterr()
        path = next(tmp_path.glob("fig4-*.json"))
        payload = json.loads(path.read_text())
        assert payload["seed"] == 11

    def test_seed_cleared_after_run(self, tmp_path, capsys):
        from repro import seeding

        main(["run", "fig4", "--fast", "--seed", "11"])
        capsys.readouterr()
        assert seeding.get_seed() is None


class TestServeCommand:
    def test_parser_accepts_serve(self):
        args = build_parser().parse_args(
            ["serve", "--profile", "bursty", "--policy", "static",
             "--seed", "3"]
        )
        assert args.command == "serve"
        assert args.profile == "bursty"
        assert args.policy == "static"
        assert args.seed == 3

    def test_serve_writes_deterministic_report(
        self, tmp_path, capsys
    ):
        argv = ["serve", "--profile", "poisson", "--policy", "none",
                "--duration", "3", "--rate", "6", "--seed", "7",
                "--out", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "report:" in first
        path = tmp_path / "serve-poisson-none-seed7.json"
        first_bytes = path.read_bytes()
        assert main(argv) == 0
        capsys.readouterr()
        assert path.read_bytes() == first_bytes
        payload = json.loads(first_bytes)
        assert payload["config"]["policy"] == "none"
        assert payload["completed"] > 0

    def test_replay_profile_requires_trace_file(self, capsys):
        assert main(["serve", "--profile", "replay"]) == 2
        err = capsys.readouterr().err
        assert "--trace-file" in err

    def test_trace_file_requires_replay_profile(self, capsys):
        assert main(
            ["serve", "--profile", "poisson", "--trace-file", "x.json"]
        ) == 2
        assert "--trace-file" in capsys.readouterr().err

    def test_replay_redrives_recorded_arrivals(
        self, tmp_path, capsys
    ):
        record = ["serve", "--profile", "poisson", "--policy", "none",
                  "--duration", "3", "--rate", "6", "--seed", "7",
                  "--out", str(tmp_path)]
        assert main(record) == 0
        capsys.readouterr()
        trace = tmp_path / "serve-poisson-none-seed7.json"
        replay = ["serve", "--profile", "replay", "--policy", "none",
                  "--trace-file", str(trace), "--out", str(tmp_path)]
        assert main(replay) == 0
        capsys.readouterr()
        recorded = json.loads(trace.read_text())
        replays = list(tmp_path.glob("serve-replay-none-*.json"))
        assert len(replays) == 1
        replayed = json.loads(replays[0].read_text())
        # Identical offered traffic; only the profile label differs.
        assert replayed["arrivals"] == recorded["arrivals"]
        assert replayed["completed"] == recorded["completed"]
        for mine, theirs in zip(replayed["slo"], recorded["slo"]):
            assert mine["tenant"] == theirs["tenant"]
            assert mine["completed"] == theirs["completed"]
            assert mine["p99_s"] == theirs["p99_s"]
        assert replayed["config"]["profile"] == "replay"


class TestClusterCommand:
    def test_parser_accepts_cluster(self):
        args = build_parser().parse_args(
            ["cluster", "--nodes", "4", "--router", "affinity",
             "--seed", "3", "--faults", "2"]
        )
        assert args.command == "cluster"
        assert args.nodes == 4
        assert args.router == "affinity"
        assert args.seed == 3
        assert args.faults == 2

    def test_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--router", "random"]
            )

    def test_cluster_writes_deterministic_report(
        self, tmp_path, capsys
    ):
        argv = ["cluster", "--nodes", "2", "--router", "hash",
                "--policy", "none", "--duration", "3", "--rate", "6",
                "--seed", "7", "--out", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "report:" in first
        assert "fleet olap" in first
        path = tmp_path / "cluster-hash-n2-seed7.json"
        first_bytes = path.read_bytes()
        # Byte-identical on a rerun, for any --jobs value, and for any
        # --fleet-jobs value (the epoch-parallel path must splice back
        # into exactly the sequential report).
        assert main(argv + ["--jobs", "4"]) == 0
        capsys.readouterr()
        assert path.read_bytes() == first_bytes
        assert main(argv + ["--fleet-jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet-jobs=2" in out
        assert path.read_bytes() == first_bytes
        payload = json.loads(first_bytes)
        assert payload["config"]["nodes"] == 2
        assert payload["completed"] > 0
        assert len(payload["nodes"]) == 2
        tenants = [v["tenant"] for v in payload["fleet_slo"]]
        assert tenants == sorted(tenants)
        assert {"batch", "olap", "oltp"} <= set(tenants)

    def test_rejects_nonpositive_fleet_jobs(self, tmp_path, capsys):
        code = main(["cluster", "--nodes", "2", "--fleet-jobs", "0",
                     "--out", str(tmp_path)])
        capsys.readouterr()
        assert code == 2

    def test_cluster_seed_cleared_after_run(self, tmp_path, capsys):
        from repro import seeding

        main(["cluster", "--nodes", "1", "--policy", "none",
              "--duration", "2", "--rate", "4", "--seed", "5",
              "--out", str(tmp_path)])
        capsys.readouterr()
        assert seeding.get_seed() is None
