"""Tests for the latency model."""

import pytest

from repro.config import SystemSpec
from repro.errors import ModelError
from repro.model.latency import LatencyModel


@pytest.fixture
def latency(spec) -> LatencyModel:
    return LatencyModel(spec)


class TestDramCycles:
    def test_paper_latency_in_cycles(self, latency):
        # 80 ns at 2.2 GHz = 176 cycles.
        assert latency.dram_cycles == pytest.approx(176.0)


class TestRandomAccess:
    def test_all_l2_hits_cheapest(self, latency):
        cycles = latency.random_access_cycles(1.0, 0.0, mlp=1.0)
        assert cycles == pytest.approx(latency.l2_cycles)

    def test_all_llc_hits(self, latency):
        cycles = latency.random_access_cycles(0.0, 1.0, mlp=1.0)
        assert cycles == pytest.approx(latency.llc_cycles)

    def test_all_dram(self, latency):
        cycles = latency.random_access_cycles(0.0, 0.0, mlp=1.0)
        assert cycles == pytest.approx(176.0)

    def test_mlp_divides_stall(self, latency):
        single = latency.random_access_cycles(0.0, 0.0, mlp=1.0)
        overlapped = latency.random_access_cycles(0.0, 0.0, mlp=4.0)
        assert overlapped == pytest.approx(single / 4)

    def test_bandwidth_slowdown_inflates_dram(self, latency):
        base = latency.random_access_cycles(0.0, 0.0, mlp=1.0)
        congested = latency.random_access_cycles(
            0.0, 0.0, mlp=1.0, dram_slowdown=2.0
        )
        assert congested == pytest.approx(2 * base)

    def test_monotone_in_hit_ratio(self, latency):
        costs = [
            latency.random_access_cycles(0.0, h, mlp=4.0)
            for h in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert costs == sorted(costs, reverse=True)

    @pytest.mark.parametrize("bad", [
        {"l2_hit_fraction": -0.1}, {"l2_hit_fraction": 1.1},
        {"llc_hit_ratio": 2.0}, {"mlp": 0.5}, {"dram_slowdown": 0.9},
    ])
    def test_validation(self, latency, bad):
        kwargs = dict(l2_hit_fraction=0.5, llc_hit_ratio=0.5, mlp=4.0,
                      dram_slowdown=1.0)
        kwargs.update(bad)
        with pytest.raises(ModelError):
            latency.random_access_cycles(**kwargs)


class TestStreaming:
    def test_two_ways_keep_prefetching(self, latency):
        assert not latency.streaming_latency_bound(2)
        assert latency.streaming_cycles_per_line(2) == 0.0

    def test_single_way_defeats_prefetcher(self, latency):
        # Paper Sec. V-B: the 0x1 mask degrades even the scan severely.
        assert latency.streaming_latency_bound(1)
        assert latency.streaming_cycles_per_line(1) > 0

    def test_invalid_way_count(self, latency):
        with pytest.raises(ModelError):
            latency.streaming_latency_bound(0)


class TestL2Fraction:
    def test_tiny_shared_structure_resident(self, latency, spec):
        assert latency.l2_hit_fraction(1024, shared=True, workers=22) == 1.0

    def test_large_shared_structure(self, latency, spec):
        fraction = latency.l2_hit_fraction(
            40 * 1024 * 1024, shared=True, workers=22
        )
        assert fraction == pytest.approx(
            spec.l2.size_bytes / (40 * 1024 * 1024)
        )

    def test_thread_local_split_across_workers(self, latency, spec):
        total = 22 * spec.l2.size_bytes  # exactly fills all L2s
        fraction = latency.l2_hit_fraction(total, shared=False,
                                           workers=22)
        assert fraction == pytest.approx(1.0)

    def test_validation(self, latency):
        with pytest.raises(ModelError):
            latency.l2_hit_fraction(0, True, 1)
        with pytest.raises(ModelError):
            latency.l2_hit_fraction(10, True, 0)
