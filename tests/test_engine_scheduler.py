"""Tests for worker pools and the job scheduler."""

import pytest

from repro.engine.cache_control import CacheController
from repro.engine.job import Job, JobGraph
from repro.engine.scheduler import JobScheduler
from repro.engine.threadpool import JobWorkerPool
from repro.errors import SchedulerError
from repro.hardware.cat import CatController
from repro.operators.base import CacheUsage
from repro.resctrl.filesystem import ResctrlFilesystem
from repro.resctrl.interface import ResctrlInterface


@pytest.fixture
def scheduler(spec):
    resctrl = ResctrlInterface(ResctrlFilesystem(CatController(spec)))
    controller = CacheController(spec, resctrl, enabled=True)
    return JobScheduler(
        controller=controller,
        olap_pool=JobWorkerPool.create("olap", list(range(20)), 1000),
        oltp_pool=JobWorkerPool.create("oltp", [20, 21], 9000),
    )


class TestWorkerPool:
    def test_create(self):
        pool = JobWorkerPool.create("p", [0, 1, 2], tid_base=100)
        assert pool.size == 3
        assert pool.tids == [100, 101, 102]
        assert pool.workers[1].core == 1

    def test_round_robin(self):
        pool = JobWorkerPool.create("p", [0, 1], tid_base=0)
        tids = [pool.next_worker().tid for _ in range(4)]
        assert tids == [0, 1, 0, 1]

    def test_worker_by_tid(self):
        pool = JobWorkerPool.create("p", [0], tid_base=5)
        assert pool.worker_by_tid(5).core == 0
        with pytest.raises(SchedulerError):
            pool.worker_by_tid(99)

    def test_requires_cores(self):
        with pytest.raises(SchedulerError):
            JobWorkerPool.create("p", [], tid_base=0)


class TestDispatch:
    def test_polluting_job_programs_core_clos(self, scheduler):
        job = Job("scan", callable=lambda: "x",
                  cuid=CacheUsage.POLLUTING)
        scheduler.run_job(job)
        record = scheduler.dispatch_log[-1]
        assert record.mask == 0x3
        # The kernel context switch programmed the core's CLOS.
        cat = scheduler.controller.resctrl.filesystem.cat
        assert cat.core_mask(record.core) == 0x3

    def test_oltp_pool_keeps_full_cache(self, scheduler, spec):
        job = Job("point", callable=lambda: "x",
                  cuid=CacheUsage.POLLUTING)  # even mis-labelled jobs
        scheduler.run_job(job, pool="oltp")
        record = scheduler.dispatch_log[-1]
        assert record.pool == "oltp"
        assert record.mask == spec.full_mask
        cat = scheduler.controller.resctrl.filesystem.cat
        assert cat.core_mask(record.core) == spec.full_mask

    def test_unknown_pool_rejected(self, scheduler):
        with pytest.raises(SchedulerError):
            scheduler.run_job(Job("x", callable=lambda: 1), pool="gpu")

    def test_jobs_round_robin_over_workers(self, scheduler):
        for index in range(4):
            scheduler.run_job(Job(f"j{index}", callable=lambda: 1))
        tids = [r.worker_tid for r in scheduler.dispatch_log]
        assert tids == [1000, 1001, 1002, 1003]

    def test_run_graph_in_order(self, scheduler):
        results = []
        graph = JobGraph()
        first = graph.add(Job("a", callable=lambda: results.append("a")))
        graph.add(Job("b", callable=lambda: results.append("b")),
                  after=[first])
        scheduler.run_graph(graph)
        assert results == ["a", "b"]

    def test_worker_job_counters(self, scheduler):
        scheduler.run_job(Job("a", callable=lambda: 1))
        assert scheduler.olap_pool.workers[0].jobs_run == 1

    def test_alternating_cuids_reuse_kernel_calls(self, scheduler):
        """Per-worker mask caching: repeating the same CUID sequence on
        the same worker set stops costing syscalls once stabilised."""
        polluting = [
            Job(f"p{index}", callable=lambda: 1,
                cuid=CacheUsage.POLLUTING)
            for index in range(40)
        ]
        for job in polluting:
            scheduler.run_job(job)
        stats = scheduler.controller.stats
        # 20 workers each switched once to the polluting mask; the
        # second round was fully elided.
        assert stats.kernel_calls == 20
        assert stats.associations_requested == 40
