"""The reproduction report must be all-PASS."""

import pytest

from repro.experiments import summary


@pytest.fixture(scope="module")
def report():
    return summary.run()


def test_every_claim_passes(report):
    failing = [row for row in report.rows if row[2] != "PASS"]
    assert not failing, f"claims failing: {failing}"


def test_report_covers_all_figures(report):
    figures = {row[0] for row in report.rows}
    assert figures == {
        "fig1", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
        "fig12",
    }


def test_note_summarises_counts(report):
    assert report.notes == [
        f"{len(report.rows)}/{len(report.rows)} claims hold"
    ]
