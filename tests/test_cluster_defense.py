"""Tests for defended fleets (attacks + detector + quarantine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.defense import AttackSpec, load_defense, seeded_attacks
from repro.errors import ClusterError
from repro.planner import training_from_report

THRASH = (AttackSpec(profile="thrash", start_s=1.0, rate_per_s=20.0),)


def _config(**overrides):
    defaults = dict(
        nodes=2, router="hash", profile="poisson", policy="none",
        mix="olap", rate_per_s=6.0, duration_s=6.0, seed=7,
        attacks=THRASH, defense="jail",
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture(scope="module")
def jail_report():
    return Cluster(_config()).run()


@pytest.fixture(scope="module")
def off_report():
    return Cluster(_config(defense="off")).run()


def _conserved(report):
    return report.generated == (
        report.completed + report.shed_admission
        + report.shed_failure + report.shed_no_node
    )


class TestConfigValidation:
    def test_rejects_unknown_defense_mode(self):
        with pytest.raises(ClusterError):
            _config(defense="banhammer")

    def test_rejects_attack_beyond_horizon(self):
        with pytest.raises(ClusterError):
            _config(attacks=(
                AttackSpec(profile="thrash", start_s=100.0),
            ))


class TestDeterminism:
    def test_defended_runs_are_byte_identical(self, jail_report):
        again = Cluster(_config()).run()
        assert again.to_json() == jail_report.to_json()

    def test_fleet_jobs_is_byte_identical(self, jail_report):
        jobs = Cluster(_config()).run(fleet_jobs=4)
        assert jobs.to_json() == jail_report.to_json()

    def test_defended_run_records_sequential_warning(
        self, jail_report
    ):
        warnings = jail_report.execution["warnings"]
        assert any("sequential" in w for w in warnings)


class TestConvictions:
    def test_conviction_matches_ground_truth(self, jail_report):
        defense = jail_report.defense
        assert defense["ground_truth"] == ["thrash"]
        assert defense["convicted_groups"] == ["thrash"]
        assert defense["false_positives"] == []
        assert defense["missed"] == []

    def test_no_convictions_without_attacks(self):
        report = Cluster(_config(attacks=())).run()
        defense = report.defense
        assert defense["enabled"] is True
        assert defense["convictions"] == []
        assert defense["false_positives"] == []

    def test_jail_time_accrues_until_drain(self, jail_report):
        assert jail_report.defense["jail_seconds"]["thrash"] > 0.0

    def test_jail_improves_victim_tail(
        self, jail_report, off_report
    ):
        jailed = jail_report.fleet_verdict_for("olap").p99_s
        undefended = off_report.fleet_verdict_for("olap").p99_s
        assert jailed < undefended

    def test_purge_sheds_the_convicts_backlog(
        self, jail_report, off_report
    ):
        # Conviction sheds queued thrash and throttles new arrivals,
        # so the defended run completes less and sheds more — while
        # both runs offer the identical arrival sequence.
        assert jail_report.generated == off_report.generated
        assert (
            jail_report.shed_admission > off_report.shed_admission
        )
        assert _conserved(jail_report)
        assert _conserved(off_report)


class TestConservationSweep:
    @settings(max_examples=5, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_every_arrival_is_accounted_for(self, count, seed):
        attacks = seeded_attacks(count, 4.0, seed)
        report = Cluster(_config(
            duration_s=4.0, rate_per_s=4.0, seed=seed,
            attacks=attacks, defense="evict",
        )).run()
        assert _conserved(report)
        arrivals = sum(
            report.defense["attack_arrivals"].values()
        )
        assert arrivals <= report.generated


class TestReportLoading:
    def test_v6_report_feeds_planner_training(self, jail_report):
        training = training_from_report(jail_report.to_dict())
        assert training

    def test_v6_defense_block_round_trips(self, jail_report):
        block = load_defense(jail_report.to_dict())
        assert block["enabled"] is True
        assert block["convicted_groups"] == ["thrash"]
