"""Tests for access-profile descriptors (repro.model.streams)."""

import pytest

from repro.errors import ModelError
from repro.model.streams import (
    AccessProfile,
    RandomRegion,
    SequentialStream,
    skewed_regions,
)
from repro.units import MiB


class TestRandomRegion:
    def test_valid(self):
        region = RandomRegion("dict", 4 * MiB, 1.0)
        assert region.shared is True
        assert region.software_managed is False

    def test_rejects_empty_region(self):
        with pytest.raises(ModelError):
            RandomRegion("dict", 0, 1.0)

    def test_rejects_negative_accesses(self):
        with pytest.raises(ModelError):
            RandomRegion("dict", 1, -1.0)


class TestSequentialStream:
    def test_rejects_negative_bytes(self):
        with pytest.raises(ModelError):
            SequentialStream("s", -0.5)


class TestAccessProfile:
    def _profile(self, **overrides):
        defaults = dict(
            name="q",
            tuples=1e9,
            compute_cycles_per_tuple=5.0,
            instructions_per_tuple=10.0,
            regions=(RandomRegion("dict", 4 * MiB, 1.0),),
            streams=(SequentialStream("codes", 2.5),),
        )
        defaults.update(overrides)
        return AccessProfile(**defaults)

    def test_stream_bytes_per_tuple(self):
        profile = self._profile(
            streams=(SequentialStream("a", 2.5), SequentialStream("b", 1.0))
        )
        assert profile.stream_bytes_per_tuple == pytest.approx(3.5)

    def test_region_lookup(self):
        profile = self._profile()
        assert profile.region("dict").total_bytes == 4 * MiB
        with pytest.raises(ModelError):
            profile.region("nope")

    def test_with_name(self):
        renamed = self._profile().with_name("other")
        assert renamed.name == "other"
        assert renamed.tuples == 1e9

    def test_rejects_duplicate_names(self):
        with pytest.raises(ModelError):
            self._profile(
                regions=(RandomRegion("x", 1, 1.0),),
                streams=(SequentialStream("x", 1.0),),
            )

    def test_rejects_zero_tuples(self):
        with pytest.raises(ModelError):
            self._profile(tuples=0)

    def test_rejects_mlp_below_one(self):
        with pytest.raises(ModelError):
            self._profile(mlp=0.5)

    def test_rejects_zero_instructions(self):
        with pytest.raises(ModelError):
            self._profile(instructions_per_tuple=0)


class TestSkewedRegions:
    def test_eighty_twenty_split(self):
        hot, cold = skewed_regions("dict", 100 * MiB, 2.0)
        assert hot.total_bytes == pytest.approx(20 * MiB)
        assert hot.accesses_per_tuple == pytest.approx(1.6)
        assert cold.total_bytes == pytest.approx(80 * MiB)
        assert cold.accesses_per_tuple == pytest.approx(0.4)

    def test_conservation(self):
        hot, cold = skewed_regions("d", 64.0, 3.0, hot_fraction=0.1,
                                   hot_access_share=0.9)
        assert hot.total_bytes + cold.total_bytes == pytest.approx(64.0)
        assert (
            hot.accesses_per_tuple + cold.accesses_per_tuple
        ) == pytest.approx(3.0)

    def test_names_distinct(self):
        hot, cold = skewed_regions("dict", 1.0, 1.0)
        assert hot.name == "dict_hot"
        assert cold.name == "dict_cold"

    def test_hot_region_is_hotter_per_byte(self):
        hot, cold = skewed_regions("d", 100.0, 1.0)
        hot_rate = hot.accesses_per_tuple / hot.total_bytes
        cold_rate = cold.accesses_per_tuple / cold.total_bytes
        assert hot_rate > cold_rate

    @pytest.mark.parametrize("kwargs", [
        {"hot_fraction": 0.0}, {"hot_fraction": 1.0},
        {"hot_access_share": 0.0}, {"hot_access_share": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            skewed_regions("d", 1.0, 1.0, **kwargs)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ModelError):
            skewed_regions("d", 0.0, 1.0)
