"""Tests for the Che-approximation occupancy solver."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.occupancy import (
    RegionActor,
    StreamActor,
    solve_characteristic_time,
    solve_segment,
)
from repro.model.segments import Segment


class TestRegionActor:
    def test_occupancy_monotone_in_time(self):
        region = RegionActor("q", "r", working_lines=1000,
                             access_rate=1e6)
        times = [1e-6, 1e-4, 1e-2, 1.0]
        occupancies = [region.occupancy(t) for t in times]
        assert occupancies == sorted(occupancies)

    def test_occupancy_bounded_by_working_set(self):
        region = RegionActor("q", "r", working_lines=1000,
                             access_rate=1e9)
        assert region.occupancy(math.inf) == 1000
        assert region.occupancy(10.0) <= 1000

    def test_idle_region_occupies_nothing(self):
        region = RegionActor("q", "r", working_lines=1000, access_rate=0)
        assert region.occupancy(1.0) == 0.0
        assert region.hit_ratio(1.0) == 1.0

    def test_hit_ratio_equals_resident_fraction(self):
        region = RegionActor("q", "r", working_lines=100, access_rate=1e4)
        t = 1e-3
        assert region.hit_ratio(t) == pytest.approx(
            region.occupancy(t) / 100
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            RegionActor("q", "r", 0, 1.0)
        with pytest.raises(ModelError):
            RegionActor("q", "r", 1, -1.0)


class TestStreamActor:
    def test_occupancy_linear_in_time(self):
        stream = StreamActor("q", "s", insertion_rate=1e6)
        assert stream.occupancy(1e-3) == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ModelError):
            StreamActor("q", "s", -1.0)


class TestCharacteristicTime:
    def test_everything_fits_gives_infinite_time(self):
        regions = [RegionActor("q", "r", 100, 1e6)]
        t = solve_characteristic_time(regions, [], capacity_lines=1000)
        assert math.isinf(t)

    def test_stream_forces_finite_time(self):
        regions = [RegionActor("q", "r", 100, 1e6)]
        streams = [StreamActor("q", "s", 1e6)]
        t = solve_characteristic_time(regions, streams,
                                      capacity_lines=1000)
        assert math.isfinite(t)

    def test_fill_constraint_satisfied(self):
        regions = [RegionActor("q", "r", 5000, 1e7)]
        streams = [StreamActor("q", "s", 1e6)]
        capacity = 2000.0
        t = solve_characteristic_time(regions, streams, capacity)
        total = regions[0].occupancy(t) + streams[0].occupancy(t)
        assert total == pytest.approx(capacity, rel=1e-3)

    def test_higher_stream_rate_shortens_time(self):
        """More pollution -> shorter characteristic time -> lower hits.

        This is the paper's cache-pollution mechanism in one assertion.
        """
        regions = [RegionActor("q", "dict", 10_000, 1e7)]
        slow = solve_characteristic_time(
            regions, [StreamActor("p", "s", 1e6)], 5000
        )
        fast = solve_characteristic_time(
            regions, [StreamActor("p", "s", 1e9)], 5000
        )
        assert fast < slow
        assert regions[0].hit_ratio(fast) < regions[0].hit_ratio(slow)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ModelError):
            solve_characteristic_time([], [], 0)

    def test_idle_cache_time_is_infinite(self):
        t = solve_characteristic_time([], [], 100)
        assert math.isinf(t)


class TestSolveSegment:
    def test_small_region_fully_resident(self):
        segment = Segment(frozenset({"q"}), ways=10)
        regions = [RegionActor("q", "dict", 100, 1e6)]
        solution = solve_segment(segment, regions, [], way_lines=1000)
        assert solution.region_hit_ratios[("q", "dict")] == pytest.approx(
            1.0
        )

    def test_oversized_region_partially_resident(self):
        segment = Segment(frozenset({"q"}), ways=2)
        regions = [RegionActor("q", "big", 10_000, 1e8)]
        solution = solve_segment(segment, regions, [], way_lines=1000)
        hit = solution.region_hit_ratios[("q", "big")]
        assert hit == pytest.approx(2000 / 10_000, rel=0.05)

    def test_stream_fills_leftover_capacity(self):
        segment = Segment(frozenset({"q"}), ways=4)
        regions = [RegionActor("q", "dict", 500, 1e8)]
        streams = [StreamActor("q", "scan", 1e6)]
        solution = solve_segment(segment, regions, streams,
                                 way_lines=1000)
        stream_occupancy = solution.stream_occupancy_lines[("q", "scan")]
        region_occupancy = solution.region_occupancy_lines[("q", "dict")]
        assert stream_occupancy + region_occupancy == pytest.approx(
            4000, rel=0.01
        )


region_lists = st.lists(
    st.tuples(
        st.floats(min_value=1, max_value=1e6),      # working lines
        st.floats(min_value=0, max_value=1e10),     # access rate
    ),
    min_size=1,
    max_size=4,
)


class TestOccupancyProperties:
    @given(regions=region_lists,
           stream_rate=st.floats(min_value=0, max_value=1e10),
           capacity=st.floats(min_value=10, max_value=1e6))
    @settings(max_examples=150, deadline=None)
    def test_total_occupancy_never_exceeds_capacity(
        self, regions, stream_rate, capacity
    ):
        actors = [
            RegionActor("q", f"r{i}", lines, rate)
            for i, (lines, rate) in enumerate(regions)
        ]
        streams = (
            [StreamActor("q", "s", stream_rate)] if stream_rate else []
        )
        t = solve_characteristic_time(actors, streams, capacity)
        if math.isinf(t):
            total = sum(a.occupancy(t) for a in actors)
        else:
            total = sum(a.occupancy(t) for a in actors) + sum(
                s.occupancy(t) for s in streams
            )
        assert total <= capacity * 1.01 or math.isinf(t)

    @given(regions=region_lists,
           capacity=st.floats(min_value=10, max_value=1e6))
    @settings(max_examples=150, deadline=None)
    def test_hit_ratios_in_unit_interval(self, regions, capacity):
        actors = [
            RegionActor("q", f"r{i}", lines, rate)
            for i, (lines, rate) in enumerate(regions)
        ]
        streams = [StreamActor("q", "s", 1e7)]
        t = solve_characteristic_time(actors, streams, capacity)
        for actor in actors:
            assert 0.0 <= actor.hit_ratio(t) <= 1.0
