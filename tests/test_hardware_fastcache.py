"""Tests for the vectorized trace engine (repro.hardware.fastcache).

The fast engine's contract is *bit-identical* behaviour to the
reference loop; the unit tests here pin the individual semantics
(LRU, CAT confinement, prefetch accounting, stream re-branding,
lazy CLOS errors) and the engine plumbing (factory, digest,
snapshot/restore, sampling).  Cross-engine equivalence on random
traces lives in ``test_hardware_fastcache_properties.py``.
"""

import numpy as np
import pytest

from repro.config import CacheSpec, SystemSpec
from repro.errors import CatError, ConfigError
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.hardware.engine import (
    cache_state_digest,
    engine_scope,
    get_default_engine,
    make_cache,
    set_default_engine,
)
from repro.hardware.fastcache import (
    FastSetAssociativeCache,
    SamplingPlan,
    replay_sampled,
)
from repro.units import KiB

LINE = 64


def make_cat(ways: int = 4, clos_masks: dict[int, int] | None = None):
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(8 * 64 * ways, ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
    )
    cat = CatController(spec)
    for clos, mask in (clos_masks or {}).items():
        cat.set_clos_mask(clos, mask)
    return spec, cat


class TestBasicBehaviour:
    def test_miss_then_hit(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        assert cache.access(0x40) is False
        assert cache.access(0x40) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_batch_miss_then_hit(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        hits = cache.access_batch(np.array([0x40, 0x40, 0x80]))
        assert hits.tolist() == [False, True, False]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_capacity_eviction_is_lru(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        lines = np.arange(5) * sets * LINE  # all map to set 0
        cache.access_batch(lines)
        assert not cache.contains(0)
        for addr in lines[1:]:
            assert cache.contains(int(addr))

    def test_lru_order_respects_reuse_within_batch(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        trace = [0, 1, 2, 3, 0, 4]  # refresh line 0, then evict
        cache.access_batch(np.array(trace) * sets * LINE)
        assert cache.contains(0)
        assert not cache.contains(1 * sets * LINE)

    def test_access_many_delta_includes_evictions(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        sets = tiny_cache_spec.sets
        cache.access_many([i * sets * LINE for i in range(4)])
        delta = cache.access_many([i * sets * LINE for i in range(4, 6)])
        assert delta.misses == 2
        assert delta.evictions == 2
        assert cache.stats.evictions == 2

    def test_invalidate_and_flush(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access(0x80)
        assert cache.invalidate(0x80 // LINE) is True
        assert not cache.contains(0x80)
        assert cache.invalidate(0x80 // LINE) is False
        cache.access(0x40)
        cache.flush()
        assert cache.valid_lines() == 0
        assert cache.stats.accesses == 0

    def test_empty_batch_is_a_no_op(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        hits = cache.access_batch(np.array([], dtype=np.int64))
        assert len(hits) == 0
        assert cache.stats.accesses == 0


class TestStreamsAndPrefetch:
    def test_per_stream_stats(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access_batch(
            np.array([0x40, 0x40, 0x80]),
            stream=np.array(["a", "a", "b"]),
        )
        assert cache.stats_by_stream["a"].hits == 1
        assert cache.stats_by_stream["b"].misses == 1
        assert cache.occupancy_by_stream() == {"a": 1, "b": 1}

    def test_prefetch_fills_without_counting(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access_batch(np.array([0x40]), is_prefetch=True)
        assert cache.stats.accesses == 0
        assert cache.contains(0x40)

    def test_demand_hit_rebrands_stream(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access(0x40, stream="old")
        cache.access(0x40, stream="new")
        assert cache.occupancy_by_stream() == {"new": 1}

    def test_empty_label_does_not_rebrand(self, tiny_cache_spec):
        # The reference's `stream or line.stream` keeps the old label
        # for falsy labels; the fast engine must match.
        ref = SetAssociativeCache(tiny_cache_spec)
        fast = FastSetAssociativeCache(tiny_cache_spec)
        for cache in (ref, fast):
            cache.access(0x40, stream="old")
            cache.access(0x40, stream="")
        assert ref.occupancy_by_stream() == fast.occupancy_by_stream()

    def test_prefetch_hit_does_not_rebrand(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access(0x40, stream="owner")
        cache.access(0x40, stream="toucher", is_prefetch=True)
        assert cache.occupancy_by_stream() == {"owner": 1}


class TestCatWayMasking:
    def test_restricted_clos_only_fills_its_ways(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = FastSetAssociativeCache(spec.llc, cat=cat)
        sets = spec.llc.sets
        cache.access_batch(np.arange(16) * sets * LINE, clos=1)
        assert set(cache.occupancy_by_way()) <= {0, 1}
        assert cache.lines_in_ways(0xC) == 0

    def test_hits_allowed_anywhere(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3, 2: 0xC})
        cache = FastSetAssociativeCache(spec.llc, cat=cat)
        cache.access(0x0, clos=2)  # resident in ways 2-3
        hits = cache.access_batch(np.array([0x0]), clos=1)
        assert bool(hits[0]) is True

    def test_disjoint_masks_isolate_within_batch(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3, 2: 0xC})
        cache = FastSetAssociativeCache(spec.llc, cat=cat)
        sets = spec.llc.sets
        protected = np.arange(2) * sets * LINE
        churn = np.arange(2, 50) * sets * LINE
        addrs = np.concatenate([protected, churn])
        clos = np.concatenate([np.full(2, 1), np.full(48, 2)])
        cache.access_batch(addrs, clos=clos)
        for addr in protected:
            assert cache.contains(int(addr))

    def test_unconfigured_clos_raises_lazily_on_miss(self):
        # The reference resolves masks only on a miss: a hit under an
        # unconfigured CLOS is fine, the first miss raises.  The batch
        # engine must preserve both halves of that behaviour.
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        for engine in ("ref", "fast"):
            cache = make_cache(spec.llc, cat=cat, engine=engine)
            cache.access(0x0, clos=1)
            hits = cache.access_batch(np.array([0x0]), clos=9)  # hit: ok
            assert bool(hits[0]) is True
            with pytest.raises(CatError):
                cache.access_batch(np.array([0x40 * 99]), clos=9)

    def test_failed_batch_leaves_state_untouched(self):
        spec, cat = make_cat(ways=4, clos_masks={1: 0x3})
        cache = FastSetAssociativeCache(spec.llc, cat=cat)
        cache.access_batch(np.arange(4) * LINE, clos=1)
        digest = cache_state_digest(cache)
        stats = vars(cache.stats).copy()
        with pytest.raises(CatError):
            cache.access_batch(np.arange(8) * LINE, clos=7)
        assert cache_state_digest(cache) == digest
        assert vars(cache.stats) == stats


class TestEvictionCallbacks:
    def test_eviction_events_fire_in_trace_order(self, tiny_cache_spec):
        events_fast, events_ref = [], []
        fast = FastSetAssociativeCache(
            tiny_cache_spec, on_evict=events_fast.append
        )
        ref = SetAssociativeCache(
            tiny_cache_spec, on_evict=events_ref.append
        )
        sets = tiny_cache_spec.sets
        trace = np.arange(9) * sets * LINE
        fast.access_batch(trace)
        for addr in trace:
            ref.access(int(addr))
        assert [e.line_addr for e in events_fast] == \
            [e.line_addr for e in events_ref]
        assert [e.stream for e in events_fast] == \
            [e.stream for e in events_ref]
        assert [e.clos for e in events_fast] == \
            [e.clos for e in events_ref]


class TestGroupingFallback:
    def test_argsort_fallback_matches_scipy_grouping(
        self, tiny_cache_spec, rng, monkeypatch
    ):
        # Without SciPy the set-grouping falls back from the CSR
        # counting sort to a stable argsort; replay results must not
        # depend on which path ran.
        from repro.hardware import fastcache

        addrs = rng.integers(0, 1 << 12, size=2000) * LINE
        with_scipy = FastSetAssociativeCache(tiny_cache_spec)
        hits_scipy = with_scipy.access_batch(addrs, stream="s")
        monkeypatch.setattr(fastcache, "_sparse", None)
        without = FastSetAssociativeCache(tiny_cache_spec)
        hits_fallback = without.access_batch(addrs, stream="s")
        assert np.array_equal(hits_scipy, hits_fallback)
        assert vars(with_scipy.stats) == vars(without.stats)
        assert cache_state_digest(with_scipy) == \
            cache_state_digest(without)


class TestEngineSelection:
    def test_make_cache_classes(self, tiny_cache_spec):
        assert isinstance(
            make_cache(tiny_cache_spec, engine="ref"),
            SetAssociativeCache,
        )
        assert isinstance(
            make_cache(tiny_cache_spec, engine="fast"),
            FastSetAssociativeCache,
        )

    def test_unknown_engine_rejected(self, tiny_cache_spec):
        with pytest.raises(ConfigError):
            make_cache(tiny_cache_spec, engine="warp")
        with pytest.raises(ConfigError):
            set_default_engine("warp")

    def test_engine_scope_restores_default(self, tiny_cache_spec):
        before = get_default_engine()
        other = "ref" if before == "fast" else "fast"
        with engine_scope(other):
            assert get_default_engine() == other
            assert isinstance(
                make_cache(tiny_cache_spec),
                SetAssociativeCache if other == "ref"
                else FastSetAssociativeCache,
            )
        assert get_default_engine() == before

    def test_digest_equal_across_engines(self, tiny_cache_spec, rng):
        addrs = rng.integers(0, 1 << 12, size=500) * LINE
        caches = [
            make_cache(tiny_cache_spec, engine=engine)
            for engine in ("ref", "fast")
        ]
        for cache in caches:
            cache.access_batch(addrs, stream="s")
        assert cache_state_digest(caches[0]) == \
            cache_state_digest(caches[1])


class TestSnapshotRestore:
    def test_restore_rewinds_everything(self, tiny_cache_spec, rng):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        cache.access_batch(
            rng.integers(0, 1 << 10, size=200) * LINE, stream="a"
        )
        snap = cache.snapshot()
        digest = cache_state_digest(cache)
        stats = vars(cache.stats).copy()
        cache.access_batch(
            rng.integers(0, 1 << 10, size=300) * LINE, stream="b"
        )
        cache.restore(snap)
        assert cache_state_digest(cache) == digest
        assert vars(cache.stats) == stats
        # Replay after restore behaves as if the rolled-back batch
        # never happened.
        assert cache.access(0x7FFF * LINE) is False


class TestSampling:
    def test_plan_validation(self):
        with pytest.raises(ConfigError):
            SamplingPlan(window=0)
        with pytest.raises(ConfigError):
            SamplingPlan(window=10, period=0)
        with pytest.raises(ConfigError):
            SamplingPlan(window=10, warmup_fraction=1.5)

    def test_sampled_replay_measures_subset(self, tiny_cache_spec):
        cache = FastSetAssociativeCache(tiny_cache_spec)
        addrs = np.tile(np.arange(8) * LINE, 100)  # 800 accesses
        plan = SamplingPlan(window=100, period=2, warmup_fraction=0.5)
        measured, info = replay_sampled(cache, addrs, plan)
        assert info["windows"] == 8
        assert info["simulated_windows"] == 4
        assert measured.accesses == 4 * 50  # warmup half discarded
        # A tiny working set over a warm cache: measured slices hit.
        assert measured.hits == measured.accesses

    def test_sampling_deterministic_across_engines(self, tiny_cache_spec):
        results = []
        for engine in ("ref", "fast"):
            cache = make_cache(tiny_cache_spec, engine=engine)
            addrs = (np.arange(600) % 96) * LINE
            plan = SamplingPlan(window=64, period=3)
            measured, info = replay_sampled(cache, addrs, plan)
            results.append((vars(measured), info))
        assert results[0] == results[1]
