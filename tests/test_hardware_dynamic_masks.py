"""Dynamic re-masking on the trace simulator.

The paper relies on CAT bitmasks being "dynamically changed at run
time" (Sec. V-A) — that is what makes CAT superior to page coloring.
These tests exercise mask changes mid-trace on the exact simulator:
the new mask takes effect for *allocations* immediately, while lines
already resident stay readable (no copying, unlike page coloring).
"""

import numpy as np
import pytest

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.units import KiB

LINE = 64
SETS = 32
WAYS = 8


@pytest.fixture
def machine():
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(SETS * WAYS * LINE, WAYS),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
        cat_min_bits=1,
    )
    cat = CatController(spec)
    cat.set_clos_mask(1, spec.full_mask)
    cache = SetAssociativeCache(spec.llc, cat=cat)
    return spec, cat, cache


class TestDynamicRemasking:
    def test_narrowing_takes_effect_immediately(self, machine):
        spec, cat, cache = machine
        # Warm the full cache, then narrow to 2 ways.
        for line in range(SETS * WAYS):
            cache.access(line * LINE, clos=1)
        cat.set_clos_mask(1, 0x3)
        before = cache.lines_in_ways(0xFC)
        for line in range(SETS * WAYS, SETS * WAYS + 200):
            cache.access(line * LINE, clos=1)
        # No new allocations landed outside ways 0-1; the old lines in
        # ways 2-7 were not evicted by this CLOS.
        assert cache.lines_in_ways(0xFC) == before

    def test_resident_lines_stay_readable_without_copy(self, machine):
        spec, cat, cache = machine
        hot = [line * LINE for line in range(16)]
        for addr in hot:
            cache.access(addr, clos=1)
        cat.set_clos_mask(1, 0x3)
        # Everything cached before the change still hits: zero copy
        # cost, the property page coloring lacks.
        for addr in hot:
            assert cache.access(addr, clos=1) is True

    def test_widening_reclaims_capacity(self, machine):
        spec, cat, cache = machine
        cat.set_clos_mask(1, 0x3)
        rng = np.random.default_rng(5)
        region = [int(x) * LINE for x in rng.integers(0, 256, 400)]
        for addr in region:
            cache.access(addr, clos=1)
        narrow_occupancy = cache.valid_lines()
        cat.set_clos_mask(1, spec.full_mask)
        for addr in region:
            cache.access(addr, clos=1)
        assert cache.valid_lines() > narrow_occupancy

    def test_alternating_masks_remain_isolated(self, machine):
        """Flipping a CLOS between masks never lets it evict lines in
        ways it does not currently own."""
        spec, cat, cache = machine
        cat.set_clos_mask(2, 0xC0)  # victim CLOS in ways 6-7
        victim = [
            (way_line * SETS + 0) * LINE for way_line in range(2)
        ]
        for addr in victim:
            cache.access(addr, clos=2)
        rng = np.random.default_rng(6)
        for flip in range(10):
            cat.set_clos_mask(1, 0x3 if flip % 2 == 0 else 0x3C)
            for _ in range(100):
                cache.access(
                    int(rng.integers(0, 4096)) * LINE, clos=1
                )
        for addr in victim:
            assert cache.contains(addr)
