"""Tests for the online CUID classifier (CMT-based extension)."""

import pytest

from repro.core.online import OnlineClassifier
from repro.errors import ModelError
from repro.operators.base import CacheUsage
from repro.workloads.microbench import (
    DICT_40_MIB,
    query1,
    query2,
    query3,
)


@pytest.fixture(scope="module")
def classifier():
    return OnlineClassifier()


class TestClassification:
    def test_scan_classified_polluting(self, classifier):
        """The online probe recovers the paper's offline verdict for
        the column scan without knowing what the operator is."""
        outcome = classifier.classify(query1().profile())
        assert outcome.cuid is CacheUsage.POLLUTING
        assert outcome.restricted_ratio > 0.95

    def test_aggregation_classified_sensitive(self, classifier):
        profile = query2(DICT_40_MIB, 10**5).profile(22)
        outcome = classifier.classify(profile)
        assert outcome.cuid is CacheUsage.SENSITIVE
        assert outcome.cache_benefit > 0.2

    def test_join_classification_is_data_dependent(self, classifier):
        """The adaptive case: the same operator flips class with its
        bit-vector size — re-probing handles it without a taxonomy."""
        small = classifier.classify(query3(10**6).profile(22))
        big = classifier.classify(query3(10**8).profile(22))
        assert small.cuid is CacheUsage.POLLUTING
        assert big.cuid is CacheUsage.SENSITIVE

    def test_classify_many(self, classifier):
        profiles = [
            query1().profile(name="scan"),
            query2(DICT_40_MIB, 10**4).profile(22, name="agg"),
        ]
        outcomes = classifier.classify_many(profiles)
        assert set(outcomes) == {"scan", "agg"}

    def test_samples_reflect_behaviour(self, classifier):
        """The monitored samples behind the verdict are consistent:
        the scan's miss ratio is high; restricting the aggregation
        raises its miss ratio."""
        scan_outcome = classifier.classify(query1().profile())
        assert scan_outcome.full_sample.miss_ratio > 0.8
        agg_outcome = classifier.classify(
            query2(DICT_40_MIB, 10**5).profile(22)
        )
        assert (
            agg_outcome.restricted_sample.miss_ratio
            > agg_outcome.full_sample.miss_ratio
        )

    def test_agreement_with_offline_heuristic(self, classifier, spec):
        """Online and offline classification agree across the paper's
        bit-vector sweep — the extension is a drop-in replacement."""
        from repro.operators.join import classify_join
        for pk_rows in (10**6, 10**7, 10**8):
            config = query3(pk_rows)
            offline = classify_join(config.bit_vector_bytes(), spec)
            online = classifier.classify(config.profile(22)).cuid
            assert online is offline


class TestValidation:
    def test_threshold_validation(self):
        with pytest.raises(ModelError):
            OnlineClassifier(sensitivity_threshold=0.0)
        with pytest.raises(ModelError):
            OnlineClassifier(sensitivity_threshold=1.0)
