"""Tests for the online CUID classifier (CMT-based extension)."""

import pytest

from repro.core.online import OnlineClassifier
from repro.errors import ModelError
from repro.operators.base import CacheUsage
from repro.workloads.microbench import (
    DICT_40_MIB,
    query1,
    query2,
    query3,
)


@pytest.fixture(scope="module")
def classifier():
    return OnlineClassifier()


class TestClassification:
    def test_scan_classified_polluting(self, classifier):
        """The online probe recovers the paper's offline verdict for
        the column scan without knowing what the operator is."""
        outcome = classifier.classify(query1().profile())
        assert outcome.cuid is CacheUsage.POLLUTING
        assert outcome.restricted_ratio > 0.95

    def test_aggregation_classified_sensitive(self, classifier):
        profile = query2(DICT_40_MIB, 10**5).profile(22)
        outcome = classifier.classify(profile)
        assert outcome.cuid is CacheUsage.SENSITIVE
        assert outcome.cache_benefit > 0.2

    def test_join_classification_is_data_dependent(self, classifier):
        """The adaptive case: the same operator flips class with its
        bit-vector size — re-probing handles it without a taxonomy."""
        small = classifier.classify(query3(10**6).profile(22))
        big = classifier.classify(query3(10**8).profile(22))
        assert small.cuid is CacheUsage.POLLUTING
        assert big.cuid is CacheUsage.SENSITIVE

    def test_classify_many(self, classifier):
        profiles = [
            query1().profile(name="scan"),
            query2(DICT_40_MIB, 10**4).profile(22, name="agg"),
        ]
        outcomes = classifier.classify_many(profiles)
        assert set(outcomes) == {"scan", "agg"}

    def test_samples_reflect_behaviour(self, classifier):
        """The monitored samples behind the verdict are consistent:
        the scan's miss ratio is high; restricting the aggregation
        raises its miss ratio."""
        scan_outcome = classifier.classify(query1().profile())
        assert scan_outcome.full_sample.miss_ratio > 0.8
        agg_outcome = classifier.classify(
            query2(DICT_40_MIB, 10**5).profile(22)
        )
        assert (
            agg_outcome.restricted_sample.miss_ratio
            > agg_outcome.full_sample.miss_ratio
        )

    def test_agreement_with_offline_heuristic(self, classifier, spec):
        """Online and offline classification agree across the paper's
        bit-vector sweep — the extension is a drop-in replacement."""
        from repro.operators.join import classify_join
        for pk_rows in (10**6, 10**7, 10**8):
            config = query3(pk_rows)
            offline = classify_join(config.bit_vector_bytes(), spec)
            online = classifier.classify(config.profile(22)).cuid
            assert online is offline


class TestValidation:
    def test_threshold_validation(self):
        with pytest.raises(ModelError):
            OnlineClassifier(sensitivity_threshold=0.0)
        with pytest.raises(ModelError):
            OnlineClassifier(sensitivity_threshold=1.0)


class _ScriptedSimulator:
    """Returns pre-scripted probe results: first call is the full-mask
    probe, second the restricted probe."""

    def __init__(self, full, restricted):
        self._throughputs = [full, restricted]

    def simulate(self, specs):
        (spec,) = specs
        from types import SimpleNamespace

        return {
            spec.name: SimpleNamespace(
                throughput_tuples_per_s=self._throughputs.pop(0),
                dram_bytes_per_s=1.0e9,
                counters=SimpleNamespace(
                    llc_references_per_s=1.0e8,
                    llc_misses_per_s=5.0e7,
                ),
                region_hit_ratios={},
                region_l2_fractions={},
            )
        }


def _scripted(full, restricted, threshold=0.05):
    classifier = OnlineClassifier(sensitivity_threshold=threshold)
    classifier.simulator = _ScriptedSimulator(full, restricted)
    return classifier


class TestClassificationBoundary:
    def test_ratio_exactly_at_threshold_is_polluting(self):
        """An operator sitting exactly at 1 - threshold classifies
        POLLUTING deterministically: the float expression
        ``1.0 - 0.05`` rounds *above* 0.95, so a naive ``ratio >=
        1.0 - threshold`` comparison silently flipped the boundary
        case to SENSITIVE."""
        outcome = _scripted(100.0, 95.0).classify(
            query1().profile(name="boundary")
        )
        assert outcome.restricted_ratio == pytest.approx(0.95)
        assert outcome.cuid is CacheUsage.POLLUTING

    def test_just_below_threshold_is_sensitive(self):
        outcome = _scripted(100.0, 94.9).classify(
            query1().profile(name="below")
        )
        assert outcome.cuid is CacheUsage.SENSITIVE

    def test_just_above_threshold_is_polluting(self):
        outcome = _scripted(100.0, 95.1).classify(
            query1().profile(name="above")
        )
        assert outcome.cuid is CacheUsage.POLLUTING

    def test_zero_occupancy_probe_still_classifies(self):
        """A stream-only operator leaves no residency in the CMT
        occupancy proxy; classification must still be deterministic
        (zero occupancy, throughput-invariant -> POLLUTING)."""
        classifier = _scripted(100.0, 100.0)
        outcome = classifier.classify(
            query1().profile(name="stream_only")
        )
        assert outcome.cuid is CacheUsage.POLLUTING
        assert outcome.full_sample.llc_occupancy_bytes == 0.0
        assert outcome.restricted_sample.llc_occupancy_bytes == 0.0

    def test_zero_full_throughput_is_stable_unknown(self):
        """A starved tenant posts zero completions; the probe has no
        throughput signal and must return a stable UNKNOWN verdict
        rather than dividing by zero."""
        outcome = _scripted(0.0, 0.0).classify(
            query1().profile(name="dead")
        )
        assert outcome.cuid is CacheUsage.UNKNOWN
        assert outcome.restricted_ratio == 0.0
        assert outcome.cache_benefit == 1.0

    def test_zero_full_throughput_does_not_flap(self):
        """Re-probing the same dead profile yields the identical
        verdict every time — no flapping between categories."""
        outcomes = [
            _scripted(0.0, 0.0).classify(
                query1().profile(name="dead")
            )
            for _ in range(3)
        ]
        assert all(o.cuid is CacheUsage.UNKNOWN for o in outcomes)
        assert all(o.restricted_ratio == 0.0 for o in outcomes)

    def test_negative_full_throughput_is_unknown(self):
        """The non-positive guard covers the pathological negative
        case too, on the same boundary."""
        outcome = _scripted(-1.0, 0.0).classify(
            query1().profile(name="negative")
        )
        assert outcome.cuid is CacheUsage.UNKNOWN
        assert outcome.restricted_ratio == 0.0
