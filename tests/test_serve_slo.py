"""Tests for latency histograms and SLO verdicts."""

import math
from bisect import bisect_right

import pytest

from repro.errors import ServeError
from repro.serve.slo import (
    HISTOGRAM_ENGINES,
    LatencyHistogram,
    SloTarget,
    SloTracker,
)


class TestLatencyHistogram:
    def test_empty_quantiles_are_zero(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean_s == 0.0

    def test_quantile_is_bucket_upper_bound(self):
        histogram = LatencyHistogram()
        histogram.observe(0.010)
        p50 = histogram.quantile(0.5)
        # The reported quantile is the upper edge of the bucket that
        # holds the sample: >= the sample, within one bucket ratio.
        assert p50 >= 0.010
        assert p50 <= 0.010 * 1.1

    def test_quantiles_ordered(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.observe(i / 100.0)
        assert (
            histogram.quantile(0.5)
            <= histogram.quantile(0.95)
            <= histogram.quantile(0.99)
        )

    def test_deterministic_independent_of_order(self):
        values = [0.001, 0.5, 0.02, 1.7, 0.3] * 20
        forward = LatencyHistogram()
        backward = LatencyHistogram()
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert forward.quantile(q) == backward.quantile(q)

    def test_overflow_reports_max(self):
        histogram = LatencyHistogram()
        histogram.observe(10_000.0)  # beyond the last bound
        assert histogram.quantile(0.99) == 10_000.0

    def test_mean_and_max(self):
        histogram = LatencyHistogram()
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.mean_s == 2.0
        assert histogram.max_s == 3.0

    def test_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ServeError):
            histogram.observe(-0.1)
        with pytest.raises(ServeError):
            histogram.quantile(0.0)
        with pytest.raises(ServeError):
            histogram.quantile(1.5)


class TestBucketBoundaries:
    def test_bucket_index_matches_bisect_right(self):
        # The ladder is the contract: an exact bound value belongs to
        # the *next* bucket (bisect_right semantics), so a sample at a
        # bound is reported as that bound by quantile().
        for bound in LatencyHistogram.BOUNDS_S:
            assert LatencyHistogram._bucket_index(bound) == (
                bisect_right(LatencyHistogram.BOUNDS_S, bound)
            )

    def test_exact_bound_lands_in_next_bucket(self):
        bounds = LatencyHistogram.BOUNDS_S
        below = LatencyHistogram._bucket_index(bounds[3] * 0.999)
        at = LatencyHistogram._bucket_index(bounds[3])
        assert at == below + 1

    def test_nan_raises(self):
        with pytest.raises(ServeError):
            LatencyHistogram._bucket_index(float("nan"))
        histogram = LatencyHistogram()
        with pytest.raises(ServeError):
            histogram.observe(float("nan"))

    def test_negative_clamps_to_first_bucket(self):
        # observe() rejects negatives outright; the raw bucketing
        # clamps them (merged/deserialised data defensiveness).
        assert LatencyHistogram._bucket_index(-1.0) == 0
        assert LatencyHistogram._bucket_index(0.0) == 0

    def test_zero_latency_observable(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0)
        assert sum(histogram.bucket_counts()) == 1

    def test_infinity_goes_to_overflow_bucket(self):
        assert LatencyHistogram._bucket_index(math.inf) == len(
            LatencyHistogram.BOUNDS_S
        )


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", HISTOGRAM_ENGINES)
    def test_engine_validated(self, engine):
        LatencyHistogram(engine=engine)
        with pytest.raises(ServeError):
            LatencyHistogram(engine="bogus")

    def test_scalar_and_vector_identical(self):
        values = [0.0, 1e-6, 0.001, 0.0099, 0.01, 0.5, 3.2, 900.0]
        scalar = LatencyHistogram(engine="scalar")
        vector = LatencyHistogram(engine="vector")
        for value in values * 7:
            scalar.observe(value)
            vector.observe(value)
        assert scalar.bucket_counts() == vector.bucket_counts()
        for q in (0.5, 0.9, 0.95, 0.99):
            assert scalar.quantile(q) == vector.quantile(q)
        assert scalar.mean_s == vector.mean_s
        assert scalar.max_s == vector.max_s

    def test_cross_engine_merge(self):
        scalar = LatencyHistogram(engine="scalar")
        vector = LatencyHistogram(engine="vector")
        for value in (0.01, 0.2, 5.0):
            scalar.observe(value)
            vector.observe(value)
        merged = LatencyHistogram(engine="vector")
        merged.merge(scalar)
        merged.merge(vector)
        assert sum(merged.bucket_counts()) == 6
        reference = LatencyHistogram(engine="scalar")
        for value in (0.01, 0.2, 5.0) * 2:
            reference.observe(value)
        assert merged.bucket_counts() == reference.bucket_counts()


class TestSloTracker:
    def test_per_tenant_isolation(self):
        tracker = SloTracker()
        tracker.observe("olap", 1.0)
        tracker.observe("oltp", 0.01)
        assert tracker.p99("olap") > tracker.p99("oltp")

    def test_verdict_against_target(self):
        tracker = SloTracker((SloTarget("olap", p99_s=0.5),))
        for _ in range(100):
            tracker.observe("olap", 0.1)
        (verdict,) = tracker.verdicts()
        assert verdict.tenant == "olap"
        assert verdict.ok
        assert verdict.completed == 100
        assert verdict.target_p99_s == 0.5

    def test_verdict_violation(self):
        tracker = SloTracker((SloTarget("olap", p99_s=0.05),))
        for _ in range(100):
            tracker.observe("olap", 1.0)
        (verdict,) = tracker.verdicts()
        assert not verdict.ok

    def test_p95_target_checked(self):
        tracker = SloTracker(
            (SloTarget("olap", p99_s=10.0, p95_s=0.01),)
        )
        for _ in range(100):
            tracker.observe("olap", 1.0)
        (verdict,) = tracker.verdicts()
        assert not verdict.ok  # p99 fine, p95 violated

    def test_untouched_target_tenant_reported_ok(self):
        tracker = SloTracker((SloTarget("oltp", p99_s=1.0),))
        (verdict,) = tracker.verdicts()
        assert verdict.tenant == "oltp"
        assert verdict.completed == 0
        assert verdict.ok

    def test_verdicts_sorted_by_tenant(self):
        tracker = SloTracker()
        tracker.observe("zeta", 0.1)
        tracker.observe("alpha", 0.1)
        assert [v.tenant for v in tracker.verdicts()] == [
            "alpha", "zeta",
        ]

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ServeError):
            SloTracker(
                (SloTarget("a", 1.0), SloTarget("a", 2.0))
            )

    def test_target_validation(self):
        with pytest.raises(ServeError):
            SloTarget("a", p99_s=0.0)
        with pytest.raises(ServeError):
            SloTarget("a", p99_s=1.0, p95_s=-1.0)
