"""Tests for the experiment infrastructure (runner + reporting)."""

import pytest

from repro.errors import WorkloadError
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ExperimentRunner,
    FigureResult,
    PairRequest,
)
from repro.workloads.microbench import query1


class TestFigureResult:
    @pytest.fixture
    def figure(self):
        result = FigureResult(
            "figX", "test", headers=("a", "b", "value")
        )
        result.add(1, "x", 0.5)
        result.add(1, "y", 0.7)
        result.add(2, "x", 0.9)
        return result

    def test_add_checks_width(self, figure):
        with pytest.raises(WorkloadError):
            figure.add(1, 2)

    def test_add_error_names_the_figure(self, figure):
        # Regression: the width error used not to say *which* figure
        # rejected the row — useless when 'run all' is mid-flight.
        with pytest.raises(WorkloadError, match="figX"):
            figure.add(1, 2)

    def test_column(self, figure):
        assert figure.column("value") == [0.5, 0.7, 0.9]

    def test_unknown_column(self, figure):
        with pytest.raises(WorkloadError):
            figure.column("nope")

    def test_select(self, figure):
        assert figure.select(a=1, b="x") == [(1, "x", 0.5)]
        assert len(figure.select(a=1)) == 2
        assert figure.select(a=3) == []

    def test_select_unknown_column(self, figure):
        # Regression: select() used to leak a bare ValueError from
        # headers.index(); it must raise WorkloadError like column().
        with pytest.raises(WorkloadError, match="figX"):
            figure.select(nope=1)

    def test_roundtrip_through_dict(self, figure):
        clone = FigureResult.from_dict(figure.to_dict())
        assert clone.figure_id == figure.figure_id
        assert clone.headers == figure.headers
        assert clone.rows == figure.rows
        assert clone.notes == figure.notes


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner()

    def test_mask_for_ways(self, runner):
        assert runner.mask_for_ways(2) == 0x3
        assert runner.mask_for_ways(20) == 0xFFFFF
        with pytest.raises(WorkloadError):
            runner.mask_for_ways(0)
        with pytest.raises(WorkloadError):
            runner.mask_for_ways(21)

    def test_cache_mib(self, runner):
        assert runner.cache_mib(2) == pytest.approx(5.5)
        assert runner.cache_mib(20) == pytest.approx(55.0)

    def test_paper_scheme_masks(self, runner):
        assert runner.polluting_mask() == 0x3
        assert runner.adaptive_mask() == 0xFFF

    def test_sweep_ways_modes(self, runner):
        assert len(runner.sweep_ways(fast=True)) < len(
            runner.sweep_ways(fast=False)
        )

    def test_pair_runs_both(self, runner):
        scan_a = query1().profile(name="a")
        scan_b = query1().profile(name="b")
        outcome = runner.pair(scan_a, scan_b)
        assert set(outcome.normalized) == {"a", "b"}
        assert set(outcome.results) == {"a", "b"}

    def test_cuid_policy_is_memoized(self, runner):
        assert runner.cuid_policy() is runner.cuid_policy()

    def test_pair_batch_matches_pair(self, runner):
        scan_a = query1().profile(name="a")
        scan_b = query1().profile(name="b")
        requests = [
            PairRequest(scan_a, scan_b),
            PairRequest(scan_a, scan_b, first_mask=0x3),
        ]
        batched = runner.pair_batch(requests)
        singles = [
            runner.pair(scan_a, scan_b),
            runner.pair(scan_a, scan_b, first_mask=0x3),
        ]
        for one, other in zip(batched, singles):
            assert one.normalized == other.normalized
            assert one.results == other.results

    def test_isolated_sweep_matches_point_calls(self, runner):
        profile = query1().profile()
        ways = (2, 20)
        baseline, points = runner.isolated_sweep(profile, ways)
        assert baseline == runner.experiment.isolated(profile)
        assert points == [
            runner.experiment.isolated(
                profile, mask=runner.mask_for_ways(w)
            )
            for w in ways
        ]


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "v"), [("x", 1.0), ("longer", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(("v",), [(0.123456,), (1.5e9,), (1e-9,)])
        assert "0.123" in text
        assert "1.50e+09" in text
        assert "1.00e-09" in text

    def test_zero(self):
        assert "0" in format_table(("v",), [(0.0,)])
