"""Tests for the routing policies (repro.cluster.router)."""

from dataclasses import dataclass, field

import pytest

from repro.cluster.ring import HashRing
from repro.cluster.router import (
    AffinityRouter,
    HashRouter,
    LeastLoadedRouter,
    make_router,
)
from repro.cluster.workload import cluster_classes
from repro.config import SystemSpec
from repro.errors import ClusterError


@dataclass
class _StubAdmission:
    running: dict = field(default_factory=dict)
    queued_requests: tuple = ()

    @property
    def queue_length(self) -> int:
        return len(self.queued_requests)


@dataclass
class _StubRequest:
    cls: object


class _StubNode:
    def __init__(self, running=(), queued=()):
        self.admission = _StubAdmission(
            running={
                index: _StubRequest(cls)
                for index, cls in enumerate(running)
            },
            queued_requests=tuple(
                _StubRequest(cls) for cls in queued
            ),
        )


@pytest.fixture(scope="module")
def classes():
    return cluster_classes()


@pytest.fixture(scope="module")
def spec():
    return SystemSpec()


class TestHashRouter:
    def test_matches_ring_owner(self):
        router = HashRouter(nodes=4)
        ring = HashRing(4)
        nodes = [_StubNode() for _ in range(4)]
        alive = frozenset(range(4))
        for key in ("olap-00", "oltp-03", "batch-07"):
            decision = router.route(0, key, None, nodes, alive)
            assert decision.target == ring.owner(key)
            assert not decision.failover

    def test_failover_flagged_when_owner_dead(self):
        router = HashRouter(nodes=4)
        nodes = [_StubNode() for _ in range(4)]
        key = "olap-00"
        owner = router.ring.owner(key)
        alive = frozenset(range(4)) - {owner}
        decision = router.route(0, key, None, nodes, alive)
        assert decision.failover
        assert decision.target in alive

    def test_no_alive_nodes_sheds(self):
        router = HashRouter(nodes=2)
        decision = router.route(
            0, "olap-00", None, [_StubNode(), _StubNode()],
            frozenset(),
        )
        assert decision.target is None
        assert decision.failover


class TestLeastLoadedRouter:
    def test_picks_shortest_queue(self, classes):
        agg = classes["agg"]
        nodes = [
            _StubNode(queued=(agg, agg)),
            _StubNode(queued=(agg,)),
            _StubNode(queued=()),
        ]
        decision = LeastLoadedRouter().route(
            0, "olap-00", agg, nodes, frozenset(range(3))
        )
        assert decision.target == 2
        assert not decision.failover

    def test_tie_prefers_source_node(self, classes):
        agg = classes["agg"]
        nodes = [_StubNode(), _StubNode(), _StubNode()]
        for source in range(3):
            decision = LeastLoadedRouter().route(
                source, "olap-00", agg, nodes, frozenset(range(3))
            )
            assert decision.target == source

    def test_dead_source_is_failover(self, classes):
        agg = classes["agg"]
        nodes = [_StubNode(), _StubNode()]
        decision = LeastLoadedRouter().route(
            0, "olap-00", agg, nodes, frozenset({1})
        )
        assert decision.target == 1
        assert decision.failover


class TestAffinityRouter:
    def test_classifications_match_online_probe(self, spec, classes):
        router = AffinityRouter(spec)
        nodes = [_StubNode(), _StubNode()]
        for cls in classes.values():
            router.route(
                0, "olap-00", cls, nodes, frozenset({0, 1})
            )
        described = router.describe()["classifications"]
        # The online probe's verdicts over the catalog: streaming
        # classes pollute, the hash-table classes are sensitive.
        assert described["scan"] == "polluting"
        assert described["agg"] == "sensitive"
        assert described["join"] == "sensitive"

    def test_sensitive_avoids_polluted_node(self, spec, classes):
        router = AffinityRouter(spec)
        scan, agg = classes["scan"], classes["agg"]
        nodes = [_StubNode(running=(scan, scan)), _StubNode()]
        decision = router.route(
            0, "olap-00", agg, nodes, frozenset({0, 1})
        )
        assert decision.target == 1

    def test_polluting_consolidates(self, spec, classes):
        router = AffinityRouter(spec)
        scan = classes["scan"]
        nodes = [_StubNode(), _StubNode(running=(scan,))]
        decision = router.route(
            0, "olap-00", scan, nodes, frozenset({0, 1})
        )
        assert decision.target == 1

    def test_queue_slack_guards_consolidation(self, spec, classes):
        # The polluted node is overloaded: its queue exceeds the
        # shortest by more than the slack, so the polluting arrival
        # goes elsewhere instead of feeding the hotspot.
        router = AffinityRouter(spec, queue_slack=2)
        scan, agg = classes["scan"], classes["agg"]
        nodes = [
            _StubNode(running=(scan,), queued=(agg, agg, agg)),
            _StubNode(),
        ]
        decision = router.route(
            0, "olap-00", scan, nodes, frozenset({0, 1})
        )
        assert decision.target == 1

    def test_no_alive_nodes_sheds(self, spec, classes):
        router = AffinityRouter(spec)
        decision = router.route(
            0, "olap-00", classes["agg"], [_StubNode()], frozenset()
        )
        assert decision.target is None


class TestFactory:
    def test_builds_each_policy(self, spec):
        assert make_router("hash", 2, spec).name == "hash"
        assert make_router(
            "least-loaded", 2, spec
        ).name == "least-loaded"
        assert make_router("affinity", 2, spec).name == "affinity"

    def test_rejects_unknown_policy(self, spec):
        with pytest.raises(ClusterError):
            make_router("random", 2, spec)
