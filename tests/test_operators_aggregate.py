"""Tests for the grouped aggregation operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.operators.aggregate import GroupedAggregation
from repro.operators.base import CacheUsage
from repro.storage.table import ColumnTable, Schema, SchemaColumn


def make_table(values: np.ndarray, groups: np.ndarray) -> ColumnTable:
    table = ColumnTable(Schema("B", (SchemaColumn("V"), SchemaColumn("G"))))
    table.load({"V": values, "G": groups})
    return table


def ground_truth(values, groups, function):
    truth = {}
    for value, group in zip(values, groups):
        if group not in truth:
            truth[group] = [value]
        else:
            truth[group].append(value)
    reducers = {"MAX": max, "MIN": min, "SUM": sum,
                "COUNT": len}
    return {g: reducers[function](vs) for g, vs in truth.items()}


class TestExecution:
    @pytest.mark.parametrize("function", ["MAX", "MIN", "SUM", "COUNT"])
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_matches_ground_truth(self, rng, function, workers):
        values = rng.integers(1, 500, size=5000)
        groups = rng.integers(1, 40, size=5000)
        table = make_table(values, groups)
        result = GroupedAggregation(
            table, "V", "G", function, workers=workers
        ).execute()
        expected = ground_truth(values, groups, function)
        assert result.num_groups == len(expected)
        for group, aggregate in zip(result.groups, result.aggregates):
            assert aggregate == expected[group]

    def test_worker_count_does_not_change_result(self, rng):
        values = rng.integers(1, 100, size=2000)
        groups = rng.integers(1, 10, size=2000)
        table = make_table(values, groups)
        results = [
            GroupedAggregation(table, "V", "G", "SUM", workers=w).execute()
            for w in (1, 2, 7)
        ]
        for result in results[1:]:
            assert np.array_equal(result.groups, results[0].groups)
            assert np.array_equal(result.aggregates,
                                  results[0].aggregates)

    def test_single_group(self, rng):
        values = rng.integers(1, 100, size=100)
        table = make_table(values, np.ones(100, dtype=np.int64))
        result = GroupedAggregation(table, "V", "G", "MAX").execute()
        assert result.num_groups == 1
        assert result.aggregates[0] == values.max()

    def test_stats_recorded(self, rng):
        values = rng.integers(1, 100, size=300)
        groups = rng.integers(1, 5, size=300)
        table = make_table(values, groups)
        operator = GroupedAggregation(table, "V", "G", "MAX")
        operator.execute()
        assert operator.stats.rows_processed == 300
        assert operator.stats.dictionary_accesses == 300
        assert operator.stats.hash_table_accesses == 300

    def test_unsupported_function(self, rng):
        table = make_table(np.array([1]), np.array([1]))
        with pytest.raises(StorageError):
            GroupedAggregation(table, "V", "G", "MEDIAN")

    def test_invalid_workers(self, rng):
        table = make_table(np.array([1]), np.array([1]))
        with pytest.raises(StorageError):
            GroupedAggregation(table, "V", "G", "MAX", workers=0)


class TestClassification:
    def test_aggregation_is_sensitive(self, rng):
        table = make_table(np.array([1]), np.array([1]))
        operator = GroupedAggregation(table, "V", "G", "MAX")
        assert operator.cache_usage() is CacheUsage.SENSITIVE


class TestProfile:
    def test_paper_region_sizes(self):
        profile = GroupedAggregation.profile_from_stats(
            rows=1e9, value_distinct=10**7, group_distinct=10**5,
            workers=22,
        )
        dictionary = profile.region("dictionary")
        assert dictionary.total_bytes == pytest.approx(40e6, rel=0.1)
        hash_table = profile.region("hash_table")
        assert not hash_table.shared  # thread-local
        # Input stream: 24-bit value codes + 17-bit group codes ~ 5 B.
        assert 4.0 < profile.stream_bytes_per_tuple < 6.5


class TestProperty:
    @given(
        rows=st.integers(min_value=1, max_value=300),
        num_groups=st.integers(min_value=1, max_value=20),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_conservation(self, rows, num_groups, data):
        """The grouped SUMs must add up to the total column sum."""
        values = np.array(
            data.draw(st.lists(st.integers(1, 1000), min_size=rows,
                               max_size=rows))
        )
        groups = np.array(
            data.draw(st.lists(st.integers(1, num_groups),
                               min_size=rows, max_size=rows))
        )
        table = make_table(values, groups)
        result = GroupedAggregation(table, "V", "G", "SUM",
                                    workers=3).execute()
        assert result.aggregates.sum() == values.sum()
