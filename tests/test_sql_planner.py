"""Tests for the query planner."""

import numpy as np
import pytest

from repro.errors import SqlPlanError
from repro.operators import (
    ColumnScan,
    ForeignKeyJoin,
    GroupedAggregation,
    PointSelect,
)
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.storage.datagen import DataGenerator
from repro.storage.table import ColumnTable, Schema, SchemaColumn


@pytest.fixture
def tables(rng):
    generator = DataGenerator(11)
    registry = {}

    a = ColumnTable(Schema("A", (SchemaColumn("X"),)))
    a.load({"X": generator.uniform_ints(1000, 100)})
    registry["A"] = a

    b = ColumnTable(Schema("B", (SchemaColumn("V"), SchemaColumn("G"))))
    b.load(generator.aggregation_table(1000, 50, 5))
    registry["B"] = b

    primary, foreign = generator.join_tables(200, 1000)
    r = ColumnTable(Schema("R", (SchemaColumn("P", primary_key=True),)))
    r.load({"P": primary})
    s = ColumnTable(Schema("S", (SchemaColumn("F"),)))
    s.load({"F": foreign})
    registry["R"] = r
    registry["S"] = s
    return registry


@pytest.fixture
def planner(tables):
    return Planner(tables)


def plan(planner, sql, params=()):
    return planner.plan(parse(sql), params)


class TestPlanShapes:
    def test_scan(self, planner):
        planned = plan(planner, "SELECT COUNT(*) FROM A WHERE A.X > ?",
                       [50])
        assert planned.kind == "column_scan"
        assert isinstance(planned.root, ColumnScan)

    def test_aggregation(self, planner):
        planned = plan(planner,
                       "SELECT MAX(B.V), B.G FROM B GROUP BY B.G")
        assert planned.kind == "grouped_aggregation"
        assert isinstance(planned.root, GroupedAggregation)

    def test_join(self, planner):
        planned = plan(planner,
                       "SELECT COUNT(*) FROM R, S WHERE R.P = S.F")
        assert planned.kind == "foreign_key_join"
        assert isinstance(planned.root, ForeignKeyJoin)

    def test_join_sides_swapped(self, planner):
        planned = plan(planner,
                       "SELECT COUNT(*) FROM S, R WHERE S.F = R.P")
        assert planned.kind == "foreign_key_join"

    def test_point_select(self, planner, tables):
        value = int(tables["A"].column("X").materialize()[0])
        planned = plan(planner, "SELECT X FROM A WHERE X = ?", [value])
        assert planned.kind == "point_select"
        assert isinstance(planned.root, PointSelect)

    def test_execute_through_plan(self, planner, tables):
        planned = plan(planner, "SELECT COUNT(*) FROM A WHERE A.X > ?",
                       [50])
        result = planned.execute()
        values = tables["A"].column("X").materialize()
        assert result.matches == int((values > 50).sum())


class TestParameterHandling:
    def test_missing_params_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM A WHERE A.X > ?")

    def test_extra_params_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM A WHERE A.X > 5", [1])

    def test_literal_needs_no_params(self, planner):
        planned = plan(planner, "SELECT COUNT(*) FROM A WHERE A.X > 5")
        assert planned.kind == "column_scan"


class TestValidation:
    def test_unknown_table(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM NOPE WHERE X > 1")

    def test_wrong_table_qualifier(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM A WHERE B.X > 1")

    def test_join_without_pk_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM A, B WHERE A.X = B.V")

    def test_join_with_non_equality_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM R, S WHERE R.P > S.F")

    def test_three_tables_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT COUNT(*) FROM A, B, R WHERE A.X = 1")

    def test_two_aggregates_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner,
                 "SELECT MAX(B.V), MIN(B.V) FROM B GROUP BY B.G")

    def test_projected_non_group_column_rejected(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT MAX(B.V), B.V FROM B GROUP BY B.G")

    def test_point_select_requires_equality(self, planner):
        with pytest.raises(SqlPlanError):
            plan(planner, "SELECT X FROM A WHERE X > ?", [1])
