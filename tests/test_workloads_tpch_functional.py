"""Tests: the mini TPC-H data set runs functionally and correctly."""

import numpy as np
import pytest

from repro.core.integration import CachePartitioning
from repro.errors import WorkloadError
from repro.workloads.tpch_functional import build_functional_tpch


@pytest.fixture(scope="module")
def tpch():
    return build_functional_tpch(scale_rows=8_000)


class TestDataShape:
    def test_row_counts(self, tpch):
        assert tpch.lineitem_rows == 8_000
        assert tpch.orders_rows == 2_000
        assert tpch.database.table("LINEITEM").num_rows == 8_000

    def test_orders_keys_dense(self, tpch):
        keys = np.sort(tpch.data["ORDERS"]["O_ORDERKEY"])
        assert np.array_equal(keys, np.arange(1, 2_001))

    def test_foreign_keys_reference_orders(self, tpch):
        foreign = tpch.data["LINEITEM"]["L_ORDERKEY"]
        assert foreign.min() >= 1
        assert foreign.max() <= 2_000

    def test_scale_validation(self):
        with pytest.raises(WorkloadError):
            build_functional_tpch(scale_rows=4)


class TestQueries:
    def test_scan_quantity_matches_numpy(self, tpch):
        result = tpch.scan_quantity(25)
        expected = int(
            (tpch.data["LINEITEM"]["L_QUANTITY"] > 25).sum()
        )
        assert result.matches == expected

    def test_pricing_summary_matches_numpy(self, tpch):
        result = tpch.pricing_summary()
        lineitem = tpch.data["LINEITEM"]
        for flag, max_price in zip(result.groups, result.aggregates):
            mask = lineitem["L_RETURNFLAG"] == flag
            assert max_price == lineitem["L_EXTENDEDPRICE"][mask].max()

    def test_join_every_lineitem_matches(self, tpch):
        result = tpch.order_lineitem_join()
        assert result.matches == tpch.lineitem_rows

    def test_results_stable_under_partitioning(self, tpch):
        baseline = (
            tpch.scan_quantity(25).matches,
            tpch.order_lineitem_join().matches,
        )
        with CachePartitioning(tpch.database):
            partitioned = (
                tpch.scan_quantity(25).matches,
                tpch.order_lineitem_join().matches,
            )
        assert partitioned == baseline

    def test_operators_get_expected_masks(self, tpch):
        db = tpch.database
        with CachePartitioning(db):
            tpch.scan_quantity(25)
            tpch.pricing_summary()
            records = db.scheduler.dispatch_log[-2:]
        masks = {record.job_name: record.mask for record in records}
        assert masks["column_scan"] == 0x3
        assert masks["grouped_aggregation"] == db.spec.full_mask
