"""Property-based tests for the workload simulator.

Random workloads must respect the physics the paper's argument rests
on: restricting a cache never speeds an isolated query up; widening it
never slows one down; the scan-restriction scheme never regresses a
co-runner; and delivered DRAM traffic never exceeds the bus.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemSpec
from repro.model.simulator import QuerySpec, WorkloadSimulator
from repro.model.streams import AccessProfile, RandomRegion, SequentialStream
from repro.units import MiB

SPEC = SystemSpec()
FULL = SPEC.full_mask
SIM = WorkloadSimulator(SPEC)


profiles = st.builds(
    lambda region_mib, apt, stream_bpt, compute, shared: AccessProfile(
        name="q",
        tuples=1e9,
        compute_cycles_per_tuple=compute,
        instructions_per_tuple=max(1.0, compute * 2),
        regions=(
            RandomRegion("region", region_mib * MiB, apt, shared=shared),
        ),
        streams=(SequentialStream("stream", stream_bpt),),
    ),
    region_mib=st.floats(min_value=0.5, max_value=500),
    apt=st.floats(min_value=0.0, max_value=3.0),
    stream_bpt=st.floats(min_value=0.1, max_value=8.0),
    compute=st.floats(min_value=0.5, max_value=50.0),
    shared=st.booleans(),
)

way_counts = st.integers(min_value=2, max_value=20)


class TestIsolatedMonotonicity:
    @given(profile=profiles, ways=way_counts)
    @settings(max_examples=40, deadline=None)
    def test_restriction_never_speeds_up(self, profile, ways):
        full = SIM.simulate(
            [QuerySpec("q", profile, SPEC.cores, FULL)]
        )["q"]
        restricted = SIM.simulate(
            [QuerySpec("q", profile, SPEC.cores, (1 << ways) - 1)]
        )["q"]
        assert restricted.throughput_tuples_per_s <= (
            full.throughput_tuples_per_s * 1.01
        )

    @given(profile=profiles)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_ways(self, profile):
        rates = []
        for ways in (2, 8, 14, 20):
            result = SIM.simulate(
                [QuerySpec("q", profile, SPEC.cores, (1 << ways) - 1)]
            )["q"]
            rates.append(result.throughput_tuples_per_s)
        for slower, faster in zip(rates, rates[1:]):
            assert faster >= slower * 0.99

    @given(profile=profiles)
    @settings(max_examples=40, deadline=None)
    def test_hit_ratios_valid(self, profile):
        result = SIM.simulate(
            [QuerySpec("q", profile, SPEC.cores, FULL)]
        )["q"]
        for hit in result.region_hit_ratios.values():
            assert 0.0 <= hit <= 1.0

    @given(profile=profiles)
    @settings(max_examples=40, deadline=None)
    def test_delivered_bandwidth_bounded(self, profile):
        result = SIM.simulate(
            [QuerySpec("q", profile, SPEC.cores, FULL)]
        )["q"]
        assert result.dram_bytes_per_s <= (
            SPEC.dram.bandwidth_bytes_per_s * 1.01
        )


class TestPartitioningNeverRegresses:
    """The paper's headline guarantee, fuzzed: restricting a *pure
    scan* co-runner to 10 % never hurts either query materially."""

    scan = AccessProfile(
        "scan", 1e9, 0.5, 2.0, (),
        (SequentialStream("col", 2.5),),
    )

    @given(profile=profiles)
    @settings(max_examples=30, deadline=None)
    def test_scan_restriction_safe_for_any_corunner(self, profile):
        workload_off = [
            QuerySpec("other", profile, SPEC.cores, FULL),
            QuerySpec("scan", self.scan, SPEC.cores, FULL),
        ]
        workload_on = [
            QuerySpec("other", profile, SPEC.cores, FULL),
            QuerySpec("scan", self.scan, SPEC.cores, 0x3),
        ]
        off = SIM.simulate(workload_off)
        on = SIM.simulate(workload_on)
        assert on["other"].throughput_tuples_per_s >= (
            off["other"].throughput_tuples_per_s * 0.97
        )
        assert on["scan"].throughput_tuples_per_s >= (
            off["scan"].throughput_tuples_per_s * 0.97
        )
