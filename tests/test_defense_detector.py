"""Tests for online contention detection (repro.defense.detector)."""

import json

import pytest

from repro.config import SystemSpec
from repro.defense import (
    DETECTOR_SCHEMA_VERSION,
    ContentionDetector,
    DefenseConfig,
    attack_classes,
    detector_from_dict,
    load_defense,
)
from repro.defense.detector import config_from_dict
from repro.errors import DefenseError


def _classes():
    """Attack classes keyed by class name, as the fleet wires them."""
    return {
        cls.name: cls for cls in attack_classes().values()
    }


def _detector(**config_overrides):
    config = DefenseConfig(mode="jail", **config_overrides)
    return ContentionDetector(
        spec=SystemSpec(),
        config=config,
        classes=_classes(),
        nodes=2,
    )


class TestConfigValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(DefenseError):
            DefenseConfig(mode="banhammer")

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(DefenseError):
            DefenseConfig(interval_s=0.0)

    def test_rejects_zero_convict_windows(self):
        with pytest.raises(DefenseError):
            DefenseConfig(convict_windows=0)

    def test_rejects_zero_release_windows(self):
        with pytest.raises(DefenseError):
            DefenseConfig(release_windows=0)

    def test_rejects_bandwidth_share_out_of_range(self):
        with pytest.raises(DefenseError):
            DefenseConfig(bandwidth_share=0.0)
        with pytest.raises(DefenseError):
            DefenseConfig(bandwidth_share=1.5)

    def test_rejects_occupancy_share_out_of_range(self):
        with pytest.raises(DefenseError):
            DefenseConfig(occupancy_share=1.01)

    def test_rejects_nonpositive_duty_threshold(self):
        with pytest.raises(DefenseError):
            DefenseConfig(duty_threshold=0.0)

    def test_round_trip(self):
        config = DefenseConfig(
            mode="evict", interval_s=0.5, convict_windows=3,
            release_windows=4, bandwidth_share=0.4,
            occupancy_share=0.9, duty_threshold=1.5,
        )
        assert config_from_dict(config.to_dict()) == config

    def test_round_trip_rejects_missing_key(self):
        payload = DefenseConfig().to_dict()
        del payload["duty_threshold"]
        with pytest.raises(DefenseError, match="missing"):
            config_from_dict(payload)


class TestWindowVerdicts:
    def test_thrasher_convicts_after_hysteresis(self):
        detector = _detector(convict_windows=2)
        windows = [{"atk_thrash": 20}, {"atk_thrash": 20}]
        actions = detector.tick(1.0, windows)
        assert actions == []  # one suspect window is not enough
        actions = detector.tick(2.0, windows)
        assert [a["action"] for a in actions] == ["convict"]
        assert actions[0]["group"] == "thrash"
        assert detector.convicted_groups == ("thrash",)

    def test_probe_convicts_on_duty_times_occupancy(self):
        # The probe classifies SENSITIVE — the bandwidth arm never
        # fires — so a conviction proves the duty x occupancy arm.
        detector = _detector(convict_windows=1)
        detector.tick(1.0, [{"atk_probe": 20}])
        assert detector.convicted_groups == ("probe",)

    def test_idle_windows_release_a_convict(self):
        detector = _detector(convict_windows=1, release_windows=2)
        windows = [{"atk_thrash": 20}, {}, {}, {}]
        detector.tick(1.0, windows)
        assert detector.convicted_groups == ("thrash",)
        actions = detector.tick(4.0, windows)
        assert [a["action"] for a in actions] == ["release"]
        assert detector.convicted_groups == ()

    def test_suspect_window_resets_clean_streak(self):
        detector = _detector(convict_windows=1, release_windows=2)
        windows = [
            {"atk_thrash": 20}, {}, {"atk_thrash": 20}, {}, {},
        ]
        detector.tick(5.0, windows)
        # The clean run was interrupted at window 2, so release only
        # lands after windows 3 and 4.
        assert detector.convicted_groups == ()
        assert detector.releases[0]["window"] == 4

    def test_light_traffic_is_not_suspect(self):
        detector = _detector(convict_windows=1)
        detector.tick(1.0, [{"atk_thrash": 1}])
        assert detector.convicted_groups == ()

    def test_windows_only_judged_once_elapsed(self):
        detector = _detector(convict_windows=1)
        actions = detector.tick(0.5, [{"atk_thrash": 20}])
        assert actions == []


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        detector = _detector(convict_windows=1, release_windows=2)
        detector.tick(
            2.0, [{"atk_thrash": 20}, {"atk_probe": 20}]
        )
        payload = detector.to_dict()
        restored = detector_from_dict(
            payload, spec=SystemSpec(), classes=_classes()
        )
        assert json.dumps(
            restored.to_dict(), sort_keys=True
        ) == json.dumps(payload, sort_keys=True)

    def test_restored_detector_keeps_judging(self):
        detector = _detector(convict_windows=1, release_windows=1)
        windows = [{"atk_thrash": 20}, {}]
        detector.tick(1.0, windows)
        restored = detector_from_dict(
            detector.to_dict(),
            spec=SystemSpec(),
            classes=_classes(),
        )
        actions = restored.tick(2.0, windows)
        assert [a["action"] for a in actions] == ["release"]

    def test_rejects_unversioned_state(self):
        payload = _detector().to_dict()
        del payload["schema_version"]
        with pytest.raises(DefenseError, match="schema_version"):
            detector_from_dict(payload)

    def test_rejects_newer_schema(self):
        payload = _detector().to_dict()
        payload["schema_version"] = DETECTOR_SCHEMA_VERSION + 1
        with pytest.raises(DefenseError, match="newer"):
            detector_from_dict(payload)


class TestLoadDefense:
    def test_rejects_unversioned_report(self):
        with pytest.raises(DefenseError, match="fleet_report_version"):
            load_defense({})

    def test_rejects_invalid_version(self):
        with pytest.raises(DefenseError, match="invalid"):
            load_defense({"fleet_report_version": "six"})

    def test_rejects_newer_report(self):
        with pytest.raises(DefenseError, match="newer"):
            load_defense({"fleet_report_version": 7})

    def test_rejects_pre_training_reports(self):
        with pytest.raises(DefenseError, match="predates"):
            load_defense({"fleet_report_version": 3})

    @pytest.mark.parametrize("version", [4, 5])
    def test_older_reports_load_disabled_block(self, version):
        block = load_defense({"fleet_report_version": version})
        assert block["enabled"] is False
        assert block["mode"] == "off"
        assert block["attacks"] == []
        assert block["ground_truth"] == []

    def test_v6_block_passes_through(self):
        defense = {"enabled": True, "mode": "jail", "attacks": []}
        report = {"fleet_report_version": 6, "defense": defense}
        assert load_defense(report) is defense
