"""Tests for the bit vector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bitvector import BitVector


class TestBasics:
    def test_set_and_test(self):
        vector = BitVector(100)
        vector.set(7)
        assert vector.test(7)
        assert not vector.test(8)

    def test_count(self):
        vector = BitVector(1000)
        vector.set_many(np.array([1, 63, 64, 999]))
        assert vector.count() == 4

    def test_clear(self):
        vector = BitVector(128)
        vector.set_many(np.array([5, 6]))
        vector.clear_many(np.array([5]))
        assert not vector.test(5)
        assert vector.test(6)

    def test_size_bytes_matches_paper(self):
        # Sec. IV-C: 10^8 keys -> 12.5 MB bit vector.
        vector = BitVector(10**8)
        assert vector.size_bytes == pytest.approx(12.5e6, rel=0.001)

    def test_from_positions(self):
        vector = BitVector.from_positions(64, np.array([0, 63]))
        assert vector.test(0) and vector.test(63)
        assert vector.count() == 2

    def test_test_many_vectorised(self):
        vector = BitVector(256)
        vector.set_many(np.array([10, 20, 30]))
        result = vector.test_many(np.array([10, 11, 20, 21, 30]))
        assert list(result) == [True, False, True, False, True]

    def test_out_of_range_rejected(self):
        vector = BitVector(10)
        with pytest.raises(StorageError):
            vector.set(10)
        with pytest.raises(StorageError):
            vector.test(-1)

    def test_zero_length_rejected(self):
        with pytest.raises(StorageError):
            BitVector(0)


positions_strategy = st.lists(
    st.integers(min_value=0, max_value=499), max_size=200
)


class TestAgainstReferenceSet:
    @given(set_positions=positions_strategy,
           probe_positions=positions_strategy)
    @settings(max_examples=150, deadline=None)
    def test_matches_python_set(self, set_positions, probe_positions):
        vector = BitVector(500)
        reference = set(set_positions)
        if set_positions:
            vector.set_many(np.array(set_positions))
        if probe_positions:
            results = vector.test_many(np.array(probe_positions))
            expected = [p in reference for p in probe_positions]
            assert list(results) == expected
        assert vector.count() == len(reference)

    @given(set_positions=positions_strategy,
           cleared=positions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_clear_matches_set_difference(self, set_positions, cleared):
        vector = BitVector(500)
        if set_positions:
            vector.set_many(np.array(set_positions))
        if cleared:
            vector.clear_many(np.array(cleared))
        reference = set(set_positions) - set(cleared)
        assert vector.count() == len(reference)
