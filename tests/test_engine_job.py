"""Tests for jobs and job graphs."""

import numpy as np
import pytest

from repro.engine.job import Job, JobGraph
from repro.errors import SchedulerError
from repro.operators.base import CacheUsage
from repro.operators.scan import ColumnScan
from repro.storage.table import ColumnTable, Schema, SchemaColumn


def scan_job(rng):
    table = ColumnTable(Schema("A", (SchemaColumn("X"),)))
    table.load({"X": rng.integers(1, 100, size=100)})
    return Job("scan", operator=ColumnScan(table, "X", ">", 50))


class TestJob:
    def test_cuid_defaults_from_operator(self, rng):
        job = scan_job(rng)
        assert job.cuid is CacheUsage.POLLUTING

    def test_callable_job_defaults_sensitive(self):
        # The paper's regression-safe default (Sec. V-C).
        job = Job("misc", callable=lambda: 42)
        assert job.cuid is CacheUsage.SENSITIVE

    def test_explicit_cuid_wins(self):
        job = Job("misc", callable=lambda: 1,
                  cuid=CacheUsage.POLLUTING)
        assert job.cuid is CacheUsage.POLLUTING

    def test_run_records_result(self):
        job = Job("misc", callable=lambda: "done")
        assert job.run() == "done"
        assert job.completed
        assert job.result == "done"

    def test_operator_job_runs_operator(self, rng):
        job = scan_job(rng)
        result = job.run()
        assert result.rows_scanned == 100

    def test_needs_exactly_one_payload(self):
        with pytest.raises(SchedulerError):
            Job("bad")
        with pytest.raises(SchedulerError):
            Job("bad", operator=object(), callable=lambda: 1)

    def test_job_ids_unique(self):
        a = Job("a", callable=lambda: 1)
        b = Job("b", callable=lambda: 1)
        assert a.job_id != b.job_id


class TestJobGraph:
    def test_topological_order_respects_dependencies(self):
        graph = JobGraph()
        first = graph.add(Job("first", callable=lambda: 1))
        second = graph.add(Job("second", callable=lambda: 2),
                           after=[first])
        third = graph.add(Job("third", callable=lambda: 3),
                          after=[second])
        order = [job.name for job in graph.topological_order()]
        assert order.index("first") < order.index("second")
        assert order.index("second") < order.index("third")

    def test_independent_jobs_ordered_deterministically(self):
        graph = JobGraph()
        for name in ("a", "b", "c"):
            graph.add(Job(name, callable=lambda: 1))
        first_run = [j.name for j in graph.topological_order()]
        second_run = [j.name for j in graph.topological_order()]
        assert first_run == second_run

    def test_unknown_dependency_rejected(self):
        graph = JobGraph()
        orphan = Job("orphan", callable=lambda: 1)
        with pytest.raises(SchedulerError):
            graph.add(Job("x", callable=lambda: 1), after=[orphan])

    def test_duplicate_job_rejected(self):
        graph = JobGraph()
        job = graph.add(Job("a", callable=lambda: 1))
        with pytest.raises(SchedulerError):
            graph.add(job)
