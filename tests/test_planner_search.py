"""Tests for the blueprint beam/local search
(repro.planner.search)."""

import pytest

from repro.cluster.workload import cluster_classes
from repro.config import DEFAULT_SYSTEM
from repro.errors import PlannerError
from repro.planner import (
    BLUEPRINT_SCHEMES,
    Blueprint,
    BlueprintScorer,
    SearchConfig,
    beam_search,
    enumerate_blueprints,
    neighborhood,
    spread_blueprint,
)
from repro.planner.search import (
    move_replica_moves,
    node_count_moves,
    resize_replica_moves,
    scheme_moves,
    split_merge_moves,
    swap_pair_moves,
)

GROUPS = ("batch", "olap", "oltp")

GENERATORS = (
    scheme_moves,
    move_replica_moves,
    resize_replica_moves,
    swap_pair_moves,
    split_merge_moves,
)


def _scorer(solve_memo=None):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    return BlueprintScorer(
        DEFAULT_SYSTEM,
        classes=classes,
        targets={"olap": 1.2, "oltp": 0.6},
        max_concurrency=8,
        solve_memo=solve_memo if solve_memo is not None else {},
    )


def _rates(batch=8.0, olap=8.0, oltp=8.0):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    by_tenant: dict = {}
    for name, cls in classes.items():
        by_tenant.setdefault(cls.tenant, []).append(name)
    rates = {}
    for tenant, total in (
        ("batch", batch), ("olap", olap), ("oltp", oltp)
    ):
        for name in by_tenant[tenant]:
            rates[name] = total / len(by_tenant[tenant])
    return rates


def _origins():
    origins = list(enumerate_blueprints(4, GROUPS))
    origins.append(Blueprint.build(
        3,
        {"batch": (2,), "olap": (0,), "oltp": (0, 1)},
        ("paper", "full", "paper"),
    ))
    origins.append(spread_blueprint(1, GROUPS, "full"))
    return origins


class TestNeighborhoodGenerators:
    # Satellite: every move generator emits only valid blueprints —
    # Blueprint.__post_init__ enforces coverage, home-set bounds and
    # scheme membership, so constructing them at all is the check; on
    # top we pin group preservation and determinism.

    def test_generators_produce_only_valid_blueprints(self):
        for origin in _origins():
            groups = {g for g, _ in origin.placement}
            for generate in GENERATORS:
                for move in generate(origin):
                    assert move.nodes == origin.nodes
                    assert {
                        g for g, _ in move.placement
                    } == groups
                    for scheme in move.schemes:
                        assert scheme in BLUEPRINT_SCHEMES

    def test_generators_are_deterministic(self):
        for origin in _origins():
            for generate in GENERATORS:
                first = [m.key() for m in generate(origin)]
                second = [m.key() for m in generate(origin)]
                assert first == second

    def test_scheme_moves_change_exactly_one_node(self):
        origin = spread_blueprint(3, GROUPS, "paper")
        for move in scheme_moves(origin):
            assert move.placement == origin.placement
            different = [
                node for node in range(3)
                if move.schemes[node] != origin.schemes[node]
            ]
            assert len(different) == 1

    def test_move_and_resize_preserve_or_step_replica_counts(self):
        origin = Blueprint.build(
            4,
            {"batch": (3,), "olap": (0, 1), "oltp": (0, 1, 2)},
            ("paper",) * 4,
        )
        sizes = {
            group: len(home) for group, home in origin.placement
        }
        for move in move_replica_moves(origin):
            moved = move.placement_map()
            assert {
                g: len(h) for g, h in moved.items()
            } == sizes
        for move in resize_replica_moves(origin):
            diff = [
                (g, len(h))
                for g, h in move.placement_map().items()
                if len(h) != sizes[g]
            ]
            assert len(diff) == 1
            group, size = diff[0]
            assert abs(size - sizes[group]) == 1

    def test_node_count_moves_step_by_one_and_respect_bounds(self):
        origin = spread_blueprint(3, GROUPS, "paper")
        moves = node_count_moves(origin, min_nodes=2, max_nodes=4)
        counts = sorted({m.nodes for m in moves})
        assert counts == [2, 4]
        assert node_count_moves(
            origin, min_nodes=3, max_nodes=3
        ) == []
        # A group homed only on the dropped node survives the shrink.
        lonely = Blueprint.build(
            3,
            {"batch": (2,), "olap": (0, 1), "oltp": (0, 1)},
            ("paper",) * 3,
        )
        for move in node_count_moves(lonely, 2, 3):
            if move.nodes == 2:
                assert move.placement_map()["batch"]

    def test_node_count_moves_round_trip_to_dict(self):
        # Satellite: ±node-count candidates survive the report
        # serialization path.
        origin = spread_blueprint(3, GROUPS, "paper")
        for move in node_count_moves(origin, 2, 4):
            payload = move.to_dict()
            rebuilt = Blueprint.build(
                payload["nodes"],
                {
                    group: tuple(home)
                    for group, home in payload["placement"].items()
                },
                tuple(payload["schemes"]),
            )
            assert rebuilt.key() == move.key()
            assert rebuilt.nodes == move.nodes

    def test_neighborhood_is_deduplicated_and_sorted(self):
        for origin in _origins():
            moves = neighborhood(origin, min_nodes=1, max_nodes=6)
            keys = [m.key() for m in moves]
            assert origin.key() not in keys
            assert len(set(keys)) == len(keys)
            assert keys == sorted(keys)

    def test_neighborhood_defaults_pin_the_node_count(self):
        origin = spread_blueprint(3, GROUPS, "paper")
        assert all(
            m.nodes == 3 for m in neighborhood(origin)
        )


class TestSearchConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(PlannerError, match="strategy"):
            SearchConfig(strategy="anneal")
        with pytest.raises(PlannerError, match="width"):
            SearchConfig(beam_width=0)
        with pytest.raises(PlannerError, match="steps"):
            SearchConfig(steps=0)
        with pytest.raises(PlannerError, match="budget"):
            SearchConfig(max_candidates=0)


class TestBeamSearch:
    def test_fixed_seed_is_deterministic(self):
        rates = _rates(batch=30.0, olap=10.0, oltp=10.0)
        seeds = enumerate_blueprints(4, GROUPS)
        config = SearchConfig(
            strategy="beam", beam_width=4, steps=3,
            max_candidates=200, seed=42,
        )
        runs = []
        for _ in range(2):
            result = beam_search(
                _scorer(), rates, seeds, config,
                min_nodes=4, max_nodes=4,
            )
            runs.append((
                sorted(result.entries),
                result.stats.to_dict(),
                {
                    key: entry.score
                    for key, entry in result.entries.items()
                },
            ))
        assert runs[0] == runs[1]

    def test_budget_truncation_is_seed_dependent_but_stable(self):
        rates = _rates()
        seeds = enumerate_blueprints(4, GROUPS)
        tight = SearchConfig(
            strategy="beam", beam_width=8, steps=2,
            max_candidates=len(seeds) + 10, seed=3,
        )
        result = beam_search(
            _scorer(), rates, seeds, tight,
            min_nodes=4, max_nodes=4,
        )
        assert result.stats.truncated > 0
        assert result.stats.candidates_scored <= (
            tight.max_candidates
        )
        again = beam_search(
            _scorer(), rates, seeds, tight,
            min_nodes=4, max_nodes=4,
        )
        assert sorted(again.entries) == sorted(result.entries)

    def test_winner_never_worse_than_best_seed(self):
        rates = _rates(batch=50.0, olap=4.0, oltp=4.0)
        memo: dict = {}
        scorer = _scorer(memo)
        seeds = enumerate_blueprints(4, GROUPS)
        seed_best = min(
            scorer.score(c, rates).score for c in seeds
        )
        result = beam_search(
            scorer, rates, seeds,
            SearchConfig(strategy="beam", seed=0),
            min_nodes=4, max_nodes=4,
        )
        best = min(
            entry.score for entry in result.entries.values()
        )
        assert best <= seed_best
        assert result.stats.candidates_scored >= len(seeds)

    def test_entries_materialize_to_exact_scalar_scores(self):
        rates = _rates()
        memo: dict = {}
        scorer = _scorer(memo)
        result = beam_search(
            scorer, rates, enumerate_blueprints(3, GROUPS),
            SearchConfig(
                strategy="beam", beam_width=3, steps=2,
                max_candidates=60, seed=0,
            ),
            min_nodes=3, max_nodes=3,
        )
        for entry in result.entries.values():
            scalar = scorer.score(entry.blueprint, rates)
            assert entry.materialize().to_dict() == (
                scalar.to_dict()
            )
            assert entry.score == scalar.score

    def test_requires_a_seed(self):
        with pytest.raises(PlannerError, match="seed"):
            beam_search(
                _scorer(), _rates(), (),
                SearchConfig(strategy="beam"),
            )
