"""Tests for the high-level resctrl interface."""

import pytest

from repro.errors import ResctrlError
from repro.hardware.cat import CatController
from repro.resctrl.filesystem import ROOT_GROUP, ResctrlFilesystem
from repro.resctrl.interface import ResctrlInterface


@pytest.fixture
def interface(spec) -> ResctrlInterface:
    return ResctrlInterface(ResctrlFilesystem(CatController(spec)))


class TestGroupForMask:
    def test_full_mask_is_root(self, interface, spec):
        assert interface.group_for_mask(spec.full_mask) == ROOT_GROUP
        assert interface.stats.group_creations == 0

    def test_new_mask_creates_group_once(self, interface):
        first = interface.group_for_mask(0x3)
        second = interface.group_for_mask(0x3)
        assert first == second
        assert interface.stats.group_creations == 1
        assert interface.stats.schemata_writes == 1

    def test_distinct_masks_distinct_groups(self, interface):
        assert interface.group_for_mask(0x3) != interface.group_for_mask(
            0xFFF
        )


class TestAssignThread:
    def test_assignment_effective(self, interface):
        interface.assign_thread(101, 0x3)
        assert interface.thread_mask(101) == 0x3
        assert interface.stats.task_moves == 1

    def test_unassigned_thread_has_full_mask(self, interface, spec):
        assert interface.thread_mask(555) == spec.full_mask

    def test_syscall_cost_accumulates(self, spec):
        fs = ResctrlFilesystem(CatController(spec))
        interface = ResctrlInterface(fs, syscall_seconds=100e-6)
        interface.assign_thread(1, 0x3)
        # group creation + schemata write + task move = 3 syscalls.
        assert interface.stats.total_calls == 3
        assert interface.stats.total_seconds == pytest.approx(300e-6)

    def test_paper_overhead_bound(self, interface):
        """Paper Sec. V-C: a bitmask association costs < 100 us."""
        interface.group_for_mask(0x3)  # pre-create the group
        before = interface.stats.total_seconds
        interface.assign_thread(7, 0x3)
        assert interface.stats.total_seconds - before < 100e-6

    def test_negative_cost_rejected(self, spec):
        fs = ResctrlFilesystem(CatController(spec))
        with pytest.raises(ResctrlError):
            ResctrlInterface(fs, syscall_seconds=-1)


class TestReset:
    def test_reset_removes_groups(self, interface):
        interface.assign_thread(1, 0x3)
        interface.reset()
        assert interface.filesystem.groups() == [ROOT_GROUP]
        assert interface.stats.total_calls == 0

    def test_reset_returns_threads_to_root(self, interface, spec):
        interface.assign_thread(1, 0x3)
        interface.reset()
        assert interface.thread_mask(1) == spec.full_mask
