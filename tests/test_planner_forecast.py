"""Tests for the arrival forecasters (repro.planner.forecast)."""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import PlannerError
from repro.planner import (
    FORECASTERS,
    EwmaForecaster,
    SeasonalWindowForecaster,
    fit_forecaster,
    forecaster_from_dict,
    make_forecaster,
    training_from_report,
)

WINDOWS = [
    {"scan": 4, "agg": 2},
    {"scan": 6, "agg": 1, "oltp": 3},
    {"scan": 2},
    {"agg": 5, "oltp": 2},
]


class TestRegistry:
    def test_factory_covers_every_name(self):
        for name in FORECASTERS:
            model = make_forecaster(name)
            assert model.name == name

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(PlannerError, match="forecaster"):
            make_forecaster("arima")

    def test_from_dict_rejects_unknown_name(self):
        with pytest.raises(PlannerError, match="serialized"):
            forecaster_from_dict({"name": "arima"})

    def test_rejects_bad_parameters(self):
        with pytest.raises(PlannerError):
            EwmaForecaster(window_s=0.0)
        with pytest.raises(PlannerError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(PlannerError):
            SeasonalWindowForecaster(period_s=-1.0)
        with pytest.raises(PlannerError):
            make_forecaster("ewma").observe(-1, {})
        with pytest.raises(PlannerError):
            make_forecaster("ewma").forecast(0.0, 0.0)


class TestDeterminism:
    @pytest.mark.parametrize("name", FORECASTERS)
    def test_same_log_gives_byte_identical_state(self, name):
        first = fit_forecaster(make_forecaster(name), WINDOWS)
        second = fit_forecaster(make_forecaster(name), WINDOWS)
        assert first.state_json() == second.state_json()

    @pytest.mark.parametrize("name", FORECASTERS)
    def test_key_order_inside_windows_is_irrelevant(self, name):
        shuffled = [
            dict(reversed(list(window.items())))
            for window in WINDOWS
        ]
        first = fit_forecaster(make_forecaster(name), WINDOWS)
        second = fit_forecaster(make_forecaster(name), shuffled)
        assert first.state_json() == second.state_json()

    @pytest.mark.parametrize("name", FORECASTERS)
    def test_forecast_is_deterministic(self, name):
        model = fit_forecaster(make_forecaster(name), WINDOWS)
        first = model.forecast(4.0, 2.0).to_dict()
        second = model.forecast(4.0, 2.0).to_dict()
        assert first == second


class TestRoundTrip:
    @pytest.mark.parametrize("name", FORECASTERS)
    def test_state_survives_serialization(self, name):
        model = fit_forecaster(make_forecaster(name), WINDOWS)
        rebuilt = forecaster_from_dict(
            json.loads(model.state_json())
        )
        assert rebuilt.state_json() == model.state_json()
        assert (
            rebuilt.forecast(4.0, 2.0).to_dict()
            == model.forecast(4.0, 2.0).to_dict()
        )

    @pytest.mark.parametrize("name", FORECASTERS)
    def test_rebuilt_model_keeps_learning_identically(self, name):
        model = fit_forecaster(make_forecaster(name), WINDOWS)
        rebuilt = forecaster_from_dict(
            json.loads(model.state_json())
        )
        model.observe(4, {"scan": 9})
        rebuilt.observe(4, {"scan": 9})
        assert rebuilt.state_json() == model.state_json()


class TestModels:
    def test_ewma_tracks_a_level_shift_with_lag(self):
        model = EwmaForecaster(window_s=1.0, alpha=0.5)
        fit_forecaster(model, [{"scan": 10}] * 4)
        model.observe(4, {"scan": 0})
        level = model.level()["scan"]
        assert 0.0 < level < 10.0

    def test_seasonal_predicts_a_recurring_shift_ahead(self):
        # One trained "day": quiet first half, busy second half.
        day = [{"scan": 2}] * 5 + [{"scan": 20}] * 5
        model = SeasonalWindowForecaster(window_s=1.0, period_s=10.0)
        fit_forecaster(model, day)
        quiet = model.forecast(0.0, 2.0).rate_per_s
        busy = model.forecast(6.0, 2.0).rate_per_s
        assert busy > quiet * 4

    def test_seasonal_falls_back_to_ewma_on_unseen_phases(self):
        model = SeasonalWindowForecaster(window_s=1.0, period_s=10.0)
        model.observe(0, {"scan": 8})
        # Phase 5 has never been observed: EWMA level answers.
        unseen = model.forecast(5.0, 1.0)
        assert unseen.rate_per_s == pytest.approx(8.0)

    def test_mix_fractions_sum_to_one(self):
        model = fit_forecaster(make_forecaster("ewma"), WINDOWS)
        forecast = model.forecast(4.0, 2.0)
        assert sum(forecast.mix.values()) == pytest.approx(1.0)
        assert forecast.rate_for("scan") + forecast.rate_for(
            "agg"
        ) + forecast.rate_for("oltp") == pytest.approx(
            forecast.rate_per_s
        )

    def test_empty_model_forecasts_zero(self):
        forecast = make_forecaster("ewma").forecast(0.0, 1.0)
        assert forecast.rate_per_s == 0.0
        assert forecast.mix == {}


class TestTrainingFromReport:
    def test_fleet_report_round_trips_into_training_windows(self):
        report = Cluster(ClusterConfig(
            nodes=2, duration_s=3.0, rate_per_s=8.0, seed=11,
            policy="none",
        )).run()
        training = training_from_report(report.to_dict())
        assert len(training) == 3
        total = sum(
            count for window in training for _, count in window
        )
        assert total == report.generated
        # The canonical form is hashable and sorted.
        for window in training:
            assert list(window) == sorted(window)

    def test_rejects_reports_without_arrival_windows(self):
        with pytest.raises(PlannerError, match="arrival_windows"):
            training_from_report({"report_version": 3})

    def test_rejects_malformed_blocks(self):
        with pytest.raises(PlannerError, match="per-class"):
            training_from_report(
                {"arrival_windows": {"classes": None}}
            )
