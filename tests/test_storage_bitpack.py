"""Tests for bit-width packing of dictionary codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bitpack import (
    pack_codes,
    packed_bytes,
    required_bits,
    unpack_codes,
)


class TestRequiredBits:
    def test_paper_example(self):
        # Sec. III-B: 10^6 distinct values -> 20 bits per value.
        assert required_bits(10**6) == 20

    @pytest.mark.parametrize("cardinality,bits", [
        (1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (256, 8), (257, 9),
        (10**9, 30),
    ])
    def test_boundaries(self, cardinality, bits):
        assert required_bits(cardinality) == bits

    def test_rejects_nonpositive(self):
        with pytest.raises(StorageError):
            required_bits(0)


class TestPackUnpack:
    def test_simple_roundtrip(self):
        codes = np.array([0, 1, 2, 3, 7, 5], dtype=np.uint32)
        packed = pack_codes(codes, 3)
        assert np.array_equal(unpack_codes(packed, 3, 6), codes)

    def test_word_straddling(self):
        # 20-bit codes straddle 64-bit word boundaries at index 3.
        codes = np.arange(50, dtype=np.uint32) * 997 % (1 << 20)
        packed = pack_codes(codes, 20)
        assert np.array_equal(unpack_codes(packed, 20, 50), codes)

    def test_empty(self):
        packed = pack_codes(np.array([], dtype=np.uint32), 5)
        assert unpack_codes(packed, 5, 0).size == 0

    def test_code_too_wide_rejected(self):
        with pytest.raises(StorageError):
            pack_codes(np.array([8], dtype=np.uint32), 3)

    def test_bad_bit_width_rejected(self):
        with pytest.raises(StorageError):
            pack_codes(np.array([0], dtype=np.uint32), 0)
        with pytest.raises(StorageError):
            pack_codes(np.array([0], dtype=np.uint32), 33)

    def test_unpack_beyond_buffer_rejected(self):
        packed = pack_codes(np.arange(4, dtype=np.uint32), 20)
        with pytest.raises(StorageError):
            unpack_codes(packed, 20, 100)


class TestPackedBytes:
    def test_paper_compression_ratio(self):
        # 10^9 rows x 20 bits = 2.5 GB streamed by the scan.
        assert packed_bytes(10**9, 20) == pytest.approx(2.5e9, rel=0.01)

    def test_rounds_to_whole_words(self):
        assert packed_bytes(1, 1) == 8

    def test_validation(self):
        with pytest.raises(StorageError):
            packed_bytes(-1, 8)
        with pytest.raises(StorageError):
            packed_bytes(1, 0)


@given(
    bits=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
@settings(max_examples=200, deadline=None)
def test_roundtrip_property(bits, data):
    count = data.draw(st.integers(min_value=0, max_value=300))
    codes = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=count, max_size=count,
        )
    )
    array = np.array(codes, dtype=np.uint32)
    packed = pack_codes(array, bits)
    assert np.array_equal(unpack_codes(packed, bits, count), array)
