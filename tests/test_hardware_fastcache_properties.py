"""Property-based cross-engine equivalence (hypothesis).

The fast engine's contract is *bit-identical* behaviour: for any
trace — random addresses, random contiguous CLOS masks, stream
labels, prefetch flags, mask reprogramming mid-trace — the reference
loop and the vectorized batch replay must produce identical
per-access hit results, identical statistics (including evictions)
and identical final cache contents.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.hardware.engine import cache_state_digest
from repro.hardware.fastcache import FastSetAssociativeCache
from repro.units import KiB

LINE = 64


def _build(sets: int, ways: int, masks: dict[int, int]):
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(sets * ways * LINE, ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
        cat_min_bits=1,
    )
    cat = CatController(spec)
    for clos, mask in masks.items():
        cat.set_clos_mask(clos, mask)
    return (
        SetAssociativeCache(spec.llc, cat=cat),
        FastSetAssociativeCache(spec.llc, cat=cat),
        cat,
    )


def _contiguous_mask(ways: int, start: int, width: int) -> int:
    start %= ways
    width = max(1, width % ways)
    width = min(width, ways - start)
    return ((1 << width) - 1) << start


def _replay_both(ref, fast, events):
    """Per-access on the reference, one batch on the fast engine."""
    ref_hits = [
        ref.access(line * LINE, clos=clos, stream=stream,
                   is_prefetch=prefetch)
        for line, clos, stream, prefetch in events
    ]
    fast_hits = fast.access_batch(
        np.array([line * LINE for line, _, _, _ in events], np.int64),
        clos=np.array([clos for _, clos, _, _ in events], np.int64),
        stream=np.array(
            [stream for _, _, stream, _ in events], dtype=object
        ),
        is_prefetch=np.array(
            [prefetch for _, _, _, prefetch in events], bool
        ),
    )
    return ref_hits, fast_hits.tolist()


def _assert_equivalent(ref, fast, ref_hits, fast_hits):
    assert ref_hits == fast_hits
    assert vars(ref.stats) == vars(fast.stats)
    assert {k: vars(v) for k, v in ref.stats_by_clos.items()} == \
        {k: vars(v) for k, v in fast.stats_by_clos.items()}
    assert {k: vars(v) for k, v in ref.stats_by_stream.items()} == \
        {k: vars(v) for k, v in fast.stats_by_stream.items()}
    assert ref.occupancy_by_way() == fast.occupancy_by_way()
    assert ref.occupancy_by_stream() == fast.occupancy_by_stream()
    assert sorted(ref.iter_lines()) == sorted(fast.iter_lines())
    assert cache_state_digest(ref) == cache_state_digest(fast)


events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # line address
        st.integers(min_value=1, max_value=2),  # clos
        st.sampled_from([None, "", "a", "b"]),  # stream label
        st.booleans(),  # is_prefetch
    ),
    min_size=1,
    max_size=200,
)

mask_params = st.tuples(
    st.integers(min_value=0, max_value=7),  # start
    st.integers(min_value=1, max_value=7),  # width
)


@given(events=events_strategy, mask1=mask_params, mask2=mask_params)
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_random_traces(events, mask1, mask2):
    ways = 4
    masks = {
        1: _contiguous_mask(ways, *mask1),
        2: _contiguous_mask(ways, *mask2),
    }
    ref, fast, _ = _build(8, ways, masks)
    ref_hits, fast_hits = _replay_both(ref, fast, events)
    _assert_equivalent(ref, fast, ref_hits, fast_hits)


@given(
    events=events_strategy,
    mask_before=mask_params,
    mask_after=mask_params,
    split=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_engines_agree_across_mask_reprogramming(
    events, mask_before, mask_after, split
):
    """CAT masks reprogrammed mid-trace invalidate both engines' memos
    identically: the halves replayed around the change stay equal."""
    ways = 4
    ref, fast, cat = _build(
        8, ways,
        {1: _contiguous_mask(ways, *mask_before), 2: (1 << ways) - 1},
    )
    split = min(split, len(events))
    head, tail = events[:split], events[split:]
    results = ([], [])
    if head:
        ref_hits, fast_hits = _replay_both(ref, fast, head)
        results[0].extend(ref_hits)
        results[1].extend(fast_hits)
    cat.set_clos_mask(1, _contiguous_mask(ways, *mask_after))
    if tail:
        ref_hits, fast_hits = _replay_both(ref, fast, tail)
        results[0].extend(ref_hits)
        results[1].extend(fast_hits)
    _assert_equivalent(ref, fast, results[0], results[1])


@given(events=events_strategy)
@settings(max_examples=40, deadline=None)
def test_engines_agree_without_cat(events):
    spec = CacheSpec(8 * 4 * LINE, 4)
    ref = SetAssociativeCache(spec)
    fast = FastSetAssociativeCache(spec)
    ref_hits, fast_hits = _replay_both(ref, fast, events)
    _assert_equivalent(ref, fast, ref_hits, fast_hits)


@given(events=events_strategy)
@settings(max_examples=40, deadline=None)
def test_scalar_and_batch_paths_agree(events):
    """The fast engine's own scalar `access` is the same machine as
    its batch replay."""
    spec = CacheSpec(8 * 4 * LINE, 4)
    one = FastSetAssociativeCache(spec)
    batch = FastSetAssociativeCache(spec)
    scalar_hits = [
        one.access(line * LINE, clos=0, stream=stream,
                   is_prefetch=prefetch)
        for line, _, stream, prefetch in events
    ]
    batch_hits = batch.access_batch(
        np.array([line * LINE for line, _, _, _ in events], np.int64),
        stream=np.array(
            [stream for _, _, stream, _ in events], dtype=object
        ),
        is_prefetch=np.array(
            [prefetch for _, _, _, prefetch in events], bool
        ),
    )
    assert scalar_hits == batch_hits.tolist()
    assert vars(one.stats) == vars(batch.stats)
    assert sorted(one.iter_lines()) == sorted(batch.iter_lines())
