"""Tests for the open-loop arrival generators."""

import pytest

from repro.errors import ServeError
from repro.serve.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RequestClass,
    WorkloadMix,
    build_arrivals,
    catalog_classes,
    olap_heavy_mix,
    oltp_heavy_mix,
)


@pytest.fixture(scope="module")
def mix():
    return olap_heavy_mix()


@pytest.fixture(scope="module")
def schedule(mix):
    return ((0.0, mix),)


def _drain(process, horizon_s):
    events = []
    now = 0.0
    while True:
        now, cls = process.next_arrival(now)
        if now >= horizon_s:
            return events
        events.append((now, cls.name))


class TestDeterminism:
    def test_same_seed_same_sequence(self, schedule):
        a = _drain(PoissonArrivals(50.0, schedule, seed=7), 5.0)
        b = _drain(PoissonArrivals(50.0, schedule, seed=7), 5.0)
        assert a == b

    def test_different_seed_different_sequence(self, schedule):
        a = _drain(PoissonArrivals(50.0, schedule, seed=7), 5.0)
        b = _drain(PoissonArrivals(50.0, schedule, seed=8), 5.0)
        assert a != b

    def test_bursty_and_diurnal_deterministic(self, schedule):
        for factory in (
            lambda s: BurstyArrivals(10.0, 40.0, schedule, seed=s),
            lambda s: DiurnalArrivals(10.0, 40.0, schedule, seed=s),
        ):
            assert _drain(factory(3), 5.0) == _drain(factory(3), 5.0)


class TestRates:
    def test_poisson_rate_approximately_offered(self, schedule):
        events = _drain(PoissonArrivals(100.0, schedule, seed=1), 20.0)
        rate = len(events) / 20.0
        assert 85.0 < rate < 115.0

    def test_bursty_rate_between_base_and_burst(self, schedule):
        process = BurstyArrivals(10.0, 100.0, schedule, seed=2)
        events = _drain(process, 30.0)
        rate = len(events) / 30.0
        assert 10.0 < rate < 100.0

    def test_diurnal_trough_and_peak(self, schedule):
        process = DiurnalArrivals(
            10.0, 100.0, schedule, period_s=20.0, seed=4
        )
        # Rate curve: trough at t=0 and t=period, peak at period/2.
        assert process.rate_at(0.0) == pytest.approx(10.0)
        assert process.rate_at(10.0) == pytest.approx(100.0)
        assert process.rate_at(20.0) == pytest.approx(10.0)


class TestMixes:
    def test_catalog_covers_paper_queries(self):
        classes = catalog_classes()
        assert set(classes) == {"scan", "agg", "join", "oltp"}
        assert classes["scan"].tenant == "olap"
        assert classes["oltp"].tenant == "oltp"

    def test_mix_weights_respected(self, mix):
        # pick() maps the unit interval through cumulative weights.
        assert mix.pick(0.0).name == "scan"
        assert mix.pick(0.999).name == "oltp"

    def test_mix_schedule_shifts_composition(self):
        schedule = (
            (0.0, olap_heavy_mix()),
            (5.0, oltp_heavy_mix()),
        )
        process = PoissonArrivals(200.0, schedule, seed=3)
        events = _drain(process, 10.0)
        early = [name for t, name in events if t < 5.0]
        late = [name for t, name in events if t >= 5.0]
        assert early.count("oltp") / len(early) < 0.25
        assert late.count("oltp") / len(late) > 0.5

    def test_duplicate_class_names_rejected(self):
        cls = catalog_classes()["scan"]
        with pytest.raises(ServeError):
            WorkloadMix("dup", (cls, cls), (0.5, 0.5))

    def test_weight_validation(self):
        cls = catalog_classes()["scan"]
        with pytest.raises(ServeError):
            WorkloadMix("bad", (cls,), (-1.0,))
        with pytest.raises(ServeError):
            WorkloadMix("bad", (cls,), (0.5, 0.5))

    def test_request_class_work_validated(self):
        template = catalog_classes()["scan"]
        with pytest.raises(ServeError):
            RequestClass(
                name="zero",
                tenant="olap",
                profile=template.profile,
                work_tuples=0.0,
                static_cuid=template.static_cuid,
            )


class TestFactoryAndValidation:
    def test_build_arrivals_profiles(self, schedule):
        assert isinstance(
            build_arrivals("poisson", 10.0, schedule), PoissonArrivals
        )
        assert isinstance(
            build_arrivals("bursty", 10.0, schedule), BurstyArrivals
        )
        assert isinstance(
            build_arrivals("diurnal", 10.0, schedule), DiurnalArrivals
        )

    def test_unknown_profile_rejected(self, schedule):
        with pytest.raises(ServeError):
            build_arrivals("uniform", 10.0, schedule)

    def test_schedule_must_start_at_zero(self, mix):
        with pytest.raises(ServeError):
            PoissonArrivals(10.0, ((1.0, mix),), seed=1)
        with pytest.raises(ServeError):
            PoissonArrivals(10.0, (), seed=1)

    def test_rate_validation(self, schedule, mix):
        with pytest.raises(ServeError):
            build_arrivals("poisson", 0.0, schedule)
        with pytest.raises(ServeError):
            BurstyArrivals(50.0, 10.0, schedule)  # base > burst
        with pytest.raises(ServeError):
            DiurnalArrivals(10.0, 40.0, schedule, period_s=0.0)
