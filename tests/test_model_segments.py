"""Tests for way-mask segment decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.segments import Segment, allowed_ways, decompose_masks


class TestPaperSchemes:
    def test_paper_default_scheme(self):
        # scan 0x3 + aggregation 0xfffff: 2-way shared + 18-way exclusive.
        segments = decompose_masks(
            {"scan": 0x3, "agg": 0xFFFFF}, total_ways=20
        )
        assert len(segments) == 2
        shared = segments[0]
        exclusive = segments[1]
        assert shared.members == frozenset({"scan", "agg"})
        assert shared.ways == 2
        assert exclusive.members == frozenset({"agg"})
        assert exclusive.ways == 18

    def test_join_60_scheme(self):
        # join 0xfff + aggregation 0xfffff: 12 shared + 8 exclusive.
        segments = decompose_masks(
            {"join": 0xFFF, "agg": 0xFFFFF}, total_ways=20
        )
        assert segments[0].ways == 12
        assert segments[1].ways == 8

    def test_identical_masks_are_one_segment(self):
        segments = decompose_masks(
            {"a": 0xFFFFF, "b": 0xFFFFF}, total_ways=20
        )
        assert len(segments) == 1
        assert segments[0].ways == 20

    def test_disjoint_masks(self):
        segments = decompose_masks({"a": 0x3, "b": 0xC}, total_ways=4)
        assert len(segments) == 2
        assert all(len(seg.members) == 1 for seg in segments)

    def test_uncovered_ways_dropped(self):
        segments = decompose_masks({"a": 0x3}, total_ways=20)
        assert sum(seg.ways for seg in segments) == 2


class TestValidation:
    def test_rejects_zero_mask(self):
        with pytest.raises(ModelError):
            decompose_masks({"a": 0}, total_ways=4)

    def test_rejects_oversized_mask(self):
        with pytest.raises(ModelError):
            decompose_masks({"a": 0x1F}, total_ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ModelError):
            decompose_masks({"a": 0x1}, total_ways=0)

    def test_segment_validation(self):
        with pytest.raises(ModelError):
            Segment(frozenset({"a"}), 0)
        with pytest.raises(ModelError):
            Segment(frozenset(), 1)

    def test_allowed_ways(self):
        assert allowed_ways({"a": 0xFFF}, "a") == 12
        with pytest.raises(ModelError):
            allowed_ways({}, "a")


masks_strategy = st.dictionaries(
    keys=st.sampled_from(["q1", "q2", "q3"]),
    values=st.integers(min_value=1, max_value=(1 << 20) - 1),
    min_size=1,
    max_size=3,
)


class TestProperties:
    @given(masks=masks_strategy)
    @settings(max_examples=200, deadline=None)
    def test_segment_ways_partition_covered_ways(self, masks):
        segments = decompose_masks(masks, total_ways=20)
        covered = bin(
            __import__("functools").reduce(
                lambda a, b: a | b, masks.values(), 0
            )
        ).count("1")
        assert sum(seg.ways for seg in segments) == covered

    @given(masks=masks_strategy)
    @settings(max_examples=200, deadline=None)
    def test_member_way_count_matches_mask(self, masks):
        """Each query's mask width equals the sum of its segments' ways."""
        segments = decompose_masks(masks, total_ways=20)
        for name, mask in masks.items():
            total = sum(
                seg.ways for seg in segments if name in seg.members
            )
            assert total == bin(mask).count("1")
