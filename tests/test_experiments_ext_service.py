"""Tests for the ext-service experiment (open-loop service tables)."""

import pytest

from repro.experiments import ext_service


@pytest.fixture(scope="module")
def result():
    return ext_service.run(fast=True)


class TestLoadTable:
    def test_covers_all_rates_and_policies(self, result):
        load_rows = result.select(table="load")
        rates = set(ext_service.FAST_LOAD_RATES)
        policies = set(ext_service.POLICIES)
        assert len(load_rows) == len(rates) * len(policies)
        assert set(result.column("policy")) >= policies

    def test_partitioning_not_worse_at_high_load(self, result):
        """At the highest offered load the unpartitioned baseline must
        not beat the paper's static scheme on completed work — the
        paper's core claim carried into the open-loop setting."""
        top = max(ext_service.FAST_LOAD_RATES)
        (none_row,) = result.select(
            table="load", rate_per_s=top, policy="none"
        )
        (static_row,) = result.select(
            table="load", rate_per_s=top, policy="static"
        )
        completed = result.headers.index("completed_per_s")
        assert static_row[completed] >= none_row[completed] * 0.999

    def test_adaptive_matches_static_tail(self, result):
        """The controller, given nothing but monitoring, ends within
        25 % of the statically-derived scheme's p99."""
        top = max(ext_service.FAST_LOAD_RATES)
        (static_row,) = result.select(
            table="load", rate_per_s=top, policy="static"
        )
        (adaptive_row,) = result.select(
            table="load", rate_per_s=top, policy="adaptive"
        )
        p99 = result.headers.index("p99_olap_s")
        assert adaptive_row[p99] <= static_row[p99] * 1.25

    def test_low_load_policies_equivalent(self, result):
        """Uncontended, partitioning neither helps nor hurts."""
        low = min(ext_service.FAST_LOAD_RATES)
        rows = result.select(table="load", rate_per_s=low)
        completed = result.headers.index("completed_per_s")
        values = [row[completed] for row in rows]
        assert max(values) <= min(values) * 1.05


class TestShiftTable:
    def test_adaptive_reconfigures(self, result):
        (shift_row,) = result.select(table="shift")
        reconfigs = result.headers.index("reconfigs")
        assert shift_row[reconfigs] >= 1

    def test_reconvergence_bounded(self, result):
        """After the mix shift the controller settles within three
        control intervals (cached class analyses make this fast)."""
        (shift_row,) = result.select(table="shift")
        converge = result.headers.index("converge_ticks")
        assert shift_row[converge] <= 3


class TestNotes:
    def test_notes_summarise_both_tables(self, result):
        text = " ".join(result.notes)
        assert "completed/s" in text
        assert "re-converged" in text
