"""Cross-validation: analytic occupancy model vs trace-driven simulator.

The Che approximation drives all figure reproductions, so we validate it
against the exact set-associative LRU simulator on scaled-down
geometries: the predicted hit ratios of random-access regions competing
with streams must track the simulated ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheSpec
from repro.hardware.cache import SetAssociativeCache
from repro.model.occupancy import (
    RegionActor,
    StreamActor,
    solve_characteristic_time,
)

LINE = 64


def simulate_mixed(
    region_lines: int,
    region_accesses_per_step: float,
    stream_lines_per_step: float,
    cache: SetAssociativeCache,
    steps: int,
    rng: np.random.Generator,
) -> float:
    """Interleave random region accesses with a sequential stream.

    Returns the region's steady-state hit ratio (warm-up excluded).
    """
    stream_position = 1 << 24  # far away from the region
    region_accumulator = 0.0
    stream_accumulator = 0.0
    warmup = steps // 2
    hits = 0
    demands = 0
    for step in range(steps):
        region_accumulator += region_accesses_per_step
        while region_accumulator >= 1.0:
            region_accumulator -= 1.0
            line = int(rng.integers(0, region_lines))
            hit = cache.access(line * LINE, stream="region")
            if step >= warmup:
                demands += 1
                hits += 1 if hit else 0
        stream_accumulator += stream_lines_per_step
        while stream_accumulator >= 1.0:
            stream_accumulator -= 1.0
            cache.access(stream_position * LINE, stream="scan")
            stream_position += 1
    return hits / max(1, demands)


def predicted_hit_ratio(
    region_lines: int,
    region_rate: float,
    stream_rate: float,
    capacity_lines: int,
) -> float:
    region = RegionActor("q", "r", region_lines, region_rate)
    streams = [StreamActor("q", "s", stream_rate)] if stream_rate else []
    t = solve_characteristic_time([region], streams, capacity_lines)
    return region.hit_ratio(t)


@pytest.mark.parametrize(
    "region_lines,region_per_step,stream_per_step",
    [
        # Region fits easily; slow stream: near-perfect hits.
        (128, 1.0, 0.25),
        # Region ~ half the cache, stream at equal rate.
        (512, 1.0, 1.0),
        # Region as big as the cache, aggressive stream.
        (1024, 1.0, 4.0),
        # Region far bigger than the cache: mostly misses.
        (8192, 1.0, 1.0),
    ],
)
def test_che_tracks_lru_simulation(
    region_lines, region_per_step, stream_per_step, rng
):
    sets, ways = 64, 16
    cache = SetAssociativeCache(CacheSpec(sets * ways * LINE, ways))
    measured = simulate_mixed(
        region_lines, region_per_step, stream_per_step, cache,
        steps=30_000, rng=rng,
    )
    predicted = predicted_hit_ratio(
        region_lines, region_per_step, stream_per_step, sets * ways
    )
    # Che's approximation is accurate to a few percent for LRU under
    # mixed random/streaming traffic.
    assert measured == pytest.approx(predicted, abs=0.08)


def test_pollution_ordering_matches_simulation(rng):
    """More stream pressure lowers the region hit ratio in both the
    exact simulation and the analytic model, in the same order."""
    sets, ways = 64, 16
    measured = []
    predicted = []
    for stream_per_step in (0.5, 2.0, 8.0):
        cache = SetAssociativeCache(CacheSpec(sets * ways * LINE, ways))
        measured.append(
            simulate_mixed(1024, 1.0, stream_per_step, cache,
                           steps=20_000, rng=rng)
        )
        predicted.append(
            predicted_hit_ratio(1024, 1.0, stream_per_step, sets * ways)
        )
    assert measured == sorted(measured, reverse=True)
    assert predicted == sorted(predicted, reverse=True)


def test_way_partitioning_protects_region_in_simulation(rng):
    """End-to-end CAT effect on the exact simulator: restricting the
    stream to 2 of 16 ways restores the region's hit ratio — the
    hardware mechanism behind every figure of the paper."""
    from repro.config import SystemSpec
    from repro.hardware.cat import CatController
    from repro.units import KiB

    sets, ways = 64, 16
    spec = SystemSpec(
        cores=2,
        llc=CacheSpec(sets * ways * LINE, ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
        cat_min_bits=1,
    )

    def run(stream_mask: int) -> float:
        cat = CatController(spec)
        cat.set_clos_mask(1, spec.full_mask)  # region query
        cat.set_clos_mask(2, stream_mask)     # scan
        cache = SetAssociativeCache(spec.llc, cat=cat)
        region_lines = 700
        hits = demands = 0
        stream_position = 1 << 24
        for step in range(25_000):
            line = int(rng.integers(0, region_lines))
            hit = cache.access(line * LINE, clos=1, stream="region")
            if step >= 12_500:
                demands += 1
                hits += 1 if hit else 0
            for _ in range(3):
                cache.access(stream_position * LINE, clos=2,
                             stream="scan")
                stream_position += 1
        return hits / demands

    shared = run(spec.full_mask)
    partitioned = run(0x3)
    assert partitioned > shared + 0.2
