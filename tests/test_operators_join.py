"""Tests for the foreign-key join operator and its CUID heuristic."""

import numpy as np
import pytest

from repro.config import SystemSpec
from repro.errors import StorageError
from repro.operators.base import CacheUsage
from repro.operators.join import ForeignKeyJoin, classify_join
from repro.storage.datagen import DataGenerator
from repro.storage.table import ColumnTable, Schema, SchemaColumn
from repro.units import MiB


def make_tables(primary: np.ndarray, foreign: np.ndarray):
    pk_table = ColumnTable(
        Schema("R", (SchemaColumn("P", primary_key=True),))
    )
    pk_table.load({"P": primary})
    fk_table = ColumnTable(Schema("S", (SchemaColumn("F"),)))
    fk_table.load({"F": foreign})
    return pk_table, fk_table


class TestExecution:
    def test_all_foreign_keys_match(self):
        primary, foreign = DataGenerator(1).join_tables(500, 3000)
        pk_table, fk_table = make_tables(primary, foreign)
        join = ForeignKeyJoin(pk_table, "P", fk_table, "F")
        result = join.execute()
        assert result.matches == 3000
        assert result.probes == 3000

    def test_partial_matches(self):
        primary = np.arange(1, 101)  # keys 1..100
        foreign = np.arange(50, 150)  # half match
        pk_table, fk_table = make_tables(primary, foreign)
        result = ForeignKeyJoin(pk_table, "P", fk_table, "F").execute()
        assert result.matches == int(np.isin(foreign, primary).sum())

    def test_sparse_primary_keys(self):
        primary = np.array([1, 50, 100])
        foreign = np.array([1, 2, 50, 99, 100, 100])
        pk_table, fk_table = make_tables(primary, foreign)
        result = ForeignKeyJoin(pk_table, "P", fk_table, "F").execute()
        assert result.matches == 4

    def test_build_returns_bit_vector(self):
        primary = np.array([1, 3, 5])
        pk_table, fk_table = make_tables(primary, np.array([1]))
        join = ForeignKeyJoin(pk_table, "P", fk_table, "F")
        vector = join.build()
        assert len(vector) == 5
        assert vector.count() == 3

    def test_bit_vector_bytes(self):
        primary = np.arange(1, 8001)
        pk_table, fk_table = make_tables(primary, np.array([1]))
        join = ForeignKeyJoin(pk_table, "P", fk_table, "F")
        assert join.bit_vector_bytes == pytest.approx(1000, rel=0.05)

    def test_rejects_nonpositive_keys(self):
        pk_table = ColumnTable(
            Schema("R", (SchemaColumn("P", primary_key=True),))
        )
        pk_table.load({"P": np.array([0, 1])})
        fk_table = ColumnTable(Schema("S", (SchemaColumn("F"),)))
        fk_table.load({"F": np.array([1])})
        join = ForeignKeyJoin(pk_table, "P", fk_table, "F")
        with pytest.raises(StorageError):
            join.build()


class TestHeuristic:
    """The paper's Sec. V-B classification by bit-vector size."""

    def test_l2_resident_vector_is_polluting(self, spec):
        # 10^6 keys -> 125 KB, far below aggregate L2 (5.5 MiB).
        assert classify_join(125_000, spec) is CacheUsage.POLLUTING

    def test_llc_comparable_vector_is_sensitive(self, spec):
        # 10^8 keys -> 12.5 MB, comparable to the 55 MiB LLC.
        assert classify_join(12_500_000, spec) is CacheUsage.SENSITIVE

    def test_oversized_vector_is_polluting(self, spec):
        # 10^9 keys -> 125 MB >> LLC: compulsory misses.
        assert classify_join(125_000_000, spec) is CacheUsage.POLLUTING

    def test_boundary_at_l2(self, spec):
        assert classify_join(
            spec.l2_total_bytes, spec
        ) is CacheUsage.POLLUTING
        assert classify_join(
            spec.l2_total_bytes + 1, spec
        ) is CacheUsage.SENSITIVE

    def test_invalid_size(self, spec):
        with pytest.raises(StorageError):
            classify_join(0, spec)

    def test_operator_reports_adaptive(self):
        primary = np.arange(1, 10)
        pk_table, fk_table = make_tables(primary, np.array([1]))
        join = ForeignKeyJoin(pk_table, "P", fk_table, "F")
        assert join.cache_usage() is CacheUsage.ADAPTIVE
        assert join.resolve_usage() is CacheUsage.POLLUTING


class TestProfile:
    def test_bit_vector_region_is_software_managed(self):
        profile = ForeignKeyJoin.profile_from_stats(
            pk_rows=1e8, fk_rows=1e9, workers=22
        )
        vector = profile.region("bit_vector")
        assert vector.software_managed
        assert vector.total_bytes == pytest.approx(12.5e6, rel=0.01)

    def test_fk_stream_width(self):
        # 10^9 foreign keys referencing 10^9 primary keys: 30-bit codes.
        profile = ForeignKeyJoin.profile_from_stats(1e9, 1e9, 22)
        assert profile.stream_bytes_per_tuple == pytest.approx(
            30 / 8, rel=0.01
        )
