"""Tests for the parallel execution context and its determinism.

The headline guarantee of ``repro.parallel`` is that ``--jobs N``
changes wall-clock time only: stdout, figure rows/notes and every
commutative counter are identical to the sequential schedule.  The
suite checks both fan-out levels (whole experiments across workers,
sweep points within one experiment) against ``--jobs 1``.
"""

import io
from contextlib import redirect_stdout

import pytest

from repro.obs import MetricsRegistry, observing
from repro.parallel import (
    ParallelContext,
    current,
    current_pool,
    parallel_context,
)
from repro.parallel.worker import run_experiment_task

#: Counters that sum over solves and therefore must be *equal* — not
#: merely close — between sequential and parallel schedules.
COMMUTATIVE_COUNTERS = (
    "simulator.solves",
    "che.solves",
    "sim.cache.hits",
    "sim.cache.misses",
    "sim.cache.stores",
)


def _counters(snapshot: dict) -> dict:
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if name in COMMUTATIVE_COUNTERS
    }


def _run_figure(name: str, jobs: int) -> tuple[str, object, dict]:
    """One experiment's (stdout, figure, commutative counters)."""
    from repro.cli import EXPERIMENTS

    stream = io.StringIO()
    with parallel_context(jobs=jobs, cache_enabled=False):
        with observing() as (tracer, metrics):
            with redirect_stdout(stream):
                figure = EXPERIMENTS[name][0](fast=True)
    return stream.getvalue(), figure, _counters(metrics.snapshot())


class TestContext:
    def test_default_is_sequential(self):
        context = current()
        assert context.jobs == 1
        assert not context.parallel
        assert current_pool() is None

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelContext(jobs=0)

    def test_install_and_restore(self):
        before = current()
        with parallel_context(jobs=3) as context:
            assert current() is context
            assert context.jobs == 3
        assert current() is before

    def test_restores_on_error(self):
        before = current()
        with pytest.raises(RuntimeError):
            with parallel_context(jobs=2):
                raise RuntimeError("boom")
        assert current() is before

    def test_no_pool_when_sequential(self):
        with parallel_context(jobs=1) as context:
            assert context.pool() is None

    def test_pool_is_shared_and_shut_down(self):
        with parallel_context(jobs=2) as context:
            pool = context.pool()
            assert pool is not None
            assert context.pool() is pool
            assert pool.submit(abs, -3).result() == 3
        # After the scope exits the pool is gone; submitting raises.
        with pytest.raises(RuntimeError):
            pool.submit(abs, -3)

    def test_cache_disabled_yields_none(self):
        with parallel_context(jobs=1, cache_enabled=False) as context:
            assert context.new_cache() is None

    def test_cache_enabled_yields_fresh_instances(self, tmp_path):
        with parallel_context(jobs=1, disk_dir=tmp_path) as context:
            first = context.new_cache()
            second = context.new_cache()
        assert first is not second
        assert first.disk_dir == second.disk_dir


class TestWorkerTask:
    def test_payload_matches_inline_run(self):
        payload = run_experiment_task(
            "fig4", fast=True, observe=True, cache_enabled=False
        )
        stdout, figure, _ = _run_figure("fig4", jobs=1)
        assert payload["name"] == "fig4"
        assert payload["stdout"] == stdout
        assert payload["figure"] == figure.to_dict()
        assert payload["spans"] is not None
        assert payload["metrics"]["counters"]["simulator.solves"] > 0
        assert payload["seconds"] > 0

    def test_unobserved_payload_has_no_spans(self):
        payload = run_experiment_task(
            "fig1", fast=True, observe=False, cache_enabled=False
        )
        assert payload["spans"] is None
        assert payload["metrics"] is None
        assert payload["figure"] is not None


class TestPointLevelDeterminism:
    """``run <one experiment> --jobs N``: sweep points fan out."""

    @pytest.mark.parametrize("name", ["fig4", "fig9"])
    def test_rows_and_stdout_identical(self, name):
        seq_out, seq_fig, seq_counters = _run_figure(name, jobs=1)
        par_out, par_fig, par_counters = _run_figure(name, jobs=2)
        assert par_out == seq_out
        assert par_fig.rows == seq_fig.rows
        assert par_fig.notes == seq_fig.notes
        assert par_counters == seq_counters

    def test_cached_run_matches_uncached_rows(self):
        _, uncached, _ = _run_figure("fig5", jobs=1)
        stream = io.StringIO()
        with parallel_context(jobs=1, cache_enabled=True):
            from repro.cli import EXPERIMENTS

            with redirect_stdout(stream):
                cached = EXPERIMENTS["fig5"][0](fast=True)
        assert cached.rows == uncached.rows


class TestExperimentLevelDeterminism:
    """``run all --jobs N``: whole experiments fan out."""

    # The model-evaluation subset keeps the test fast; the full-suite
    # check (every experiment, 4 jobs, via the real CLI) runs in
    # benchmarks/bench_parallel.py and CI.
    NAMES = ("fig1", "fig4", "ext-sort")

    def test_payloads_match_sequential(self):
        sequential = {
            name: _run_figure(name, jobs=1) for name in self.NAMES
        }
        with parallel_context(jobs=4, cache_enabled=False) as context:
            pool = context.pool()
            futures = [
                pool.submit(
                    run_experiment_task, name, True, True, False
                )
                for name in self.NAMES
            ]
            payloads = [future.result() for future in futures]
        for name, payload in zip(self.NAMES, payloads):
            seq_out, seq_fig, seq_counters = sequential[name]
            assert payload["stdout"] == seq_out
            assert payload["figure"] == seq_fig.to_dict()
            assert _counters(payload["metrics"]) == seq_counters

    def test_merged_metrics_equal_sequential_totals(self):
        totals = MetricsRegistry()
        for name in self.NAMES:
            _, _, counters = _run_figure(name, jobs=1)
            for counter, value in counters.items():
                totals.counter(counter).inc(value)
        merged = MetricsRegistry()
        with parallel_context(jobs=4, cache_enabled=False) as context:
            pool = context.pool()
            futures = [
                pool.submit(
                    run_experiment_task, name, True, True, False
                )
                for name in self.NAMES
            ]
            for future in futures:
                merged.merge(
                    MetricsRegistry.from_snapshot(
                        future.result()["metrics"]
                    )
                )
        assert _counters(merged.snapshot()) == _counters(
            totals.snapshot()
        )
