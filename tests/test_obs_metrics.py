"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("che.solves").inc()
        registry.counter("che.solves").inc(4)
        assert registry.counter("che.solves").value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("report.claims_passed")
        gauge.set(3)
        gauge.set(13)
        assert gauge.value == 13

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("span.seconds")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestMergeSemantics:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc()
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.counter("only_b").value == 1

    def test_gauges_take_other_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.gauge("g").value == 2.0

    def test_unset_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g")  # created but never set
        a.merge(b)
        assert a.gauge("g").value == 1.0

    def test_histograms_pool(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b)
        merged = a.histogram("h")
        assert merged.count == 2
        assert merged.minimum == 1.0
        assert merged.maximum == 5.0


class TestSnapshot:
    def test_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(2.0)
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_snapshot_is_sorted_and_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must not raise

    def test_empty_histogram_snapshot_has_null_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        stats = registry.snapshot()["histograms"]["h"]
        assert stats["min"] is None
        assert stats["max"] is None
        assert stats["count"] == 0


class TestNullMetrics:
    def test_instruments_are_shared_noops(self):
        counter = NULL_METRICS.counter("a")
        assert counter is NULL_METRICS.counter("b")
        assert counter is NULL_METRICS.gauge("c")
        assert counter is NULL_METRICS.histogram("d")
        counter.inc()
        counter.set(1.0)
        counter.observe(2.0)  # all silently ignored

    def test_snapshot_is_empty(self):
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disabled_flag(self):
        assert NullMetrics.enabled is False
        assert MetricsRegistry().enabled is True
