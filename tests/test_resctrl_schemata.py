"""Tests for resctrl schemata parsing/formatting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResctrlError
from repro.resctrl.schemata import format_schemata, parse_schemata


class TestParse:
    def test_full_mask(self):
        assert parse_schemata("L3:0=fffff") == {0: 0xFFFFF}

    def test_paper_scan_mask(self):
        assert parse_schemata("L3:0=3") == {0: 0x3}

    def test_multiple_domains(self):
        assert parse_schemata("L3:0=3;1=ff") == {0: 0x3, 1: 0xFF}

    def test_whitespace_tolerated(self):
        assert parse_schemata("  L3:0=f  ") == {0: 0xF}

    def test_lowercase_l3(self):
        assert parse_schemata("l3:0=f") == {0: 0xF}

    @pytest.mark.parametrize("bad", [
        "", "L3:", "MB:0=10", "L3:0", "L3:x=f", "L3:0=zz",
        "L3:0=0", "L3:-1=f", "L3:0=f;0=3",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ResctrlError):
            parse_schemata(bad)


class TestFormat:
    def test_format_full(self):
        assert format_schemata({0: 0xFFFFF}) == "L3:0=fffff"

    def test_format_sorted_domains(self):
        assert format_schemata({1: 0xF, 0: 0x3}) == "L3:0=3;1=f"

    def test_rejects_empty(self):
        with pytest.raises(ResctrlError):
            format_schemata({})

    def test_rejects_zero_mask(self):
        with pytest.raises(ResctrlError):
            format_schemata({0: 0})


masks = st.dictionaries(
    keys=st.integers(min_value=0, max_value=7),
    values=st.integers(min_value=1, max_value=(1 << 20) - 1),
    min_size=1,
    max_size=4,
)


class TestRoundTrip:
    @given(masks=masks)
    @settings(max_examples=200, deadline=None)
    def test_format_parse_roundtrip(self, masks):
        assert parse_schemata(format_schemata(masks)) == masks
