"""Tests for the workload catalogs (micro-bench, TPC-H, S/4HANA)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.storage.datagen import DataGenerator
from repro.units import MiB
from repro.workloads.microbench import (
    DICT_40_MIB,
    GROUP_SIZES,
    PRIMARY_KEY_SIZES,
    query1,
    query2,
    query3,
)
from repro.workloads.s4hana import (
    ACDOCA_ROWS,
    acdoca_catalog,
    build_functional_acdoca,
    oltp_query_13_columns,
    oltp_query_6_columns,
    oltp_query_n_columns,
)
from repro.workloads.tpch import (
    LINEITEM_ROWS,
    all_queries,
    tpch_query,
)


class TestMicrobenchConfigs:
    def test_query1_profile(self):
        profile = query1().profile()
        assert profile.tuples == 1e9
        assert profile.stream_bytes_per_tuple == pytest.approx(2.5,
                                                               rel=0.01)

    def test_query2_dictionary_sizes(self):
        for distinct, expected_mib in ((10**6, 4), (10**7, 40),
                                       (10**8, 400)):
            profile = query2(distinct, 1000).profile(workers=22)
            assert profile.region("dictionary").total_bytes == (
                pytest.approx(expected_mib * MiB, rel=0.1)
            )

    def test_query3_bit_vector_sizes(self):
        assert query3(10**8).bit_vector_bytes() == 12_500_000

    def test_paper_sweep_constants(self):
        assert GROUP_SIZES == (100, 1000, 10000, 100000, 1000000)
        assert PRIMARY_KEY_SIZES == (10**6, 10**7, 10**8, 10**9)

    def test_functional_generation(self):
        generator = DataGenerator(1)
        data = query1().generate(generator, scale_rows=1000)
        assert len(data["X"]) == 1000
        values, groups = query3(10**6).generate(generator, 100, 500)
        assert len(values) == 100 and len(groups) == 500

    def test_generation_validation(self):
        with pytest.raises(WorkloadError):
            query1().generate(DataGenerator(1), 0)


class TestTpchCatalog:
    def test_all_22_queries_present(self):
        numbers = [query.number for query in all_queries()]
        assert numbers == list(range(1, 23))

    def test_lookup(self):
        assert tpch_query(7).number == 7
        with pytest.raises(WorkloadError):
            tpch_query(23)

    def test_q1_uses_extendedprice_dictionary(self):
        # Paper Sec. VI-D: L_EXTENDEDPRICE ~29 MiB dictionary.
        profile = tpch_query(1).profile(workers=22)
        price = profile.region("dict_l_extendedprice")
        assert price.total_bytes == 29 * MiB

    def test_sensitive_queries_decode_prices_heavily(self):
        """Q1/Q7/Q8/Q9 must probe the price dictionary at far higher
        rates than the other price-touching queries — the property
        behind Fig. 11's winners."""
        heavy = {1, 7, 8, 9}
        rates = {}
        for query in all_queries():
            for access in query.dict_accesses:
                if access.name == "dict_l_extendedprice":
                    rates[query.number] = access.accesses_per_tuple
        heavy_min = min(rates[n] for n in heavy)
        light_max = max(
            (rate for number, rate in rates.items()
             if number not in heavy),
            default=0.0,
        )
        assert heavy_min > 3 * light_max

    def test_profiles_build_for_all_queries(self):
        for query in all_queries():
            profile = query.profile(workers=22)
            assert profile.tuples > 0
            assert profile.streams

    def test_lineitem_scale(self):
        assert LINEITEM_ROWS == 600_000_000  # SF 100

    def test_validation(self):
        from repro.workloads.tpch import TpchQuery
        with pytest.raises(WorkloadError):
            TpchQuery(0, 100, 1.0)
        with pytest.raises(WorkloadError):
            TpchQuery(1, 0, 1.0)


class TestS4HanaCatalog:
    def test_acdoca_scale(self):
        catalog = acdoca_catalog()
        assert catalog["rows"] == ACDOCA_ROWS == 151_000_000
        assert catalog["columns"] == 336

    def test_13_column_query(self):
        config = oltp_query_13_columns()
        assert config.projected_columns == 13
        profile = config.profile()
        # 13 dictionary regions + the index region.
        assert len(profile.regions) == 14

    def test_6_column_query_smaller_working_set(self):
        large = oltp_query_13_columns().working_set_bytes
        small = oltp_query_6_columns().working_set_bytes
        assert small < large

    def test_column_sweep(self):
        sizes = [
            oltp_query_n_columns(n).working_set_bytes
            for n in range(2, 14)
        ]
        assert sizes == sorted(sizes)  # monotone in column count

    def test_column_sweep_validation(self):
        with pytest.raises(WorkloadError):
            oltp_query_n_columns(0)
        with pytest.raises(WorkloadError):
            oltp_query_n_columns(14)

    def test_functional_acdoca_point_query(self):
        table, data = build_functional_acdoca(rows=2000,
                                              payload_columns=3)
        from repro.operators.point_select import PointSelect
        key = int(data["K0"][17])
        select = PointSelect(
            table, ["C00", "C01"], {"K0": key}
        )
        result = select.execute()
        expected_rows = np.nonzero(data["K0"] == key)[0]
        assert np.array_equal(result["C00"], data["C00"][expected_rows])


class TestConcurrencyHarness:
    def test_isolated_baseline_cached(self, spec):
        from repro.workloads.mixed import ConcurrencyExperiment
        experiment = ConcurrencyExperiment(spec)
        profile = query1().profile()
        first = experiment.isolated_throughput(profile)
        second = experiment.isolated_throughput(profile)
        assert first == second

    def test_concurrent_requires_two(self, spec):
        from repro.workloads.mixed import (
            ConcurrencyExperiment,
            WorkloadQuery,
        )
        experiment = ConcurrencyExperiment(spec)
        with pytest.raises(WorkloadError):
            experiment.concurrent(
                [WorkloadQuery("one", query1().profile())]
            )

    def test_llc_sweep_normalized_to_full(self, spec):
        from repro.workloads.mixed import ConcurrencyExperiment
        experiment = ConcurrencyExperiment(spec)
        points = experiment.llc_sweep(
            query1().profile(), ways_list=[2, 20]
        )
        assert points[-1] == (1.0, pytest.approx(1.0))

    def test_llc_sweep_validates_ways(self, spec):
        from repro.workloads.mixed import ConcurrencyExperiment
        experiment = ConcurrencyExperiment(spec)
        with pytest.raises(WorkloadError):
            experiment.llc_sweep(query1().profile(), ways_list=[0])
