"""Tests for the order-preserving dictionary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.dictionary import OrderedDictionary


class TestConstruction:
    def test_from_values_dedups_and_sorts(self):
        dictionary = OrderedDictionary.from_values(
            np.array([5, 3, 5, 1, 3])
        )
        assert list(dictionary.values) == [1, 3, 5]
        assert dictionary.cardinality == 3

    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            OrderedDictionary.from_values(np.array([]))

    def test_rejects_unsorted_direct_construction(self):
        with pytest.raises(StorageError):
            OrderedDictionary(np.array([3, 1, 2]))

    def test_rejects_duplicates_direct_construction(self):
        with pytest.raises(StorageError):
            OrderedDictionary(np.array([1, 1, 2]))

    def test_size_bytes(self):
        dictionary = OrderedDictionary.from_values(
            np.arange(1000, dtype=np.int32)
        )
        assert dictionary.size_bytes == 4000


class TestEncodeDecode:
    def test_roundtrip(self):
        values = np.array([10, 30, 20, 10, 30])
        dictionary = OrderedDictionary.from_values(values)
        codes = dictionary.encode(values)
        assert np.array_equal(dictionary.decode(codes), values)

    def test_codes_are_dense(self):
        dictionary = OrderedDictionary.from_values(np.array([100, 5, 7]))
        codes = dictionary.encode(np.array([5, 7, 100]))
        assert list(codes) == [0, 1, 2]

    def test_encode_unknown_value_rejected(self):
        dictionary = OrderedDictionary.from_values(np.array([1, 2, 3]))
        with pytest.raises(StorageError):
            dictionary.encode(np.array([4]))

    def test_decode_out_of_range_rejected(self):
        dictionary = OrderedDictionary.from_values(np.array([1, 2]))
        with pytest.raises(StorageError):
            dictionary.decode(np.array([2]))


class TestRangeBounds:
    def test_lower_and_upper_bounds(self):
        dictionary = OrderedDictionary.from_values(
            np.array([10, 20, 30])
        )
        # X > 20 on codes: code >= upper_bound(20) = 2.
        assert dictionary.encode_upper_bound(20) == 2
        # X >= 20: code >= lower_bound(20) = 1.
        assert dictionary.encode_lower_bound(20) == 1
        # Bound between values.
        assert dictionary.encode_lower_bound(15) == 1
        assert dictionary.encode_upper_bound(15) == 1

    def test_bounds_outside_domain(self):
        dictionary = OrderedDictionary.from_values(np.array([10, 20]))
        assert dictionary.encode_lower_bound(5) == 0
        assert dictionary.encode_upper_bound(25) == 2


values_arrays = st.lists(
    st.integers(min_value=-(10**9), max_value=10**9),
    min_size=1, max_size=200,
).map(np.array)


class TestOrderPreservation:
    @given(values=values_arrays)
    @settings(max_examples=150, deadline=None)
    def test_encoding_preserves_order(self, values):
        """The property that lets scans run on compressed data: for any
        two values, value order == code order."""
        dictionary = OrderedDictionary.from_values(values)
        codes = dictionary.encode(values)
        order_by_value = np.argsort(values, kind="stable")
        order_by_code = np.argsort(codes, kind="stable")
        assert np.array_equal(
            values[order_by_value], values[order_by_code]
        )

    @given(values=values_arrays)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, values):
        dictionary = OrderedDictionary.from_values(values)
        assert np.array_equal(
            dictionary.decode(dictionary.encode(values)), values
        )

    @given(values=values_arrays, bound=st.integers(-(10**9), 10**9))
    @settings(max_examples=150, deadline=None)
    def test_range_predicate_on_codes_matches_values(self, values, bound):
        """Evaluating X > bound on codes equals evaluating it on values
        (paper Sec. IV-A: scans run entirely on compressed data)."""
        dictionary = OrderedDictionary.from_values(values)
        codes = dictionary.encode(values)
        threshold = dictionary.encode_upper_bound(bound)
        assert np.array_equal(codes >= threshold, values > bound)
