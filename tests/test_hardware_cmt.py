"""Tests for the Cache Monitoring Technology model."""

import pytest

from repro.config import CacheSpec
from repro.errors import CatError
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cmt import CmtController, CmtSample


class TestRmids:
    def test_assignment_idempotent(self):
        cmt = CmtController(num_rmids=4)
        first = cmt.assign_rmid(100)
        second = cmt.assign_rmid(100)
        assert first == second

    def test_distinct_threads_distinct_rmids(self):
        cmt = CmtController(num_rmids=4)
        assert cmt.assign_rmid(1) != cmt.assign_rmid(2)

    def test_default_rmid_zero(self):
        cmt = CmtController()
        assert cmt.rmid_of(999) == 0

    def test_exhaustion(self):
        cmt = CmtController(num_rmids=2)  # RMID 0 reserved
        cmt.assign_rmid(1)
        with pytest.raises(CatError):
            cmt.assign_rmid(2)

    def test_release_recycles(self):
        cmt = CmtController(num_rmids=2)
        rmid = cmt.assign_rmid(1)
        cmt.release_rmid(1)
        assert cmt.assign_rmid(2) == rmid

    def test_invalid_config(self):
        with pytest.raises(CatError):
            CmtController(num_rmids=0)


class TestOccupancyReadout:
    def test_reads_stream_occupancy(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cmt = CmtController()
        cmt.assign_rmid(55)
        cache.access(0x0, stream="q")
        cache.access(0x40, stream="q")
        cache.access(0x40, stream="q")  # one hit
        sample = cmt.read_occupancy(cache, "q", 55)
        assert sample.llc_occupancy_bytes == 2 * 64
        assert sample.llc_references == 3
        assert sample.llc_misses == 2
        assert sample.miss_ratio == pytest.approx(2 / 3)

    def test_unknown_stream_reads_zero(self, tiny_cache_spec):
        cache = SetAssociativeCache(tiny_cache_spec)
        cmt = CmtController()
        sample = cmt.read_occupancy(cache, "ghost", 1)
        assert sample.llc_occupancy_bytes == 0
        assert sample.miss_ratio == 0.0


class TestSample:
    def test_miss_ratio_guard(self):
        assert CmtSample(1, 0, 0, 0).miss_ratio == 0.0
