"""Tests for the DRAM model and bandwidth arbiter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramSpec
from repro.errors import ModelError
from repro.hardware.dram import BandwidthArbiter, DramModel
from repro.units import GB


class TestDramModel:
    def test_transfer_time_at_peak(self):
        model = DramModel(DramSpec())
        assert model.transfer_time(64 * GB) == pytest.approx(1.0)

    def test_transfer_time_custom_bandwidth(self):
        model = DramModel(DramSpec())
        assert model.transfer_time(10 * GB, 10 * GB) == pytest.approx(1.0)

    def test_rejects_negative_bytes(self):
        model = DramModel(DramSpec())
        with pytest.raises(ModelError):
            model.transfer_time(-1)

    def test_latency_from_spec(self):
        model = DramModel(DramSpec())
        assert model.latency_s == pytest.approx(80e-9)


class TestArbiterBasics:
    def test_undersubscribed_everyone_satisfied(self):
        arbiter = BandwidthArbiter(64 * GB)
        grants = arbiter.allocate({"a": 10 * GB, "b": 20 * GB})
        assert grants["a"] == pytest.approx(10 * GB)
        assert grants["b"] == pytest.approx(20 * GB)

    def test_two_saturating_streams_split_equally(self):
        arbiter = BandwidthArbiter(64 * GB)
        grants = arbiter.allocate({"a": 100 * GB, "b": 100 * GB})
        assert grants["a"] == pytest.approx(32 * GB)
        assert grants["b"] == pytest.approx(32 * GB)

    def test_light_stream_protected(self):
        # Max-min fairness: the 5 GB/s stream is untouched; the hogs
        # split the rest.
        arbiter = BandwidthArbiter(64 * GB)
        grants = arbiter.allocate(
            {"light": 5 * GB, "hog1": 100 * GB, "hog2": 100 * GB}
        )
        assert grants["light"] == pytest.approx(5 * GB)
        assert grants["hog1"] == pytest.approx(29.5 * GB)
        assert grants["hog2"] == pytest.approx(29.5 * GB)

    def test_slowdown_factors(self):
        arbiter = BandwidthArbiter(64 * GB)
        slowdowns = arbiter.slowdown({"a": 128 * GB, "b": 0.0})
        assert slowdowns["a"] == pytest.approx(2.0)
        assert slowdowns["b"] == 1.0

    def test_rejects_negative_demand(self):
        arbiter = BandwidthArbiter(64 * GB)
        with pytest.raises(ModelError):
            arbiter.allocate({"a": -1.0})

    def test_rejects_zero_capacity(self):
        with pytest.raises(ModelError):
            BandwidthArbiter(0)

    def test_empty_demands(self):
        arbiter = BandwidthArbiter(64 * GB)
        assert arbiter.allocate({}) == {}


demand_dicts = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d", "e"]),
    values=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    min_size=1,
    max_size=5,
)


class TestArbiterProperties:
    @given(demands=demand_dicts)
    @settings(max_examples=200, deadline=None)
    def test_grants_bounded_by_demand_and_capacity(self, demands):
        capacity = 64e9
        grants = BandwidthArbiter(capacity).allocate(demands)
        for name, grant in grants.items():
            assert grant <= demands[name] + 1e-3
        assert sum(grants.values()) <= capacity * (1 + 1e-9)

    @given(demands=demand_dicts)
    @settings(max_examples=200, deadline=None)
    def test_work_conserving(self, demands):
        capacity = 64e9
        grants = BandwidthArbiter(capacity).allocate(demands)
        total_demand = sum(demands.values())
        total_grant = sum(grants.values())
        expected = min(total_demand, capacity)
        assert total_grant == pytest.approx(expected, rel=1e-6, abs=1.0)

    @given(demands=demand_dicts)
    @settings(max_examples=200, deadline=None)
    def test_max_min_fairness(self, demands):
        """No unsatisfied requester may hold less than a satisfied
        requester demands: that would contradict max-min fairness."""
        capacity = 64e9
        grants = BandwidthArbiter(capacity).allocate(demands)
        unsatisfied = [
            grants[n] for n in demands if grants[n] < demands[n] - 1e-3
        ]
        if not unsatisfied:
            return
        smallest_unsatisfied = min(unsatisfied)
        for name in demands:
            # Every requester receives at least min(demand, the smallest
            # unsatisfied grant) up to numerical noise.
            entitled = min(demands[name], smallest_unsatisfied)
            assert grants[name] >= entitled - 1e-3
