"""Tests for the CPU socket model."""

import pytest

from repro.config import SystemSpec
from repro.errors import ConfigError
from repro.hardware.cpu import Core, CpuSocket


class TestCore:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Core(-1)
        with pytest.raises(ConfigError):
            Core(0, smt_threads=0)


class TestCpuSocket:
    def test_creates_all_cores(self, spec):
        socket = CpuSocket(spec)
        assert len(socket.cores) == 22
        assert socket.cores[21].core_id == 21

    def test_shared_cat_controller(self, spec):
        socket = CpuSocket(spec)
        socket.cat.set_clos_mask(1, 0x3)
        socket.cat.assign_core(5, 1)
        assert socket.cat.core_mask(5) == 0x3

    def test_split_cores_covers_everything(self, spec):
        socket = CpuSocket(spec)
        groups = socket.split_cores(2)
        all_cores = sorted(core for group in groups for core in group)
        assert all_cores == list(range(22))
        assert abs(len(groups[0]) - len(groups[1])) <= 1

    def test_split_cores_single_group(self, spec):
        socket = CpuSocket(spec)
        assert socket.split_cores(1) == [list(range(22))]

    def test_split_validation(self, spec):
        socket = CpuSocket(spec)
        with pytest.raises(ConfigError):
            socket.split_cores(0)
        with pytest.raises(ConfigError):
            socket.split_cores(23)


class TestDeterminism:
    def test_figure_results_are_deterministic(self):
        """The whole reproduction is seeded/analytic: two runs of a
        figure must produce byte-identical rows."""
        from repro.experiments import fig09_scan_agg
        first = fig09_scan_agg.run(fast=True)
        second = fig09_scan_agg.run(fast=True)
        assert first.rows == second.rows

    def test_trace_experiment_deterministic(self):
        from repro.experiments import ext_trace_validation
        first = ext_trace_validation.run(fast=True)
        second = ext_trace_validation.run(fast=True)
        assert first.rows == second.rows
