"""Tests for the simulation clocks."""

import pytest

from repro.errors import ServeError
from repro.serve.clock import SimulatedClock, TickingClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance_to(1.5) == 1.5
        assert clock.now == 1.5
        # Advancing to the same instant is allowed (simultaneous
        # events share a timestamp).
        assert clock.advance_to(1.5) == 1.5

    def test_refuses_to_run_backwards(self):
        clock = SimulatedClock(start=2.0)
        with pytest.raises(ServeError):
            clock.advance_to(1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ServeError):
            SimulatedClock(start=-1.0)

    def test_callable_matches_now(self):
        clock = SimulatedClock()
        clock.advance_to(3.25)
        # Reading never advances: the event loop owns time.
        assert clock() == clock() == 3.25


class TestTickingClock:
    def test_advances_per_reading(self):
        clock = TickingClock(step=0.5)
        assert (clock(), clock(), clock()) == (0.0, 0.5, 1.0)

    def test_custom_start(self):
        clock = TickingClock(step=1.0, start=10.0)
        assert clock() == 10.0
        assert clock() == 11.0

    def test_validation(self):
        with pytest.raises(ServeError):
            TickingClock(step=0.0)
        with pytest.raises(ServeError):
            TickingClock(step=1.0, start=-0.1)
