"""Sequential-vs-parallel fleet equivalence (epoch-parallel engine).

The contract: under the stateless ``hash`` router, ``run(fleet_jobs=N)``
produces a fleet report **byte-identical** to the sequential merged-heap
loop for any N — same JSON, same node counters, same histograms — with
or without faults, sampling, or an adaptive controller.  Stateful
routers degrade gracefully to the sequential path and say so in the
report's ``execution`` block.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultSpec,
    epoch_index_for,
    expand_schedule,
    plan_fleet,
    split_epochs,
)
from repro.errors import ClusterError

FAULTS = (FaultSpec(1, 1.0, 2.0), FaultSpec(2, 1.5, None))


def _config(**overrides) -> ClusterConfig:
    defaults = dict(
        nodes=4, router="hash", policy="none", duration_s=3.0,
        rate_per_s=6.0, seed=7,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _json(fleet_jobs=1, **overrides) -> str:
    cluster = Cluster(_config(**overrides))
    return cluster.run(fleet_jobs=fleet_jobs).to_json()


class TestJobsEquivalence:
    @pytest.mark.parametrize(
        "profile", ["poisson", "bursty", "diurnal"]
    )
    def test_profiles_byte_identical_across_jobs(self, profile):
        sequential = _json(1, profile=profile)
        for jobs in (2, 4):
            assert _json(jobs, profile=profile) == sequential

    def test_fault_schedule_byte_identical(self):
        # Mid-run kill + recover plus an unrecovered kill: the
        # parallel path must reproduce failovers, shed accounting,
        # downtime closure and the fault log exactly.
        sequential = _json(1, faults=FAULTS, rate_per_s=8.0)
        assert _json(4, faults=FAULTS, rate_per_s=8.0) == sequential
        payload = json.loads(sequential)
        # kill@1.0, recover@2.0, kill@1.5 -> three boundaries.
        assert payload["execution"]["epochs"] == 4

    def test_adaptive_policy_byte_identical(self):
        # Controllers run full analysis sweeps inside forked workers
        # (each installs a sequential parallel context); results must
        # still match the in-process run bit-for-bit.
        sequential = _json(1, policy="adaptive", nodes=2)
        assert _json(2, policy="adaptive", nodes=2) == sequential

    def test_sampled_run_byte_identical(self):
        kwargs = dict(
            duration_s=6.0, sample_window_s=1.0, sample_period=3,
        )
        assert _json(4, **kwargs) == _json(1, **kwargs)

    def test_excess_jobs_clamp_to_fleet_size(self):
        assert _json(16, nodes=2) == _json(1, nodes=2)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ClusterError):
            Cluster(_config()).run(fleet_jobs=0)


class TestSeedSweep:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_any_seed_byte_identical(self, seed):
        kwargs = dict(
            nodes=3, duration_s=2.0, rate_per_s=5.0, seed=seed,
        )
        assert _json(3, **kwargs) == _json(1, **kwargs)


class TestEpochSplitting:
    def test_boundary_fault_opens_exactly_one_epoch(self):
        events = expand_schedule((FaultSpec(1, 1.0, 2.0),))
        epochs = split_epochs(events, nodes=3)
        assert [e.start_s for e in epochs] == [0.0, 1.0, 2.0]
        # Each fault event belongs to exactly one epoch.
        placed = [ev for epoch in epochs for ev in epoch.events]
        assert placed == list(events)
        assert epochs[0].alive == frozenset({0, 1, 2})
        assert epochs[1].alive == frozenset({0, 2})
        assert epochs[2].alive == frozenset({0, 1, 2})

    def test_simultaneous_events_share_one_epoch(self):
        events = expand_schedule((
            FaultSpec(0, 1.0, 2.0), FaultSpec(1, 1.0, 2.0),
        ))
        epochs = split_epochs(events, nodes=3)
        assert [e.start_s for e in epochs] == [0.0, 1.0, 2.0]
        assert len(epochs[1].events) == 2  # both kills at t=1.0
        assert epochs[1].alive == frozenset({2})
        assert len(epochs[2].events) == 2  # both recoveries
        assert epochs[2].alive == frozenset({0, 1, 2})

    def test_boundary_arrival_lands_post_fault(self):
        # The heap orders lane 0 (faults) before lane 2 (arrivals) at
        # equal times, so an arrival exactly at a boundary belongs to
        # the post-fault epoch.
        events = expand_schedule((FaultSpec(0, 1.0, 2.0),))
        epochs = split_epochs(events, nodes=2)
        assert epoch_index_for(epochs, 0.999999) == 0
        assert epoch_index_for(epochs, 1.0) == 1
        assert epoch_index_for(epochs, 1.5) == 1
        assert epoch_index_for(epochs, 2.0) == 2
        assert epoch_index_for(epochs, 99.0) == 2

    def test_empty_schedule_is_one_epoch(self):
        epochs = split_epochs((), nodes=4)
        assert len(epochs) == 1
        assert epochs[0].start_s == 0.0
        assert epochs[0].alive == frozenset(range(4))


class TestPlanConsistency:
    def test_plan_counters_match_sequential_report(self):
        config = _config(faults=FAULTS, rate_per_s=8.0)
        planned = Cluster(config)
        plan = plan_fleet(
            config, planned._sources, planned._fault_events,
            planned.router,
        )
        report = Cluster(config).run()
        assert plan.generated == report.generated
        assert plan.forwarded == report.forwarded
        assert plan.failovers == report.failovers
        assert plan.shed_no_node == report.shed_no_node
        for index, stats in enumerate(report.node_stats):
            assert plan.routed_in[index] == stats["routed_in"]
            assert plan.sourced[index] == stats["sourced"]

    def test_plan_rejects_stateful_router(self):
        config = _config(router="least-loaded")
        cluster = Cluster(config)
        with pytest.raises(ClusterError):
            plan_fleet(
                config, cluster._sources, cluster._fault_events,
                cluster.router,
            )


class TestStatefulFallback:
    @pytest.mark.parametrize("router", ["least-loaded", "affinity"])
    def test_fallback_records_warning(self, router):
        report = Cluster(_config(router=router)).run(fleet_jobs=4)
        warnings = report.execution["warnings"]
        assert len(warnings) == 1
        assert "fleet_jobs=4" in warnings[0]
        assert router in warnings[0]
        assert "ran sequentially" in warnings[0]
        assert report.generated > 0  # the run still completed

    def test_hash_parallel_report_has_no_warnings(self):
        report = Cluster(_config()).run(fleet_jobs=4)
        assert report.execution["warnings"] == []

    def test_single_node_fleet_stays_sequential(self):
        # Nothing to fan out; no warning either (not a degradation).
        report = Cluster(_config(nodes=1)).run(fleet_jobs=4)
        assert report.execution["warnings"] == []
