"""Acceptance tests: every reproduced figure must show the paper's shape.

These are the repository's contract: who wins, by roughly what factor,
and where crossovers fall — checked per figure against the claims in
the paper's text (absolute numbers are simulator-dependent and are
*not* asserted).

The experiments run in ``fast`` mode where sweeps allow it; results are
cached per session because several figures share expensive workloads.
"""

import pytest

from repro.experiments import (
    fig01_teaser,
    fig04_scan,
    fig05_aggregation,
    fig06_join,
    fig09_scan_agg,
    fig10_agg_join,
    fig11_tpch,
    fig12_oltp,
)


@pytest.fixture(scope="module")
def fig4():
    return fig04_scan.run()


@pytest.fixture(scope="module")
def fig5():
    return fig05_aggregation.run()


@pytest.fixture(scope="module")
def fig6():
    return fig06_join.run()


@pytest.fixture(scope="module")
def fig9():
    return fig09_scan_agg.run()


@pytest.fixture(scope="module")
def fig10():
    return fig10_agg_join.run()


@pytest.fixture(scope="module")
def fig11():
    return fig11_tpch.run()


@pytest.fixture(scope="module")
def fig12():
    return fig12_oltp.run()


class TestFig1Teaser:
    def test_partitioning_recovers_oltp_throughput(self):
        result = fig01_teaser.run()
        by_config = {row[0]: row[2] for row in result.rows}
        assert by_config["isolated"] == pytest.approx(1.0)
        assert by_config["concurrent"] < 0.85
        assert by_config["concurrent_partitioned"] > (
            by_config["concurrent"] + 0.05
        )


class TestFig4Scan:
    def test_scan_insensitive_to_cache_size(self, fig4):
        """Sec. IV-A: throughput unaffected from 55 down to 5.5 MiB."""
        for normalized in fig4.column("normalized_throughput"):
            assert normalized == pytest.approx(1.0, abs=0.02)

    def test_scan_llc_hit_ratio_below_paper_bound(self, fig4):
        """Sec. IV-A: LLC hit ratio below 0.08."""
        for hit_ratio in fig4.column("llc_hit_ratio"):
            assert hit_ratio < 0.08

    def test_scan_mpi_matches_paper(self, fig4):
        """Sec. IV-A: ~1.9e-2 misses per instruction."""
        for mpi in fig4.column("mpi"):
            assert mpi == pytest.approx(1.9e-2, rel=0.1)

    def test_single_way_mask_note(self, fig4):
        """Sec. V-B: mask 0x1 degrades even the scan severely."""
        assert any("0x1" in note for note in fig4.notes)


class TestFig5Aggregation:
    def _sweep(self, fig5, panel, groups):
        rows = fig5.select(panel=panel, groups=groups)
        return {row[4]: row[5] for row in rows}  # ways -> normalized

    def test_small_dict_small_groups_degrade_at_small_cache(self, fig5):
        """Fig. 5a: >46 % loss at ~5 MiB for 10^2..10^4 groups."""
        for groups in (100, 1000, 10000):
            sweep = self._sweep(fig5, "5a", groups)
            assert sweep[2] < 0.54
            # ...but the curve is safe at large allocations.
            assert sweep[18] > 0.9

    def test_1e5_groups_most_sensitive_in_5a(self, fig5):
        """Fig. 5a: the 10^5-group curve breaks earliest/strongest."""
        sensitive = self._sweep(fig5, "5a", 100000)
        small = self._sweep(fig5, "5a", 100)
        assert sensitive[2] < small[2]
        # Breaks below 40 MiB (14 ways): already degraded there.
        assert sensitive[14] < 0.9

    def test_40mib_dict_degrades_steadily_for_all_groups(self, fig5):
        """Fig. 5b: degradation even at large allocations, up to 62 %."""
        for groups in (100, 1000, 10000, 100000):
            sweep = self._sweep(fig5, "5b", groups)
            assert sweep[16] < 0.95  # steady degradation
            assert sweep[2] < 0.55   # strong loss at 5.5 MiB

    def test_40mib_dict_1e6_groups_degrade_less(self, fig5):
        """Fig. 5b: the 10^6-group curve loses least (paper: 34 %)."""
        big_groups = self._sweep(fig5, "5b", 1000000)
        small_groups = self._sweep(fig5, "5b", 100)
        assert big_groups[2] > small_groups[2]

    def test_400mib_dict_less_sensitive_than_40mib(self, fig5):
        """Fig. 5c vs 5b: compulsory misses flatten the curves."""
        for groups in (100, 1000000):
            panel_c = self._sweep(fig5, "5c", groups)
            panel_b = self._sweep(fig5, "5b", groups)
            assert panel_c[2] > panel_b[2]

    def test_monotone_in_cache_size(self, fig5):
        """More cache never hurts an isolated aggregation."""
        for panel in ("5a", "5b", "5c"):
            for groups in (100, 100000, 1000000):
                sweep = self._sweep(fig5, panel, groups)
                ways = sorted(sweep)
                values = [sweep[w] for w in ways]
                assert all(
                    b >= a - 0.01 for a, b in zip(values, values[1:])
                )


class TestFig6Join:
    def _sweep(self, fig6, pk):
        rows = fig6.select(primary_keys=pk)
        return {row[3]: row[4] for row in rows}

    def test_1e8_keys_most_sensitive(self, fig6):
        """Fig. 6: only the 12.5 MB bit vector is LLC-sensitive."""
        sensitive = self._sweep(fig6, 10**8)
        assert sensitive[2] < 0.85
        for pk in (10**6, 10**7):
            assert self._sweep(fig6, pk)[2] > 0.95

    def test_1e9_keys_mildly_sensitive(self, fig6):
        """Fig. 6: 10^9 keys degrade only ~5-15 % (compulsory misses,
        software-blocked probing)."""
        sweep = self._sweep(fig6, 10**9)
        assert 0.70 <= sweep[2] <= 0.95

    def test_1e8_break_point_location(self, fig6):
        """Paper Sec. VI-C: the 10^8 join degrades below ~35 MiB."""
        sweep = self._sweep(fig6, 10**8)
        assert sweep[14] > 0.95  # 38.5 MiB: safe
        assert sweep[4] < 0.95   # 11 MiB: degraded


class TestFig9ScanAggregation:
    def _row(self, fig9, panel, groups, partitioning):
        rows = fig9.select(panel=panel, groups=groups,
                           partitioning=partitioning)
        assert len(rows) == 1
        return rows[0]

    def test_pollution_hurts_sensitive_aggregations(self, fig9):
        """Unpartitioned 40 MiB dictionary: aggregation below ~65 %."""
        for groups in (100, 1000, 10000, 100000):
            row = self._row(fig9, "9b", groups, "off")
            assert row[5] < 0.65

    def test_partitioning_recovers_aggregation(self, fig9):
        """Fig. 9b: partitioning improves the aggregation by double
        digits without hurting the scan."""
        for groups in (100, 10000, 100000):
            off = self._row(fig9, "9b", groups, "off")
            on = self._row(fig9, "9b", groups, "on")
            assert on[5] > off[5] + 0.10      # aggregation gain
            assert on[4] >= off[4] - 0.02     # scan never regresses

    def test_no_regression_anywhere(self, fig9):
        """The paper's headline claim: partitioning may improve but
        never degrades (within noise)."""
        for panel in ("9a", "9b", "9c"):
            for groups in (100, 1000, 10000, 100000, 1000000):
                off = self._row(fig9, panel, groups, "off")
                on = self._row(fig9, panel, groups, "on")
                assert on[4] >= off[4] - 0.02
                assert on[5] >= off[5] - 0.02

    def test_9a_strongest_gain_at_1e5_groups(self, fig9):
        """Fig. 9a: the LLC-sized hash table profits most."""
        gains = {}
        for groups in (100, 10000, 100000):
            off = self._row(fig9, "9a", groups, "off")
            on = self._row(fig9, "9a", groups, "on")
            gains[groups] = on[5] - off[5]
        assert gains[100000] > gains[100]
        assert gains[100000] > gains[10000]

    def test_9c_bandwidth_bound_gains_smaller_than_9b(self, fig9):
        """Fig. 9c: with a 400 MiB dictionary both queries fight for
        bandwidth; partitioning helps less than in 9b."""
        gain_b = (
            self._row(fig9, "9b", 1000, "on")[5]
            - self._row(fig9, "9b", 1000, "off")[5]
        )
        gain_c = (
            self._row(fig9, "9c", 1000, "on")[5]
            - self._row(fig9, "9c", 1000, "off")[5]
        )
        assert gain_c < gain_b

    def test_counters_improve_with_partitioning(self, fig9):
        """Sec. VI-B: hit ratio rises and MPI falls when partitioned."""
        off = self._row(fig9, "9a", 100000, "off")
        on = self._row(fig9, "9a", 100000, "on")
        assert on[6] > off[6]  # system LLC hit ratio
        assert on[7] < off[7]  # system MPI


class TestFig10AggregationJoin:
    def _row(self, fig10, panel, groups, scheme):
        rows = fig10.select(panel=panel, groups=groups, scheme=scheme)
        assert len(rows) == 1
        return rows[0]

    def test_small_vector_join_restriction_is_free(self, fig10):
        """Fig. 10a: restricting the 125 KB-vector join to 10 % helps
        the aggregation and never hurts the join."""
        for groups in (1000, 100000):
            off = self._row(fig10, "10a", groups, "off")
            restricted = self._row(fig10, "10a", groups, "join_10pct")
            assert restricted[4] > off[4] + 0.03   # aggregation gains
            assert restricted[5] >= off[5] - 0.02  # join unharmed

    def test_llc_sized_vector_regresses_under_10pct(self, fig10):
        """Fig. 10b: the 12.5 MB-vector join loses double digits when
        squeezed into 10 % — the paper's counter-example."""
        for groups in (1000, 100000):
            off = self._row(fig10, "10b", groups, "off")
            restricted = self._row(fig10, "10b", groups, "join_10pct")
            assert restricted[5] < off[5] - 0.10

    def test_60pct_scheme_fixes_the_regression(self, fig10):
        """Fig. 10b: 60 % keeps the join whole (±~3 %) while the
        aggregation still gains a little."""
        for groups in (1000, 100000):
            off = self._row(fig10, "10b", groups, "off")
            scheme60 = self._row(fig10, "10b", groups, "join_60pct")
            assert scheme60[5] >= off[5] - 0.08
            assert scheme60[4] >= off[4] - 0.01

    def test_combined_throughput_verdict(self, fig10):
        """Paper Sec. VI-C: with 10^8 keys the 10 % scheme loses more
        than it gains; the 60 % scheme is a net win (or neutral)."""
        off = self._row(fig10, "10b", 1000, "off")
        restricted = self._row(fig10, "10b", 1000, "join_10pct")
        scheme60 = self._row(fig10, "10b", 1000, "join_60pct")
        assert (restricted[4] + restricted[5]) < (off[4] + off[5])
        assert (scheme60[4] + scheme60[5]) >= (off[4] + off[5]) - 0.02

    def test_counters_improve_in_10a(self, fig10):
        """Sec. VI-C: hit ratio 0.55 -> 0.67-style improvement."""
        off = self._row(fig10, "10a", 1000, "off")
        restricted = self._row(fig10, "10a", 1000, "join_10pct")
        assert restricted[6] > off[6]
        assert restricted[7] <= off[7] + 1e-9


class TestFig11Tpch:
    def test_off_degradation_band(self, fig11):
        """Sec. VI-D: TPC-H queries degrade to ~74-93 % unpartitioned."""
        for row in fig11.rows:
            if row[1] == "off":
                assert 0.60 <= row[2] <= 0.97

    def test_winners_are_q1_q7_q8_q9(self, fig11):
        """Sec. VI-D: Q1, Q7, Q8 and Q9 profit most from partitioning
        (their plans decode the 29 MiB price dictionary)."""
        gains = fig11_tpch.improvements(fig11)
        ranked = sorted(gains, key=gains.get, reverse=True)
        assert set(ranked[:4]) == {
            "TPCH_Q01", "TPCH_Q07", "TPCH_Q08", "TPCH_Q09"
        }

    def test_no_tpch_regressions(self, fig11):
        gains = fig11_tpch.improvements(fig11)
        assert all(gain >= -0.02 for gain in gains.values())

    def test_scan_sometimes_improves_too(self, fig11):
        """Sec. VI-D: the co-running scan gains up to ~5 % when the
        partitioned co-runner stops stealing bandwidth."""
        improvements = []
        for row in fig11.rows:
            name, label, _, scan_norm = row
            if label == "off":
                improvements.append((name, -scan_norm))
        off_values = dict(improvements)
        best_gain = 0.0
        for row in fig11.rows:
            if row[1] == "on":
                best_gain = max(best_gain, row[3] + off_values[row[0]])
        assert best_gain > 0.02


class TestFig12Oltp:
    def _row(self, fig12, panel, partitioning):
        rows = fig12.select(panel=panel, partitioning=partitioning)
        assert len(rows) == 1
        return rows[0]

    def test_oltp_degrades_significantly(self, fig12):
        """Sec. VI-E: OLTP drops to ~66 % / ~68 %; the scan barely
        notices (>= 95 %)."""
        for panel in ("12a", "12b"):
            off = self._row(fig12, panel, "off")
            assert off[3] < 0.85
            assert off[4] > 0.93

    def test_partitioning_gains(self, fig12):
        """Sec. VI-E: +13 % (13 columns) and +9 % (6 columns); the
        13-column variant gains more."""
        gain_13 = (
            self._row(fig12, "12a", "on")[3]
            - self._row(fig12, "12a", "off")[3]
        )
        gain_6 = (
            self._row(fig12, "12b", "on")[3]
            - self._row(fig12, "12b", "off")[3]
        )
        assert gain_13 > 0.05
        assert gain_6 > 0.02
        assert gain_13 > gain_6

    def test_column_sweep_monotone(self, fig12):
        """Sec. VI-E additional experiment: more projected columns ->
        more degradation and larger partitioning gains (8-13 %)."""
        offs = {}
        gains = {}
        for row in fig12.rows:
            panel, columns, label, oltp_norm, _ = row
            if panel != "sweep":
                continue
            if label == "off":
                offs[columns] = oltp_norm
            else:
                gains[columns] = oltp_norm
        columns_sorted = sorted(offs)
        off_values = [offs[c] for c in columns_sorted]
        assert off_values == sorted(off_values, reverse=True)
        for columns in columns_sorted:
            assert gains[columns] - offs[columns] > 0.02
