"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    Comparison,
    CountStar,
    CreateTable,
    Literal,
    Parameter,
    Select,
)
from repro.sql.parser import parse


class TestPaperQueries:
    def test_query1(self):
        statement = parse("SELECT COUNT(*) FROM A WHERE A.X > ?;")
        assert isinstance(statement, Select)
        assert statement.items == (CountStar(),)
        assert statement.tables == ("A",)
        predicate = statement.where[0]
        assert predicate.left == ColumnRef("X", table="A")
        assert predicate.op == ">"
        assert predicate.right == Parameter(0)

    def test_query2(self):
        statement = parse("SELECT MAX(B.V), B.G FROM B GROUP BY B.G;")
        assert statement.items == (
            Aggregate("MAX", ColumnRef("V", "B")),
            ColumnRef("G", "B"),
        )
        assert statement.group_by == (ColumnRef("G", "B"),)

    def test_query3(self):
        statement = parse("SELECT COUNT(*) FROM R, S WHERE R.P = S.F;")
        assert statement.tables == ("R", "S")
        assert statement.where[0] == Comparison(
            ColumnRef("P", "R"), "=", ColumnRef("F", "S")
        )

    def test_create_table_simple(self):
        statement = parse("CREATE COLUMN TABLE A( X INT );")
        assert isinstance(statement, CreateTable)
        assert statement.name == "A"
        assert statement.columns[0].name == "X"
        assert statement.primary_key is None

    def test_create_table_with_pk_clause(self):
        statement = parse(
            "CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));"
        )
        assert statement.primary_key == "P"

    def test_create_table_inline_pk(self):
        statement = parse("CREATE COLUMN TABLE R( P INT PRIMARY KEY )")
        assert statement.primary_key == "P"


class TestGeneralShapes:
    def test_point_select_with_params(self):
        statement = parse(
            "SELECT C1, C2 FROM T WHERE K1 = ? AND K2 = ?"
        )
        assert statement.items == (ColumnRef("C1"), ColumnRef("C2"))
        assert len(statement.where) == 2
        assert statement.where[0].right == Parameter(0)
        assert statement.where[1].right == Parameter(1)

    def test_literal_predicate(self):
        statement = parse("SELECT COUNT(*) FROM A WHERE X > 100")
        assert statement.where[0].right == Literal(100)

    def test_float_literal(self):
        statement = parse("SELECT COUNT(*) FROM A WHERE X > 1.5")
        assert statement.where[0].right == Literal(1.5)

    def test_unqualified_columns(self):
        statement = parse("SELECT MAX(V), G FROM B GROUP BY G")
        assert statement.items[0] == Aggregate("MAX", ColumnRef("V"))

    def test_semicolon_optional(self):
        assert parse("SELECT COUNT(*) FROM A WHERE X > 1") is not None


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "DELETE FROM A",
        "SELECT",
        "SELECT COUNT(* FROM A",
        "SELECT COUNT(*) FROM",
        "SELECT COUNT(*) FROM A WHERE",
        "SELECT COUNT(*) FROM A WHERE X >",
        "SELECT COUNT(*) FROM A trailing",
        "CREATE COLUMN TABLE",
        "CREATE COLUMN TABLE T ()",
        "CREATE COLUMN TABLE T ( X BLOB )",
        "CREATE TABLE T ( X INT )",
        "SELECT COUNT(*) FROM A WHERE X LIKE 1",
    ])
    def test_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse(bad)

    def test_duplicate_pk_clause_rejected(self):
        with pytest.raises(SqlParseError):
            parse(
                "CREATE COLUMN TABLE T ( A INT, PRIMARY KEY(A), "
                "PRIMARY KEY(A) )"
            )

    def test_pk_unknown_column_rejected(self):
        with pytest.raises(SqlParseError):
            parse("CREATE COLUMN TABLE T ( A INT, PRIMARY KEY(B) )")
