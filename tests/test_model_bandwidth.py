"""Tests for the model-level bandwidth accounting."""

import pytest

from repro.errors import ModelError
from repro.model.bandwidth import BandwidthUsage, solve_bandwidth
from repro.units import GB


class TestBandwidthUsage:
    def test_total(self):
        usage = BandwidthUsage("q", 10.0, 5.0)
        assert usage.total == 15.0

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            BandwidthUsage("q", -1.0, 0.0)


class TestSolveBandwidth:
    def test_unsaturated(self):
        solution = solve_bandwidth(
            [BandwidthUsage("a", 10 * GB, 0),
             BandwidthUsage("b", 0, 20 * GB)],
            64 * GB,
        )
        assert not solution.saturated
        assert solution.slowdowns == {"a": 1.0, "b": 1.0}

    def test_saturated_equal_split(self):
        solution = solve_bandwidth(
            [BandwidthUsage("a", 100 * GB, 0),
             BandwidthUsage("b", 100 * GB, 0)],
            64 * GB,
        )
        assert solution.saturated
        assert solution.grants["a"] == pytest.approx(32 * GB)
        assert solution.slowdowns["a"] == pytest.approx(100 / 32)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            solve_bandwidth(
                [BandwidthUsage("a", 1, 0), BandwidthUsage("a", 1, 0)],
                64 * GB,
            )

    def test_total_demand_reported(self):
        solution = solve_bandwidth(
            [BandwidthUsage("a", 1 * GB, 2 * GB)], 64 * GB
        )
        assert solution.total_demand == pytest.approx(3 * GB)
