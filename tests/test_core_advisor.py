"""Tests for the sensitivity advisor (Sec. IV -> Sec. V-B automation)."""

import pytest

from repro.core.advisor import (
    CacheSensitivity,
    analyze_sweep,
    derive_policy,
)
from repro.errors import WorkloadError


def flat_sweep():
    """A scan-like sweep: throughput independent of the cache."""
    return [(w / 20, 1.0) for w in range(2, 21, 2)]


def sensitive_sweep():
    """An aggregation-like sweep: throughput tracks cache size."""
    return [(w / 20, 0.35 + 0.65 * (w / 20)) for w in range(2, 21, 2)]


def partial_sweep():
    """A join-like sweep: safe above ~60 %, degrading below."""
    points = []
    for w in range(2, 21, 2):
        fraction = w / 20
        throughput = 1.0 if fraction >= 0.6 else 0.5 + 0.8 * fraction
        points.append((fraction, min(1.0, throughput)))
    return points


class TestAnalyzeSweep:
    def test_flat_curve_is_insensitive(self):
        report = analyze_sweep("scan", flat_sweep())
        assert report.sensitivity is CacheSensitivity.INSENSITIVE
        assert report.min_safe_fraction <= 0.15
        assert report.worst_degradation == pytest.approx(0.0)

    def test_linear_curve_is_sensitive(self):
        report = analyze_sweep("aggregation", sensitive_sweep())
        assert report.sensitivity is CacheSensitivity.SENSITIVE
        assert report.min_safe_fraction >= 0.75

    def test_partial_curve(self):
        report = analyze_sweep("join", partial_sweep())
        assert report.sensitivity is CacheSensitivity.PARTIALLY_SENSITIVE
        assert 0.5 <= report.min_safe_fraction <= 0.7

    def test_worst_degradation_reported(self):
        report = analyze_sweep("aggregation", sensitive_sweep())
        assert report.worst_degradation == pytest.approx(
            1 - (0.35 + 0.65 * 0.1), rel=0.05
        )

    def test_requires_full_cache_point(self):
        with pytest.raises(WorkloadError):
            analyze_sweep("x", [(0.5, 0.9)])

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            analyze_sweep("x", [])

    def test_rejects_bad_fraction(self):
        with pytest.raises(WorkloadError):
            analyze_sweep("x", [(1.0, 1.0), (1.5, 1.0)])


class TestDerivePolicy:
    def test_recovers_paper_scheme_structure(self):
        reports = [
            analyze_sweep("scan", flat_sweep()),
            analyze_sweep("aggregation", sensitive_sweep()),
            analyze_sweep("join", partial_sweep()),
        ]
        scheme = derive_policy(reports)
        # Scan-like operators -> ~10 %; sensitive -> 100 %;
        # join-like -> ~60 %: the paper's scheme, derived automatically.
        assert scheme.polluting_fraction == pytest.approx(0.10, abs=0.05)
        assert scheme.sensitive_fraction == 1.0
        assert 0.5 <= scheme.adaptive_sensitive_fraction <= 0.7

    def test_polluter_floor_at_10_percent(self):
        # Even a perfectly flat curve never drops below 10 % — the
        # paper's 0x1 observation (one way thrashes).
        scheme = derive_policy([analyze_sweep("scan", flat_sweep())])
        assert scheme.polluting_fraction >= 0.10

    def test_requires_reports(self):
        with pytest.raises(WorkloadError):
            derive_policy([])
