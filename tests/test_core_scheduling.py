"""Tests for cache-aware co-scheduling (Sec. VIII extension)."""

import pytest

from repro.core.scheduling import (
    CacheAwareScheduler,
    Phase,
    ScheduledQuery,
)
from repro.errors import WorkloadError
from repro.operators.base import CacheUsage
from repro.workloads.microbench import DICT_40_MIB, query1, query2


def scan(name: str) -> ScheduledQuery:
    return ScheduledQuery(name, query1().profile(name=name),
                          CacheUsage.POLLUTING)


def aggregation(name: str, groups: int = 10**5) -> ScheduledQuery:
    return ScheduledQuery(
        name,
        query2(DICT_40_MIB, groups).profile(22, name=name),
        CacheUsage.SENSITIVE,
    )


@pytest.fixture(scope="module")
def scheduler():
    return CacheAwareScheduler()


class TestScheduleConstruction:
    def test_naive_batches_in_arrival_order(self, scheduler):
        batch = [scan("s1"), aggregation("a1"), scan("s2"),
                 aggregation("a2")]
        phases = scheduler.naive_schedule(batch)
        assert [
            [q.name for q in phase.queries] for phase in phases
        ] == [["s1", "a1"], ["s2", "a2"]]
        assert all(not phase.partitioned for phase in phases)

    def test_cache_aware_pairs_polluters_together(self, scheduler):
        batch = [scan("s1"), aggregation("a1"), scan("s2"),
                 aggregation("a2")]
        phases = scheduler.cache_aware_schedule(batch)
        pairs = [{q.name for q in phase.queries} for phase in phases]
        assert {"s1", "s2"} in pairs
        assert {"a1", "a2"} in pairs

    def test_mixed_leftover_pair_is_partitioned(self, scheduler):
        batch = [scan("s1"), aggregation("a1")]
        phases = scheduler.cache_aware_schedule(batch)
        assert len(phases) == 1
        assert phases[0].partitioned

    def test_singleton_runs_alone(self, scheduler):
        phases = scheduler.cache_aware_schedule([aggregation("a1")])
        assert len(phases) == 1
        assert [q.name for q in phases[0].queries] == ["a1"]

    def test_all_queries_scheduled_exactly_once(self, scheduler):
        batch = [scan(f"s{i}") for i in range(3)] + [
            aggregation(f"a{i}") for i in range(3)
        ]
        phases = scheduler.cache_aware_schedule(batch)
        names = [q.name for phase in phases for q in phase.queries]
        assert sorted(names) == sorted(q.name for q in batch)

    def test_adaptive_must_be_resolved(self):
        with pytest.raises(WorkloadError):
            ScheduledQuery("j", query1().profile(name="j"),
                           CacheUsage.ADAPTIVE)

    def test_invalid_max_corun(self):
        with pytest.raises(WorkloadError):
            CacheAwareScheduler(max_corun=0)


class TestEvaluation:
    def test_cache_aware_beats_naive_on_mixed_batch(self, scheduler):
        """The paper's Sec. VIII claim, quantified: pairing polluters
        with polluters beats FCFS pairing on makespan."""
        batch = [scan("s1"), aggregation("a1"), scan("s2"),
                 aggregation("a2")]
        outcomes = scheduler.compare(batch)
        assert (
            outcomes["cache_aware"].makespan_s
            < outcomes["naive"].makespan_s
        )

    def test_phase_duration_covers_slowest_member(self, scheduler):
        batch = [scan("s1"), aggregation("a1")]
        outcome = scheduler.evaluate(
            "naive", scheduler.naive_schedule(batch)
        )
        phase = outcome.phases[0]
        for query in phase.queries:
            finish = (
                query.profile.tuples / phase.throughputs[query.name]
            )
            assert phase.duration_s >= finish - 1e-9

    def test_makespan_is_sum_of_phases(self, scheduler):
        batch = [scan("s1"), scan("s2"), aggregation("a1")]
        outcome = scheduler.evaluate(
            "cache_aware", scheduler.cache_aware_schedule(batch)
        )
        assert outcome.makespan_s == pytest.approx(
            sum(phase.duration_s for phase in outcome.phases)
        )

    def test_empty_batch_rejected(self, scheduler):
        with pytest.raises(WorkloadError):
            scheduler.compare([])

    def test_empty_phase_rejected(self, scheduler):
        with pytest.raises(WorkloadError):
            scheduler.evaluate("x", [Phase(queries=[])])
