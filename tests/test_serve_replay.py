"""Tests for trace replay (repro.serve.replay)."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import (
    QueryService,
    ReplayArrivals,
    ServiceConfig,
    load_trace,
    trace_config,
)
from repro.serve.arrivals import catalog_classes


def _record(tmp_path, policy="none", seed=7):
    config = ServiceConfig(
        profile="poisson", policy=policy, mix="olap",
        duration_s=3.0, rate_per_s=6.0, seed=seed,
    )
    report = QueryService(config).run()
    return report, report.write(tmp_path / "trace.json")


def _replay_config(traced: dict, policy: str) -> ServiceConfig:
    return ServiceConfig(
        profile="replay", policy=policy, mix=traced["mix"],
        duration_s=traced["duration_s"],
        rate_per_s=traced["rate_per_s"], seed=traced["seed"],
    )


class TestReplayArrivals:
    def test_replays_recorded_sequence(self):
        classes = catalog_classes()
        trace = (
            (0.5, classes["agg"]),
            (1.0, classes["scan"]),
            (1.0, classes["oltp"]),
        )
        replay = ReplayArrivals(trace)
        assert len(replay) == 3
        for expected in trace:
            assert replay.next_arrival(0.0) == expected

    def test_exhausted_trace_returns_beyond_horizon(self):
        classes = catalog_classes()
        replay = ReplayArrivals(((0.5, classes["agg"]),))
        replay.next_arrival(0.0)
        timestamp, _ = replay.next_arrival(0.5)
        assert timestamp == float("inf")

    def test_empty_trace_never_arrives(self):
        timestamp, _ = ReplayArrivals(()).next_arrival(0.0)
        assert timestamp == float("inf")

    def test_rejects_decreasing_timestamps(self):
        classes = catalog_classes()
        with pytest.raises(ServeError):
            ReplayArrivals(
                ((1.0, classes["agg"]), (0.5, classes["scan"]))
            )


class TestLoadTrace:
    def test_roundtrip(self, tmp_path):
        report, path = _record(tmp_path)
        replay = load_trace(path)
        assert len(replay) == report.arrived

    def test_trace_config_returns_recorded_envelope(self, tmp_path):
        report, path = _record(tmp_path)
        traced = trace_config(path)
        assert traced == report.config.to_dict()

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ServeError, match="cannot read"):
            load_trace(tmp_path / "nope.json")

    def test_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ServeError, match="not a service report"):
            load_trace(path)

    def test_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"report_version": 99, "arrivals": []}
        ))
        with pytest.raises(ServeError, match="newer"):
            load_trace(path)

    def test_v1_report_points_to_rerecord(self, tmp_path):
        # Version-1 reports predate the arrival log; they still load
        # elsewhere but replay needs the log.
        _, path = _record(tmp_path)
        payload = json.loads(path.read_text())
        payload["report_version"] = 1
        del payload["arrivals"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ServeError, match="re-record"):
            load_trace(path)

    def test_rejects_unknown_class(self, tmp_path):
        _, path = _record(tmp_path)
        payload = json.loads(path.read_text())
        payload["arrivals"] = [[0.5, "mystery"]]
        path.write_text(json.dumps(payload))
        with pytest.raises(ServeError, match="catalog"):
            load_trace(path)


class TestReplayThroughService:
    def test_same_policy_reproduces_the_run(self, tmp_path):
        recorded, path = _record(tmp_path, policy="none")
        config = _replay_config(trace_config(path), policy="none")
        replayed = QueryService(
            config, arrivals=load_trace(path)
        ).run()
        # The written report is the canonical trace: timestamps are
        # rounded to 9 decimals there, so the comparison happens at
        # the report level (in-memory floats differ below 1e-9).
        assert (
            replayed.to_dict()["arrivals"]
            == recorded.to_dict()["arrivals"]
        )
        assert replayed.completed == recorded.completed
        for mine, theirs in zip(replayed.slo, recorded.slo):
            assert mine.tenant == theirs.tenant
            assert mine.completed == theirs.completed
            # Quantiles are bucket bounds — exact across the 1e-9
            # timestamp rounding; means shift below that scale.
            assert mine.p99_s == theirs.p99_s
            assert mine.mean_s == pytest.approx(theirs.mean_s)

    def test_replaying_a_replay_is_a_fixed_point(self, tmp_path):
        _, path = _record(tmp_path, policy="none")
        config = _replay_config(trace_config(path), policy="none")
        replayed = QueryService(
            config, arrivals=load_trace(path)
        ).run()
        second_path = replayed.write(tmp_path / "replay.json")
        again = QueryService(
            _replay_config(trace_config(second_path), "none"),
            arrivals=load_trace(second_path),
        ).run()
        assert again.arrivals == replayed.arrivals

    def test_policy_ab_test_on_identical_traffic(self, tmp_path):
        recorded, path = _record(tmp_path, policy="none")
        config = _replay_config(trace_config(path), policy="static")
        replayed = QueryService(
            config, arrivals=load_trace(path)
        ).run()
        # Identical offered traffic, different policy under test.
        assert (
            replayed.to_dict()["arrivals"]
            == recorded.to_dict()["arrivals"]
        )
        assert replayed.config.policy == "static"

    def test_replay_profile_without_trace_rejected(self):
        config = ServiceConfig(profile="replay", policy="none")
        with pytest.raises(ServeError, match="replay"):
            QueryService(config)
