"""End-to-end tests for the Database facade."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import SqlPlanError, StorageError
from repro.storage.datagen import DataGenerator


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def loaded_db(db):
    generator = DataGenerator(21)
    db.execute("CREATE COLUMN TABLE A ( X INT )")
    db.load("A", {"X": generator.scan_table(5000, 200)})
    db.execute("CREATE COLUMN TABLE B ( V INT, G INT )")
    db.load("B", generator.aggregation_table(5000, 100, 10))
    db.execute("CREATE COLUMN TABLE R ( P INT, PRIMARY KEY(P) )")
    db.execute("CREATE COLUMN TABLE S ( F INT )")
    primary, foreign = generator.join_tables(500, 2000)
    db.load("R", {"P": primary})
    db.load("S", {"F": foreign})
    return db


class TestDdl:
    def test_create_table(self, db):
        table = db.execute("CREATE COLUMN TABLE T ( X INT )")
        assert table.name == "T"
        assert db.table_names() == ["T"]

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE COLUMN TABLE T ( X INT )")
        with pytest.raises(StorageError):
            db.execute("CREATE COLUMN TABLE T ( X INT )")

    def test_primary_key_propagated(self, db):
        table = db.execute(
            "CREATE COLUMN TABLE R ( P INT, PRIMARY KEY(P) )"
        )
        assert table.schema.primary_key == "P"

    def test_drop_table(self, db):
        db.execute("CREATE COLUMN TABLE T ( X INT )")
        db.drop_table("T")
        assert db.table_names() == []

    def test_load_unknown_table(self, db):
        with pytest.raises(StorageError):
            db.load("NOPE", {"X": np.array([1])})


class TestQueries:
    def test_scan(self, loaded_db):
        values = loaded_db.table("A").column("X").materialize()
        result = loaded_db.execute(
            "SELECT COUNT(*) FROM A WHERE A.X > ?", [100]
        )
        assert result.matches == int((values > 100).sum())

    def test_aggregation(self, loaded_db):
        result = loaded_db.execute(
            "SELECT MAX(B.V), B.G FROM B GROUP BY B.G"
        )
        groups = loaded_db.table("B").column("G").materialize()
        assert result.num_groups == len(np.unique(groups))

    def test_join(self, loaded_db):
        result = loaded_db.execute(
            "SELECT COUNT(*) FROM R, S WHERE R.P = S.F"
        )
        assert result.matches == 2000  # FKs drawn from the PK domain

    def test_point_select_runs_on_oltp_pool(self, loaded_db):
        key = int(loaded_db.table("R").column("P").materialize()[0])
        loaded_db.execute("SELECT P FROM R WHERE P = ?", [key])
        assert loaded_db.scheduler.dispatch_log[-1].pool == "oltp"

    def test_olap_queries_run_on_olap_pool(self, loaded_db):
        loaded_db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [1])
        assert loaded_db.scheduler.dispatch_log[-1].pool == "olap"

    def test_unknown_table_in_query(self, loaded_db):
        with pytest.raises(SqlPlanError):
            loaded_db.execute("SELECT COUNT(*) FROM NOPE WHERE X > 1")


class TestCachePartitioningSwitch:
    def test_disabled_by_default(self, db):
        assert not db.cache_partitioning_enabled

    def test_enable_affects_dispatch(self, loaded_db):
        loaded_db.enable_cache_partitioning()
        loaded_db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [1])
        assert loaded_db.scheduler.dispatch_log[-1].mask == 0x3

    def test_results_identical_with_partitioning(self, loaded_db):
        baseline = loaded_db.execute(
            "SELECT COUNT(*) FROM A WHERE A.X > ?", [100]
        )
        loaded_db.enable_cache_partitioning()
        partitioned = loaded_db.execute(
            "SELECT COUNT(*) FROM A WHERE A.X > ?", [100]
        )
        assert partitioned.matches == baseline.matches

    def test_disable_restores_full_mask(self, loaded_db, spec):
        loaded_db.enable_cache_partitioning()
        loaded_db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [1])
        loaded_db.disable_cache_partitioning()
        loaded_db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [1])
        assert loaded_db.scheduler.dispatch_log[-1].mask == spec.full_mask


class TestExplain:
    def test_explain_scan(self, loaded_db):
        text = loaded_db.explain(
            "SELECT COUNT(*) FROM A WHERE A.X > ?", [5]
        )
        assert "ColumnScan" in text
        assert "column_scan" in text

    def test_explain_shows_mask_when_partitioned(self, loaded_db):
        loaded_db.enable_cache_partitioning()
        text = loaded_db.explain(
            "SELECT COUNT(*) FROM A WHERE A.X > ?", [5]
        )
        assert "mask=0x3" in text

    def test_explain_create(self, db):
        assert "CreateTable" in db.explain(
            "CREATE COLUMN TABLE T ( X INT )"
        )


class TestConfiguration:
    def test_oltp_pool_sizing(self):
        db = Database(oltp_cores=4)
        assert db.scheduler.oltp_pool.size == 4
        assert db.scheduler.olap_pool.size == db.spec.cores - 4

    def test_invalid_oltp_cores(self):
        with pytest.raises(StorageError):
            Database(oltp_cores=0)
