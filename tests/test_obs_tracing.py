"""Tests for the tracing spans (repro.obs.tracing)."""

import pytest

from repro.obs import runtime
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_spans,
)


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fig9"):
            with tracer.span("solve_segment"):
                pass
            with tracer.span("solve_segment"):
                pass
        root = tracer.root
        fig9 = root.children["fig9"]
        assert fig9.count == 1
        solve = fig9.children["solve_segment"]
        assert solve.count == 2
        assert root.depth() == 3  # root > fig9 > solve_segment

    def test_injectable_clock_gives_exact_durations(self):
        # Each clock reading ticks 1.0s: a leaf span spans exactly one
        # tick; the parent includes the child's two ticks plus its own.
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = tracer.root.children["outer"].children["inner"]
        outer = tracer.root.children["outer"]
        assert inner.total_seconds == pytest.approx(1.0)
        assert outer.total_seconds == pytest.approx(3.0)

    def test_same_name_under_one_parent_aggregates(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(5):
            with tracer.span("solve"):
                pass
        assert len(tracer.root.children) == 1
        node = tracer.root.children["solve"]
        assert node.count == 5
        assert node.total_seconds == pytest.approx(5.0)

    def test_attributes_merge_last_write_wins(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", ways=2):
            pass
        with tracer.span("s", ways=4) as span:
            span.set(converged=True)
        node = tracer.root.children["s"]
        assert node.attributes == {"ways": 4, "converged": True}

    def test_current_tracks_the_stack(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current is tracer.root
        with tracer.span("a"):
            assert tracer.current.name == "a"
        assert tracer.current is tracer.root

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current is tracer.root
        assert tracer.root.children["boom"].count == 1


class TestSpanSerialization:
    def test_roundtrip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        clone = Span.from_dict(tracer.root.to_dict())
        assert clone.depth() == tracer.root.depth()
        assert clone.children["a"].attributes == {"k": "v"}
        assert clone.children["a"].children["b"].count == 1
        assert (
            clone.children["a"].total_seconds
            == tracer.root.children["a"].total_seconds
        )

    def test_merge_adds_counts_and_children(self):
        first = Tracer(clock=FakeClock())
        with first.span("solve"):
            with first.span("inner"):
                pass
        second = Tracer(clock=FakeClock())
        with second.span("solve", mask=0x3):
            pass
        first.root.merge(second.root)
        solve = first.root.children["solve"]
        assert solve.count == 2
        assert solve.attributes == {"mask": 0x3}
        assert solve.children["inner"].count == 1

    def test_merge_span_dict_under_current(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("simulate"):
            pass
        parent = Tracer(clock=FakeClock())
        with parent.span("fig9"):
            # The worker's root is discarded; its children land under
            # the parent's innermost active span.
            parent.merge_span_dict(worker.to_dict())
        fig = parent.root.children["fig9"]
        assert fig.children["simulate"].count == 1
        assert "root" not in fig.children

    def test_merge_span_dict_on_null_tracer_is_noop(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("simulate"):
            pass
        NULL_TRACER.merge_span_dict(worker.to_dict())

    def test_format_spans_outline(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fig4"):
            with tracer.span("simulate"):
                pass
        text = format_spans(tracer.root)
        lines = text.splitlines()
        assert lines[0].startswith("fig4")
        assert lines[1].startswith("  simulate")


class TestNullTracer:
    def test_span_is_shared_noop(self):
        first = NULL_TRACER.span("a", attr=1)
        second = NULL_TRACER.span("b")
        assert first is second
        with first as handle:
            assert handle.set(x=1) is handle

    def test_disabled_flag(self):
        assert NullTracer.enabled is False
        assert Tracer(clock=FakeClock()).enabled is True


class TestRuntime:
    def test_default_is_silent(self):
        assert runtime.tracer is NULL_TRACER

    def test_observing_installs_and_restores(self):
        with runtime.observing() as (tracer, metrics):
            assert runtime.tracer is tracer
            assert runtime.metrics is metrics
            with runtime.tracer.span("x"):
                pass
        assert runtime.tracer is NULL_TRACER
        assert tracer.root.children["x"].count == 1

    def test_observing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with runtime.observing():
                raise RuntimeError("x")
        assert runtime.tracer is NULL_TRACER

    def test_observing_scopes_nest(self):
        with runtime.observing() as (outer, _):
            with runtime.observing() as (inner, _):
                assert runtime.tracer is inner
            assert runtime.tracer is outer

    def test_install_and_reset(self):
        tracer = Tracer(clock=FakeClock())
        runtime.install(tracer)
        try:
            assert runtime.tracer is tracer
        finally:
            runtime.reset()
        assert runtime.tracer is NULL_TRACER
