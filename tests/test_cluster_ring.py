"""Tests for the consistent-hash ring (repro.cluster.ring)."""

import pytest

from repro.cluster.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.cluster.workload import tenant_id
from repro.errors import ClusterError


def _tenant_keys(per_group: int = 64) -> list[str]:
    return [
        tenant_id(group, index)
        for group in ("batch", "olap", "oltp")
        for index in range(per_group)
    ]


class TestConstruction:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ClusterError):
            HashRing(0)

    def test_rejects_zero_virtual_nodes(self):
        with pytest.raises(ClusterError):
            HashRing(2, virtual_nodes=0)

    def test_point_count(self):
        ring = HashRing(3, virtual_nodes=16)
        assert len(ring._points) == 48

    def test_platform_stable_placement(self):
        # SHA-256-based, so placements are constants — a regression
        # here means every persisted assignment silently moved.
        ring = HashRing(4)
        assert ring.owner("olap-00") == 0
        assert ring.owner("oltp-05") == 2
        assert ring.owner("batch-02") == 2


class TestOwnership:
    def test_every_key_owned(self):
        ring = HashRing(4)
        for key in _tenant_keys():
            owner = ring.owner(key)
            assert owner is not None and 0 <= owner < 4

    def test_all_nodes_receive_some_tenants(self):
        ring = HashRing(4)
        owners = set(ring.assignment(_tenant_keys()).values())
        assert owners == {0, 1, 2, 3}

    def test_balance_is_roughly_uniform(self):
        ring = HashRing(4, virtual_nodes=DEFAULT_VIRTUAL_NODES)
        keys = _tenant_keys(per_group=256)
        counts: dict[int, int] = {}
        for owner in ring.assignment(keys).values():
            counts[owner] = counts.get(owner, 0) + 1
        expected = len(keys) / 4
        for count in counts.values():
            assert 0.5 * expected <= count <= 1.5 * expected

    def test_no_alive_nodes_means_no_owner(self):
        ring = HashRing(3)
        assert ring.owner("olap-00", alive=()) is None


class TestStability:
    """Killing 1 of N nodes remaps ~1/N tenants; recovery restores."""

    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_single_kill_remaps_bounded_fraction(self, nodes):
        ring = HashRing(nodes)
        keys = _tenant_keys(per_group=128)
        before = ring.assignment(keys)
        dead = 0
        alive = frozenset(range(nodes)) - {dead}
        after = ring.assignment(keys, alive)
        moved = [key for key in keys if after[key] != before[key]]
        # Exactly the dead node's tenants move...
        assert set(moved) == {
            key for key in keys if before[key] == dead
        }
        # ...which is ~1/N of them (generous 2x slack on 384+ keys).
        assert len(moved) <= 2.0 * len(keys) / nodes
        # Survivors' tenants are pinned: no collateral remapping.
        for key in keys:
            if before[key] != dead:
                assert after[key] == before[key]

    def test_failover_spreads_over_successors(self):
        # A dead node's tenants should spill to *multiple* ring
        # successors (virtual nodes), not pile onto one machine.
        ring = HashRing(4)
        keys = _tenant_keys(per_group=256)
        before = ring.assignment(keys)
        after = ring.assignment(keys, alive=(1, 2, 3))
        heirs = {
            after[key] for key in keys if before[key] == 0
        }
        assert len(heirs) > 1

    def test_recovery_restores_original_assignment(self):
        ring = HashRing(5)
        keys = _tenant_keys()
        before = ring.assignment(keys)
        ring.assignment(keys, alive=(0, 2, 3, 4))  # node 1 down
        restored = ring.assignment(
            keys, alive=(0, 1, 2, 3, 4)
        )
        assert restored == before
        # And the liveness-free lookup agrees.
        assert ring.assignment(keys) == before

    def test_cascading_failure_still_owned(self):
        ring = HashRing(4)
        keys = _tenant_keys()
        assignment = ring.assignment(keys, alive=(2,))
        assert set(assignment.values()) == {2}
