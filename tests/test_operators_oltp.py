"""Tests for projection, index lookup and the OLTP point select."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.operators.base import CacheUsage
from repro.operators.index_lookup import IndexLookup
from repro.operators.point_select import PointSelect
from repro.operators.project import DictProjection
from repro.storage.table import ColumnTable, Schema, SchemaColumn


@pytest.fixture
def wide_table(rng):
    schema = Schema("T", (
        SchemaColumn("K1"), SchemaColumn("K2"),
        SchemaColumn("C1"), SchemaColumn("C2"), SchemaColumn("C3"),
    ))
    table = ColumnTable(schema)
    data = {
        "K1": rng.integers(1, 500, size=2000),
        "K2": rng.integers(1, 20, size=2000),
        "C1": rng.integers(1, 1000, size=2000),
        "C2": rng.integers(1, 50, size=2000),
        "C3": rng.integers(1, 5, size=2000),
    }
    table.load(data)
    return table, data


class TestProjection:
    def test_projects_selected_rows(self, wide_table):
        table, data = wide_table
        rows = np.array([0, 5, 1999])
        result = DictProjection(table, ["C1", "C3"], rows).execute()
        assert set(result) == {"C1", "C3"}
        assert np.array_equal(result["C1"], data["C1"][rows])
        assert np.array_equal(result["C3"], data["C3"][rows])

    def test_empty_rows(self, wide_table):
        table, _ = wide_table
        result = DictProjection(table, ["C1"], np.array([],
                                dtype=np.int64)).execute()
        assert result["C1"].size == 0

    def test_requires_columns(self, wide_table):
        table, _ = wide_table
        with pytest.raises(StorageError):
            DictProjection(table, [], np.array([0]))

    def test_profile_has_one_region_per_column(self, wide_table):
        table, _ = wide_table
        projection = DictProjection(table, ["C1", "C2"], np.array([0]))
        profile = projection.access_profile(4)
        assert len(profile.regions) == 2
        assert projection.cache_usage() is CacheUsage.SENSITIVE


class TestIndexLookup:
    def test_single_predicate(self, wide_table):
        table, data = wide_table
        value = int(data["K1"][7])
        rows = IndexLookup(table, {"K1": value}).execute()
        assert np.array_equal(rows, np.nonzero(data["K1"] == value)[0])

    def test_conjunction_intersects(self, wide_table):
        table, data = wide_table
        k1, k2 = int(data["K1"][3]), int(data["K2"][3])
        rows = IndexLookup(table, {"K1": k1, "K2": k2}).execute()
        expected = np.nonzero((data["K1"] == k1) & (data["K2"] == k2))[0]
        assert np.array_equal(rows, expected)

    def test_builds_missing_indexes(self, wide_table):
        table, data = wide_table
        assert not table.has_index("K1")
        IndexLookup(table, {"K1": 1})
        assert table.has_index("K1")

    def test_requires_predicates(self, wide_table):
        table, _ = wide_table
        with pytest.raises(StorageError):
            IndexLookup(table, {})


class TestPointSelect:
    def test_end_to_end(self, wide_table):
        table, data = wide_table
        k1 = int(data["K1"][42])
        select = PointSelect(table, ["C1", "C2"], {"K1": k1})
        result = select.execute()
        expected_rows = np.nonzero(data["K1"] == k1)[0]
        assert np.array_equal(result["C1"], data["C1"][expected_rows])
        assert select.stats.rows_processed == expected_rows.size

    def test_is_cache_sensitive(self, wide_table):
        table, _ = wide_table
        select = PointSelect(table, ["C1"], {"K1": 1})
        assert select.cache_usage() is CacheUsage.SENSITIVE

    def test_profile_regions(self, wide_table):
        table, _ = wide_table
        select = PointSelect(table, ["C1", "C2"], {"K1": 1, "K2": 1})
        profile = select.access_profile(4)
        region_names = {region.name for region in profile.regions}
        assert "index_K1" in region_names
        assert "dict_C1" in region_names
        assert profile.tuples == 1.0

    def test_requires_projection(self, wide_table):
        table, _ = wide_table
        with pytest.raises(StorageError):
            PointSelect(table, [], {"K1": 1})
