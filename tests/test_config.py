"""Tests for repro.config (hardware specifications)."""

import pytest

from repro.config import CacheSpec, DramSpec, SystemSpec, xeon_e5_2699_v4
from repro.errors import CacheConfigError, ConfigError
from repro.units import GB, KiB, MiB, NANOSECOND


class TestCacheSpec:
    def test_paper_llc_geometry(self):
        llc = CacheSpec(55 * MiB, 20)
        assert llc.sets == 45056
        assert llc.way_bytes == 55 * MiB // 20  # 2.75 MiB per way

    def test_way_bytes_matches_paper(self):
        # The paper: 55 MiB / 20 = 2.75 MiB per bitmask bit (Sec. V-A).
        llc = CacheSpec(55 * MiB, 20)
        assert llc.way_bytes == int(2.75 * MiB)

    def test_rejects_zero_size(self):
        with pytest.raises(CacheConfigError):
            CacheSpec(0, 8)

    def test_rejects_zero_ways(self):
        with pytest.raises(CacheConfigError):
            CacheSpec(32 * KiB, 0)

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(CacheConfigError):
            CacheSpec(32 * KiB, 8, line_bytes=48)

    def test_rejects_misaligned_size(self):
        with pytest.raises(CacheConfigError):
            CacheSpec(1000, 8, line_bytes=64)

    def test_scaled_preserves_ways_and_lines(self):
        llc = CacheSpec(55 * MiB, 20)
        scaled = llc.scaled(256)
        assert scaled.ways == 20
        assert scaled.line_bytes == 64
        assert scaled.size_bytes < llc.size_bytes

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(CacheConfigError):
            CacheSpec(55 * MiB, 20).scaled(0)


class TestDramSpec:
    def test_paper_defaults(self):
        dram = DramSpec()
        assert dram.bandwidth_bytes_per_s == 64 * GB
        assert dram.latency_s == pytest.approx(80 * NANOSECOND)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            DramSpec(bandwidth_bytes_per_s=0)

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigError):
            DramSpec(latency_s=-1)


class TestSystemSpec:
    def test_paper_machine(self):
        spec = xeon_e5_2699_v4()
        assert spec.cores == 22
        assert spec.hardware_threads == 44
        assert spec.llc.size_bytes == 55 * MiB
        assert spec.llc.ways == 20
        assert spec.cat_classes == 16

    def test_full_mask_is_20_bits(self, spec):
        assert spec.full_mask == 0xFFFFF

    def test_mask_bytes(self, spec):
        # 0x3 = 2 ways = 5.5 MiB = 10 % of the LLC (paper Sec. V-B).
        assert spec.mask_bytes(0x3) == int(5.5 * MiB)
        assert spec.mask_fraction(0x3) == pytest.approx(0.10)
        # 0xfff = 12 ways = 60 %.
        assert spec.mask_fraction(0xFFF) == pytest.approx(0.60)

    def test_mask_bytes_rejects_out_of_range(self, spec):
        with pytest.raises(ConfigError):
            spec.mask_bytes(1 << 20)

    def test_l2_total(self, spec):
        assert spec.l2_total_bytes == 22 * 256 * KiB

    def test_cycle_time(self, spec):
        assert spec.cycle_s == pytest.approx(1 / 2.2e9)

    def test_scaled_system(self, spec):
        scaled = spec.scaled(64)
        assert scaled.cores == spec.cores
        assert scaled.llc.ways == 20
        assert scaled.llc.size_bytes < spec.llc.size_bytes

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemSpec(cores=0)

    def test_rejects_bad_cat_min_bits(self):
        with pytest.raises(ConfigError):
            SystemSpec(cat_min_bits=0)
