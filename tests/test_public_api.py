"""Sanity tests for the top-level public API."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_core_types_importable_from_top_level(self):
        assert repro.Database is not None
        assert repro.CachePartitioning is not None
        assert repro.WorkloadSimulator is not None
        assert repro.paper_scheme().name == "paper_default"


class TestReadmeQuickstart:
    def test_readme_snippet_runs(self):
        """The README's quickstart must stay executable verbatim."""
        db = repro.Database()
        db.execute("CREATE COLUMN TABLE A ( X INT )")
        rng = np.random.default_rng(1)
        db.load("A", {"X": rng.integers(1, 10**6, size=100_000)})
        with repro.CachePartitioning(db):
            result = db.execute(
                "SELECT COUNT(*) FROM A WHERE A.X > ?", [500_000]
            )
            explained = db.explain(
                "SELECT COUNT(*) FROM A WHERE A.X > ?", [500_000]
            )
        assert result.matches > 0
        assert "mask=0x3" in explained


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors
        for name in dir(errors):
            candidate = getattr(errors, name)
            if (
                isinstance(candidate, type)
                and issubclass(candidate, Exception)
                and candidate is not errors.ReproError
                and candidate.__module__ == "repro.errors"
            ):
                assert issubclass(candidate, errors.ReproError), name

    def test_library_raises_catchable_errors(self):
        db = repro.Database()
        with pytest.raises(repro.ReproError):
            db.execute("SELECT COUNT(*) FROM MISSING WHERE X > 1")
        with pytest.raises(repro.ReproError):
            db.execute("NOT SQL AT ALL")
