"""Tests for repro.units."""

import pytest

from repro.units import GB, GiB, KiB, MiB, format_bytes, format_rate


class TestConstants:
    def test_binary_units_are_powers_of_two(self):
        assert KiB == 2**10
        assert MiB == 2**20
        assert GiB == 2**30

    def test_decimal_units_are_powers_of_ten(self):
        assert GB == 10**9


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_llc_size(self):
        assert format_bytes(55 * MiB) == "55.0 MiB"

    def test_gib(self):
        assert format_bytes(3 * GiB) == "3.0 GiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatRate:
    def test_paper_bandwidth(self):
        assert format_rate(64 * GB) == "64.0 GB/s"

    def test_megabytes(self):
        assert format_rate(5 * 10**6) == "5.0 MB/s"

    def test_small(self):
        assert format_rate(10.0) == "10 B/s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_rate(-1.0)
