"""Tests for the inverted index and the data generators."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.datagen import DataGenerator
from repro.storage.index import InvertedIndex


class TestInvertedIndex:
    def test_lookup_finds_all_rows(self):
        values = np.array([5, 3, 5, 1, 5, 3])
        index = InvertedIndex.build(values)
        assert list(index.lookup(5)) == [0, 2, 4]
        assert list(index.lookup(3)) == [1, 5]
        assert list(index.lookup(1)) == [3]

    def test_lookup_missing_value(self):
        index = InvertedIndex.build(np.array([1, 2, 3]))
        assert index.lookup(99).size == 0

    def test_lookup_many_union(self):
        index = InvertedIndex.build(np.array([1, 2, 1, 3]))
        rows = index.lookup_many(np.array([1, 3]))
        assert list(rows) == [0, 2, 3]

    def test_cardinality(self):
        index = InvertedIndex.build(np.array([7, 7, 8]))
        assert index.cardinality == 2

    def test_size_bytes_positive(self):
        index = InvertedIndex.build(np.arange(100))
        assert index.size_bytes > 0

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            InvertedIndex.build(np.array([]))

    def test_matches_numpy_ground_truth(self, rng):
        values = rng.integers(0, 50, size=2000)
        index = InvertedIndex.build(values)
        for probe in (0, 25, 49):
            expected = np.nonzero(values == probe)[0]
            assert np.array_equal(index.lookup(probe), expected)


class TestDataGenerator:
    def test_deterministic_with_seed(self):
        a = DataGenerator(1).uniform_ints(100, 10)
        b = DataGenerator(1).uniform_ints(100, 10)
        assert np.array_equal(a, b)

    def test_uniform_range(self):
        values = DataGenerator(2).uniform_ints(10_000, 100)
        assert values.min() >= 1
        assert values.max() <= 100

    def test_zipf_skewed(self):
        values = DataGenerator(3).zipf_ints(10_000, 100)
        counts = np.bincount(values)
        # The most frequent value dominates under Zipf.
        assert counts.max() > 10_000 // 100 * 5

    def test_zipf_validation(self):
        with pytest.raises(StorageError):
            DataGenerator(0).zipf_ints(10, 10, skew=1.0)

    def test_join_tables_shape(self):
        primary, foreign = DataGenerator(4).join_tables(100, 1000)
        assert sorted(primary) == list(range(1, 101))
        assert np.all(np.isin(foreign, primary))

    def test_aggregation_table_columns(self):
        data = DataGenerator(5).aggregation_table(100, 10, 3)
        assert set(data) == {"V", "G"}
        assert len(data["V"]) == len(data["G"]) == 100

    def test_wide_table(self):
        data = DataGenerator(6).wide_table(50, {"A": 5, "B": 7})
        assert set(data) == {"A", "B"}
        assert all(len(col) == 50 for col in data.values())

    def test_validation(self):
        generator = DataGenerator(7)
        with pytest.raises(StorageError):
            generator.uniform_ints(0, 5)
        with pytest.raises(StorageError):
            generator.join_tables(0, 5)
        with pytest.raises(StorageError):
            generator.wide_table(0, {"A": 1})
