"""Tests for session/admission control."""

import pytest

from repro.errors import ServeError
from repro.operators.base import CacheUsage
from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    Request,
)
from repro.serve.arrivals import catalog_classes


@pytest.fixture(scope="module")
def classes():
    return catalog_classes()


def _request(classes, request_id, name="scan", at=0.0):
    return Request(
        request_id=request_id, cls=classes[name], arrived_s=at
    )


class TestAdmission:
    def test_admits_up_to_concurrency(self, classes):
        controller = AdmissionController(2, queue_depth=1)
        first = controller.offer(_request(classes, 0), 0.0)
        second = controller.offer(_request(classes, 1), 0.1)
        assert first is AdmissionDecision.ADMITTED
        assert second is AdmissionDecision.ADMITTED
        assert set(controller.running) == {0, 1}

    def test_queues_then_sheds(self, classes):
        controller = AdmissionController(1, queue_depth=1)
        assert (
            controller.offer(_request(classes, 0), 0.0)
            is AdmissionDecision.ADMITTED
        )
        assert (
            controller.offer(_request(classes, 1), 0.1)
            is AdmissionDecision.QUEUED
        )
        assert (
            controller.offer(_request(classes, 2), 0.2)
            is AdmissionDecision.SHED
        )
        assert controller.admitted == 1
        assert controller.queued == 1
        assert controller.shed == 1

    def test_release_promotes_fifo(self, classes):
        controller = AdmissionController(1, queue_depth=2)
        controller.offer(_request(classes, 0), 0.0)
        controller.offer(_request(classes, 1), 0.1)
        controller.offer(_request(classes, 2), 0.2)
        promoted = controller.release(0, 1.0)
        assert promoted is not None
        assert promoted.request_id == 1  # FIFO
        assert promoted.admitted_s == 1.0
        assert set(controller.running) == {1}
        assert controller.queue_length == 1

    def test_release_with_empty_queue(self, classes):
        controller = AdmissionController(1, queue_depth=0)
        controller.offer(_request(classes, 0), 0.0)
        assert controller.release(0, 1.0) is None
        assert not controller.running

    def test_release_unknown_request_rejected(self, classes):
        controller = AdmissionController(1, queue_depth=0)
        with pytest.raises(ServeError):
            controller.release(99, 0.0)

    def test_admitted_timestamp_recorded(self, classes):
        controller = AdmissionController(1, queue_depth=0)
        request = _request(classes, 0, at=0.5)
        controller.offer(request, 0.5)
        assert request.admitted_s == 0.5


class TestRequest:
    def test_remaining_defaults_to_class_work(self, classes):
        request = _request(classes, 0)
        assert request.remaining_tuples == classes["scan"].work_tuples

    def test_latency_requires_completion(self, classes):
        request = _request(classes, 0, at=1.0)
        with pytest.raises(ServeError):
            _ = request.latency_s
        request.completed_s = 3.5
        assert request.latency_s == 2.5

    def test_tenant_comes_from_class(self, classes):
        assert _request(classes, 0, "oltp").tenant == "oltp"


class TestTenants:
    def test_tenant_cuid_binding(self, classes):
        controller = AdmissionController(1, queue_depth=0)
        assert controller.tenant_cuid("olap") is None
        controller.bind_tenant("olap", CacheUsage.POLLUTING)
        assert (
            controller.tenant_cuid("olap") is CacheUsage.POLLUTING
        )


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            AdmissionController(0, queue_depth=1)
        with pytest.raises(ServeError):
            AdmissionController(1, queue_depth=-1)
