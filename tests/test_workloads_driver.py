"""Integration tests: the functional mixed-workload driver."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.storage.datagen import DataGenerator
from repro.workloads.driver import MixedWorkloadDriver, Statement


@pytest.fixture
def db():
    database = Database()
    generator = DataGenerator(31)
    database.execute("CREATE COLUMN TABLE A ( X INT )")
    database.load("A", {"X": generator.scan_table(8000, 500)})
    database.execute("CREATE COLUMN TABLE B ( V INT, G INT )")
    database.load("B", generator.aggregation_table(8000, 200, 8))
    database.execute("CREATE COLUMN TABLE R ( P INT, PRIMARY KEY(P) )")
    primary, foreign = generator.join_tables(400, 4000)
    database.load("R", {"P": primary})
    database.execute("CREATE COLUMN TABLE S ( F INT )")
    database.load("S", {"F": foreign})
    return database


MIXED = (
    Statement("scan", "SELECT COUNT(*) FROM A WHERE A.X > ?", (250,)),
    Statement("agg", "SELECT MAX(B.V), B.G FROM B GROUP BY B.G"),
    Statement("join", "SELECT COUNT(*) FROM R, S WHERE R.P = S.F"),
)


class TestDriverBasics:
    def test_executes_all_statements(self, db):
        report = MixedWorkloadDriver(db).run(MIXED, iterations=3)
        assert report.iterations == 3
        for name in ("scan", "agg", "join"):
            assert report.outcomes[name].executions == 3

    def test_checksums_stable_across_iterations(self, db):
        report = MixedWorkloadDriver(db).run(MIXED, iterations=4)
        assert report.checksum("join") == 4000

    def test_validation(self, db):
        driver = MixedWorkloadDriver(db)
        with pytest.raises(WorkloadError):
            driver.run([], iterations=1)
        with pytest.raises(WorkloadError):
            driver.run(MIXED, iterations=0)
        with pytest.raises(WorkloadError):
            driver.run(
                [Statement("x", "SELECT COUNT(*) FROM A WHERE A.X > 1"),
                 Statement("x", "SELECT COUNT(*) FROM A WHERE A.X > 2")],
                iterations=1,
            )


class TestInjectableClock:
    def test_run_for_with_ticking_clock_is_deterministic(self, db):
        """A deterministic clock yields a reproducible iteration count
        — the duration loop no longer depends on the wall clock."""
        from repro.serve.clock import TickingClock

        # Clock readings: start, then one per completed round.  Step
        # 1.0s and duration 5.0s -> exactly 5 rounds.
        driver = MixedWorkloadDriver(db, clock=TickingClock(step=1.0))
        report = driver.run_for(MIXED, duration_s=5.0)
        assert report.iterations == 5
        for name in ("scan", "agg", "join"):
            assert report.outcomes[name].executions == 5

    def test_run_for_executes_at_least_one_round(self, db):
        from repro.serve.clock import TickingClock

        driver = MixedWorkloadDriver(
            db, clock=TickingClock(step=100.0)
        )
        report = driver.run_for(MIXED, duration_s=1.0)
        assert report.iterations == 1

    def test_run_for_elapsed_comes_from_injected_clock(self, db):
        from repro.serve.clock import TickingClock

        driver = MixedWorkloadDriver(db, clock=TickingClock(step=1.0))
        report = driver.run_for(MIXED, duration_s=3.0)
        # Readings: 0 (start), 1, 2, 3 (deadline) -> elapsed reading 4.
        assert report.elapsed_seconds == 4.0

    def test_run_for_validation(self, db):
        driver = MixedWorkloadDriver(db)
        with pytest.raises(WorkloadError):
            driver.run_for(MIXED, duration_s=0.0)
        with pytest.raises(WorkloadError):
            driver.run_for([], duration_s=1.0)

    def test_default_clock_is_wall_clock(self, db):
        report = MixedWorkloadDriver(db).run(MIXED, iterations=1)
        assert report.elapsed_seconds >= 0.0


class TestPartitioningUnderLoad:
    def test_results_identical_with_partitioning(self, db):
        driver = MixedWorkloadDriver(db)
        baseline = driver.run(MIXED, iterations=2)
        db.enable_cache_partitioning()
        partitioned = driver.run(MIXED, iterations=2)
        for name in ("scan", "agg", "join"):
            assert partitioned.checksum(name) == baseline.checksum(name)

    def test_masks_follow_cuids(self, db):
        db.enable_cache_partitioning()
        report = MixedWorkloadDriver(db).run(MIXED, iterations=3)
        assert report.masks_seen["column_scan"] == {0x3}
        assert report.masks_seen["grouped_aggregation"] == {0xFFFFF}
        # Tiny bit vector -> the adaptive join resolves to polluter.
        assert report.masks_seen["foreign_key_join"] == {0x3}

    def test_compare_before_set_pays_off_under_load(self, db):
        db.enable_cache_partitioning()
        report = MixedWorkloadDriver(db).run(MIXED, iterations=10)
        # The loop keeps flipping workers between masks; after warm-up
        # most associations are elided.
        assert report.elided_calls > 0
        assert report.kernel_calls < 3 * 10  # far fewer than 1/job

    def test_unpartitioned_run_makes_no_kernel_calls(self, db):
        report = MixedWorkloadDriver(db).run(MIXED, iterations=3)
        assert report.kernel_calls == 0
