"""Tests for blueprint enumeration, scoring, and transition planning
(repro.planner.blueprint / transition)."""

import pytest

from repro.cluster.workload import cluster_classes, tenant_id
from repro.config import DEFAULT_SYSTEM
from repro.errors import PlannerError
from repro.planner import (
    BLUEPRINT_SCHEMES,
    Blueprint,
    BlueprintScorer,
    enumerate_blueprints,
    plan_transition,
    preferred_node,
    spread_blueprint,
    tenant_key,
)

GROUPS = ("batch", "olap", "oltp")


def _scorer(solve_memo=None):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    return BlueprintScorer(
        DEFAULT_SYSTEM,
        classes=classes,
        targets={"olap": 1.2, "oltp": 0.6},
        max_concurrency=8,
        solve_memo=solve_memo,
    )


def _rates(batch=8.0, olap=8.0, oltp=8.0):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    by_tenant: dict = {}
    for name, cls in classes.items():
        by_tenant.setdefault(cls.tenant, []).append(name)
    rates = {}
    for tenant, total in (
        ("batch", batch), ("olap", olap), ("oltp", oltp)
    ):
        for name in by_tenant[tenant]:
            rates[name] = total / len(by_tenant[tenant])
    return rates


class TestBlueprintValueObject:
    def test_build_normalizes_and_keys_deterministically(self):
        first = Blueprint.build(
            2, {"olap": [1, 0, 1], "batch": (0,)}, ("paper", "full")
        )
        second = Blueprint.build(
            2, {"batch": [0], "olap": [0, 1]}, ("paper", "full")
        )
        assert first.key() == second.key()
        assert first.placement_map() == {
            "batch": (0,), "olap": (0, 1)
        }

    def test_rejects_malformed_blueprints(self):
        with pytest.raises(PlannerError, match="schemes"):
            Blueprint.build(2, {"olap": [0]}, ("paper",))
        with pytest.raises(PlannerError, match="scheme"):
            Blueprint.build(1, {"olap": [0]}, ("exotic",))
        with pytest.raises(PlannerError, match="outside"):
            Blueprint.build(2, {"olap": [5]}, ("paper", "paper"))
        with pytest.raises(PlannerError, match="no nodes"):
            Blueprint.build(2, {"olap": []}, ("paper", "paper"))

    def test_preferred_node_cycles_the_home_set(self):
        home = (1, 3, 4)
        assert [preferred_node(home, i) for i in range(5)] == [
            1, 3, 4, 1, 3,
        ]


class TestEnumeration:
    def test_candidates_are_valid_unique_and_bounded(self):
        for nodes in (1, 2, 4):
            candidates = enumerate_blueprints(nodes, GROUPS)
            assert 0 < len(candidates) <= 64
            keys = [c.key() for c in candidates]
            assert len(set(keys)) == len(keys)
            assert keys == sorted(keys)
            for candidate in candidates:
                assert candidate.nodes == nodes

    def test_spread_and_isolation_families_present(self):
        candidates = enumerate_blueprints(4, GROUPS)
        placements = {c.key()[0] for c in candidates}
        spread = spread_blueprint(4, GROUPS, "paper")
        assert spread.key()[0] in placements
        isolating = [
            c for c in candidates
            if c.placement_map()["batch"] != (0, 1, 2, 3)
        ]
        assert isolating

    def test_max_candidates_truncates(self):
        full = enumerate_blueprints(4, GROUPS)
        capped = enumerate_blueprints(4, GROUPS, max_candidates=3)
        assert len(capped) == 3
        assert capped == full[:3]

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(PlannerError):
            enumerate_blueprints(2, ())
        with pytest.raises(PlannerError):
            enumerate_blueprints(2, GROUPS, max_candidates=0)


class TestScoring:
    def test_scoring_is_deterministic(self):
        rates = _rates()
        candidates = enumerate_blueprints(4, GROUPS)
        first = [
            _scorer().score(c, rates).to_dict() for c in candidates
        ]
        second = [
            _scorer().score(c, rates).to_dict() for c in candidates
        ]
        assert first == second

    def test_batch_heavy_forecast_prefers_isolation(self):
        scorer = _scorer()
        rates = _rates(batch=60.0, olap=2.0, oltp=2.0)
        spread = scorer.score(
            spread_blueprint(4, GROUPS, "paper"), rates
        )
        best = min(
            (
                scorer.score(c, rates)
                for c in enumerate_blueprints(4, GROUPS)
            ),
            key=lambda s: (round(s.score, 9), s.blueprint.key()),
        )
        assert best.score < spread.score
        assert best.blueprint.placement_map()["batch"] != (
            0, 1, 2, 3,
        )

    def test_overload_penalized(self):
        scorer = _scorer()
        calm = scorer.score(
            spread_blueprint(2, GROUPS, "paper"), _rates(4, 4, 4)
        )
        slammed = scorer.score(
            spread_blueprint(2, GROUPS, "paper"),
            _rates(400, 400, 400),
        )
        assert slammed.overload > 0.0
        assert slammed.score > calm.score

    def test_solve_memo_is_shared(self):
        memo: dict = {}
        rates = _rates()
        spread = spread_blueprint(2, GROUPS, "paper")
        first = _scorer(memo)
        first.score(spread, rates)
        assert first.solves > 0
        second = _scorer(memo)
        second.score(spread, rates)
        assert second.solves == 0


class TestBatchScoring:
    # score_many is the batched twin of score(): same arithmetic,
    # same floats, bit for bit — satellite guarantee for the search.

    def test_batch_matches_scalar_exactly_on_the_family(self):
        memo: dict = {}
        scorer = _scorer(memo)
        rates = _rates(batch=12.0, olap=20.0, oltp=30.0)
        candidates = enumerate_blueprints(4, GROUPS)
        batch = scorer.score_many(candidates, rates)
        assert len(batch) == len(candidates)
        for index, candidate in enumerate(candidates):
            scalar = scorer.score(candidate, rates)
            materialized = batch.materialize(index)
            assert materialized.score == scalar.score
            assert materialized.objective == scalar.objective
            assert materialized.overload == scalar.overload
            assert materialized.utilization == scalar.utilization
            assert materialized.predicted_s == scalar.predicted_s
            assert materialized.to_dict() == scalar.to_dict()

    def test_batch_handles_mixed_node_counts(self):
        scorer = _scorer({})
        rates = _rates()
        population = (
            enumerate_blueprints(2, GROUPS)
            + enumerate_blueprints(3, GROUPS)
            + enumerate_blueprints(4, GROUPS)
        )
        batch = scorer.score_many(population, rates)
        for index, candidate in enumerate(population):
            scalar = scorer.score(candidate, rates)
            assert batch.materialize(index).to_dict() == (
                scalar.to_dict()
            )

    def test_zero_rates_score_zero_everywhere(self):
        scorer = _scorer({})
        candidates = enumerate_blueprints(3, GROUPS)
        zero = {name: 0.0 for name in _rates()}
        batch = scorer.score_many(candidates, zero)
        for index, candidate in enumerate(candidates):
            materialized = batch.materialize(index)
            scalar = scorer.score(candidate, zero)
            assert materialized.to_dict() == scalar.to_dict()
            assert materialized.score == 0.0
        assert scorer.solves == 0

    def test_batch_feeds_the_shared_memo(self):
        memo: dict = {}
        rates = _rates()
        candidates = enumerate_blueprints(4, GROUPS)
        first = _scorer(memo)
        first.score_many(candidates, rates)
        assert first.solves > 0
        assert len(memo) == first.solves
        # A scalar scorer (and a second batch) hit the memo cold.
        second = _scorer(memo)
        for candidate in candidates:
            second.score(candidate, rates)
        assert second.solves == 0
        third = _scorer(memo)
        third.score_many(candidates, rates)
        assert third.solves == 0

    def test_unknown_forecast_class_is_rejected(self):
        scorer = _scorer({})
        rates = dict(_rates())
        rates["mystery"] = 5.0
        with pytest.raises(PlannerError, match="catalog"):
            scorer.score_many(
                enumerate_blueprints(2, GROUPS), rates
            )

    def test_empty_population_is_fine(self):
        batch = _scorer({}).score_many((), _rates())
        assert len(batch) == 0
        assert batch.materialize_all() == []


class TestBatchScalarEquivalenceProperties:
    # Satellite: hypothesis sweep over random placements, schemes and
    # rate mixes — batch and scalar must agree bit for bit, so the
    # family ranking (score, then canonical key) is identical too.

    hypothesis = pytest.importorskip("hypothesis")

    def test_random_populations_rank_identically(self):
        from hypothesis import given, settings, strategies as st

        schemes = st.sampled_from(sorted(BLUEPRINT_SCHEMES))
        nodes_st = st.integers(min_value=1, max_value=5)

        @st.composite
        def blueprints(draw):
            nodes = draw(nodes_st)
            placement = {}
            for group in GROUPS:
                home = draw(st.sets(
                    st.integers(0, nodes - 1),
                    min_size=1, max_size=nodes,
                ))
                placement[group] = tuple(sorted(home))
            return Blueprint.build(
                nodes,
                placement,
                tuple(
                    draw(schemes) for _ in range(nodes)
                ),
            )

        rate_st = st.floats(
            min_value=0.0, max_value=200.0,
            allow_nan=False, allow_infinity=False,
        )

        memo: dict = {}
        scorer = _scorer(memo)

        @settings(max_examples=25, deadline=None)
        @given(
            population=st.lists(
                blueprints(), min_size=1, max_size=6
            ),
            batch=rate_st, olap=rate_st, oltp=rate_st,
        )
        def check(population, batch, olap, oltp):
            rates = _rates(batch=batch, olap=olap, oltp=oltp)
            scored = scorer.score_many(population, rates)
            scalar = [
                scorer.score(candidate, rates)
                for candidate in population
            ]
            for index in range(len(population)):
                assert scored.materialize(index).to_dict() == (
                    scalar[index].to_dict()
                )
                assert float(scored.scores[index]) == (
                    scalar[index].score
                )
            rank = sorted(
                range(len(population)),
                key=lambda i: (
                    round(float(scored.scores[i]), 9),
                    population[i].key(),
                ),
            )
            scalar_rank = sorted(
                range(len(population)),
                key=lambda i: (
                    round(scalar[i].score, 9),
                    population[i].key(),
                ),
            )
            assert rank == scalar_rank

        check()


class TestTransition:
    def test_tenant_key_matches_cluster_tenant_id(self):
        for group in GROUPS:
            for index in range(12):
                assert tenant_key(group, index) == tenant_id(
                    group, index
                )

    def test_scheme_only_change_moves_nobody(self):
        plan = plan_transition(
            spread_blueprint(3, GROUPS, "paper"),
            spread_blueprint(3, GROUPS, "full"),
            tenants_per_group=10,
            time_s=2.0,
            downtime_s=0.25,
        )
        assert plan.moves == ()
        assert plan.blackout_until_s == pytest.approx(2.25)

    def test_placement_change_moves_exactly_rehomed_tenants(self):
        current = spread_blueprint(4, GROUPS, "paper")
        target = Blueprint.build(
            4,
            {
                "batch": (3,),
                "olap": (0, 1, 2),
                "oltp": (0, 1, 2),
            },
            ("paper", "paper", "paper", "full"),
        )
        tenants = 8
        plan = plan_transition(current, target, tenants, 4.0, 0.5)
        moved = {move.tenant for move in plan.moves}
        for group in GROUPS:
            old_home = current.placement_map()[group]
            new_home = target.placement_map()[group]
            for index in range(tenants):
                expect = (
                    preferred_node(old_home, index)
                    != preferred_node(new_home, index)
                )
                key = tenant_key(group, index)
                assert (key in moved) == expect
        for move in plan.moves:
            assert move.source != move.target

    def test_rejects_mismatched_fleets_and_bad_knobs(self):
        with pytest.raises(PlannerError, match="different fleets"):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(3, GROUPS),
                1, 0.0, 0.0,
            )
        with pytest.raises(PlannerError):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(2, GROUPS),
                0, 0.0, 0.0,
            )
        with pytest.raises(PlannerError):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(2, GROUPS),
                1, 0.0, -1.0,
            )

    def test_schemes_registry_has_full_and_paper(self):
        assert set(BLUEPRINT_SCHEMES) == {"full", "paper"}
