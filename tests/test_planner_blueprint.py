"""Tests for blueprint enumeration, scoring, and transition planning
(repro.planner.blueprint / transition)."""

import pytest

from repro.cluster.workload import cluster_classes, tenant_id
from repro.config import DEFAULT_SYSTEM
from repro.errors import PlannerError
from repro.planner import (
    BLUEPRINT_SCHEMES,
    Blueprint,
    BlueprintScorer,
    enumerate_blueprints,
    plan_transition,
    preferred_node,
    spread_blueprint,
    tenant_key,
)

GROUPS = ("batch", "olap", "oltp")


def _scorer(solve_memo=None):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    return BlueprintScorer(
        DEFAULT_SYSTEM,
        classes=classes,
        targets={"olap": 1.2, "oltp": 0.6},
        max_concurrency=8,
        solve_memo=solve_memo,
    )


def _rates(batch=8.0, olap=8.0, oltp=8.0):
    classes = cluster_classes(DEFAULT_SYSTEM.cores)
    by_tenant: dict = {}
    for name, cls in classes.items():
        by_tenant.setdefault(cls.tenant, []).append(name)
    rates = {}
    for tenant, total in (
        ("batch", batch), ("olap", olap), ("oltp", oltp)
    ):
        for name in by_tenant[tenant]:
            rates[name] = total / len(by_tenant[tenant])
    return rates


class TestBlueprintValueObject:
    def test_build_normalizes_and_keys_deterministically(self):
        first = Blueprint.build(
            2, {"olap": [1, 0, 1], "batch": (0,)}, ("paper", "full")
        )
        second = Blueprint.build(
            2, {"batch": [0], "olap": [0, 1]}, ("paper", "full")
        )
        assert first.key() == second.key()
        assert first.placement_map() == {
            "batch": (0,), "olap": (0, 1)
        }

    def test_rejects_malformed_blueprints(self):
        with pytest.raises(PlannerError, match="schemes"):
            Blueprint.build(2, {"olap": [0]}, ("paper",))
        with pytest.raises(PlannerError, match="scheme"):
            Blueprint.build(1, {"olap": [0]}, ("exotic",))
        with pytest.raises(PlannerError, match="outside"):
            Blueprint.build(2, {"olap": [5]}, ("paper", "paper"))
        with pytest.raises(PlannerError, match="no nodes"):
            Blueprint.build(2, {"olap": []}, ("paper", "paper"))

    def test_preferred_node_cycles_the_home_set(self):
        home = (1, 3, 4)
        assert [preferred_node(home, i) for i in range(5)] == [
            1, 3, 4, 1, 3,
        ]


class TestEnumeration:
    def test_candidates_are_valid_unique_and_bounded(self):
        for nodes in (1, 2, 4):
            candidates = enumerate_blueprints(nodes, GROUPS)
            assert 0 < len(candidates) <= 64
            keys = [c.key() for c in candidates]
            assert len(set(keys)) == len(keys)
            assert keys == sorted(keys)
            for candidate in candidates:
                assert candidate.nodes == nodes

    def test_spread_and_isolation_families_present(self):
        candidates = enumerate_blueprints(4, GROUPS)
        placements = {c.key()[0] for c in candidates}
        spread = spread_blueprint(4, GROUPS, "paper")
        assert spread.key()[0] in placements
        isolating = [
            c for c in candidates
            if c.placement_map()["batch"] != (0, 1, 2, 3)
        ]
        assert isolating

    def test_max_candidates_truncates(self):
        full = enumerate_blueprints(4, GROUPS)
        capped = enumerate_blueprints(4, GROUPS, max_candidates=3)
        assert len(capped) == 3
        assert capped == full[:3]

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(PlannerError):
            enumerate_blueprints(2, ())
        with pytest.raises(PlannerError):
            enumerate_blueprints(2, GROUPS, max_candidates=0)


class TestScoring:
    def test_scoring_is_deterministic(self):
        rates = _rates()
        candidates = enumerate_blueprints(4, GROUPS)
        first = [
            _scorer().score(c, rates).to_dict() for c in candidates
        ]
        second = [
            _scorer().score(c, rates).to_dict() for c in candidates
        ]
        assert first == second

    def test_batch_heavy_forecast_prefers_isolation(self):
        scorer = _scorer()
        rates = _rates(batch=60.0, olap=2.0, oltp=2.0)
        spread = scorer.score(
            spread_blueprint(4, GROUPS, "paper"), rates
        )
        best = min(
            (
                scorer.score(c, rates)
                for c in enumerate_blueprints(4, GROUPS)
            ),
            key=lambda s: (round(s.score, 9), s.blueprint.key()),
        )
        assert best.score < spread.score
        assert best.blueprint.placement_map()["batch"] != (
            0, 1, 2, 3,
        )

    def test_overload_penalized(self):
        scorer = _scorer()
        calm = scorer.score(
            spread_blueprint(2, GROUPS, "paper"), _rates(4, 4, 4)
        )
        slammed = scorer.score(
            spread_blueprint(2, GROUPS, "paper"),
            _rates(400, 400, 400),
        )
        assert slammed.overload > 0.0
        assert slammed.score > calm.score

    def test_solve_memo_is_shared(self):
        memo: dict = {}
        rates = _rates()
        spread = spread_blueprint(2, GROUPS, "paper")
        first = _scorer(memo)
        first.score(spread, rates)
        assert first.solves > 0
        second = _scorer(memo)
        second.score(spread, rates)
        assert second.solves == 0


class TestTransition:
    def test_tenant_key_matches_cluster_tenant_id(self):
        for group in GROUPS:
            for index in range(12):
                assert tenant_key(group, index) == tenant_id(
                    group, index
                )

    def test_scheme_only_change_moves_nobody(self):
        plan = plan_transition(
            spread_blueprint(3, GROUPS, "paper"),
            spread_blueprint(3, GROUPS, "full"),
            tenants_per_group=10,
            time_s=2.0,
            downtime_s=0.25,
        )
        assert plan.moves == ()
        assert plan.blackout_until_s == pytest.approx(2.25)

    def test_placement_change_moves_exactly_rehomed_tenants(self):
        current = spread_blueprint(4, GROUPS, "paper")
        target = Blueprint.build(
            4,
            {
                "batch": (3,),
                "olap": (0, 1, 2),
                "oltp": (0, 1, 2),
            },
            ("paper", "paper", "paper", "full"),
        )
        tenants = 8
        plan = plan_transition(current, target, tenants, 4.0, 0.5)
        moved = {move.tenant for move in plan.moves}
        for group in GROUPS:
            old_home = current.placement_map()[group]
            new_home = target.placement_map()[group]
            for index in range(tenants):
                expect = (
                    preferred_node(old_home, index)
                    != preferred_node(new_home, index)
                )
                key = tenant_key(group, index)
                assert (key in moved) == expect
        for move in plan.moves:
            assert move.source != move.target

    def test_rejects_mismatched_fleets_and_bad_knobs(self):
        with pytest.raises(PlannerError, match="different fleets"):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(3, GROUPS),
                1, 0.0, 0.0,
            )
        with pytest.raises(PlannerError):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(2, GROUPS),
                0, 0.0, 0.0,
            )
        with pytest.raises(PlannerError):
            plan_transition(
                spread_blueprint(2, GROUPS),
                spread_blueprint(2, GROUPS),
                1, 0.0, -1.0,
            )

    def test_schemes_registry_has_full_and_paper(self):
        assert set(BLUEPRINT_SCHEMES) == {"full", "paper"}
