"""Tests for the steady-state workload simulator."""

import pytest

from repro.errors import ModelError
from repro.model.simulator import (
    CounterRates,
    QuerySpec,
    WorkloadSimulator,
    system_counters,
)
from repro.model.streams import AccessProfile, RandomRegion, SequentialStream
from repro.units import MiB

FULL = (1 << 20) - 1


def scan_profile(name="scan"):
    return AccessProfile(name, 1e9, 0.5, 2.0, (),
                         (SequentialStream("col", 2.5),))


def region_profile(name="agg", region_mib=40, apt=1.0):
    return AccessProfile(
        name, 1e9, 10.0, 60.0,
        (RandomRegion("dict", region_mib * MiB, apt),),
        (SequentialStream("codes", 3.0),),
    )


@pytest.fixture
def simulator(spec) -> WorkloadSimulator:
    return WorkloadSimulator(spec)


class TestBasics:
    def test_single_query_converges(self, simulator):
        result = simulator.simulate(
            [QuerySpec("scan", scan_profile(), 22, FULL)]
        )["scan"]
        assert result.throughput_tuples_per_s > 0
        assert result.per_tuple_seconds > 0
        assert result.queries_per_s == pytest.approx(
            result.throughput_tuples_per_s / 1e9
        )

    def test_empty_workload_rejected(self, simulator):
        with pytest.raises(ModelError):
            simulator.simulate([])

    def test_duplicate_names_rejected(self, simulator):
        with pytest.raises(ModelError):
            simulator.simulate(
                [QuerySpec("q", scan_profile(), 22, FULL),
                 QuerySpec("q", scan_profile(), 22, FULL)]
            )

    def test_invalid_query_spec(self):
        with pytest.raises(ModelError):
            QuerySpec("q", scan_profile(), 0, FULL)
        with pytest.raises(ModelError):
            QuerySpec("q", scan_profile(), 1, 0)

    def test_scan_is_bandwidth_bound(self, simulator, spec):
        result = simulator.simulate(
            [QuerySpec("scan", scan_profile(), 22, FULL)]
        )["scan"]
        assert result.dram_bytes_per_s == pytest.approx(
            spec.dram.bandwidth_bytes_per_s, rel=0.05
        )


class TestCacheSensitivity:
    def test_fitting_region_hits(self, simulator):
        result = simulator.simulate(
            [QuerySpec("agg", region_profile(region_mib=4), 22, FULL)]
        )["agg"]
        assert result.region_hit_ratios["dict"] > 0.9

    def test_oversized_region_misses(self, simulator):
        result = simulator.simulate(
            [QuerySpec("agg", region_profile(region_mib=400), 22, FULL)]
        )["agg"]
        assert result.region_hit_ratios["dict"] < 0.5

    def test_restricting_mask_reduces_hits(self, simulator):
        full = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, FULL)]
        )["agg"]
        restricted = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, 0x3)]
        )["agg"]
        assert (
            restricted.region_hit_ratios["dict"]
            < full.region_hit_ratios["dict"]
        )
        assert (
            restricted.throughput_tuples_per_s
            < full.throughput_tuples_per_s
        )


class TestPollutionAndPartitioning:
    def test_scan_pollutes_corunning_region(self, simulator):
        alone = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, FULL)]
        )["agg"]
        together = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, FULL),
             QuerySpec("scan", scan_profile(), 22, FULL)]
        )["agg"]
        assert (
            together.region_hit_ratios["dict"]
            < alone.region_hit_ratios["dict"]
        )

    def test_partitioning_protects_region(self, simulator):
        unpartitioned = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, FULL),
             QuerySpec("scan", scan_profile(), 22, FULL)]
        )
        partitioned = simulator.simulate(
            [QuerySpec("agg", region_profile(), 22, FULL),
             QuerySpec("scan", scan_profile(), 22, 0x3)]
        )
        assert (
            partitioned["agg"].region_hit_ratios["dict"]
            > unpartitioned["agg"].region_hit_ratios["dict"]
        )
        assert (
            partitioned["agg"].throughput_tuples_per_s
            > unpartitioned["agg"].throughput_tuples_per_s
        )
        # The paper's headline property: the restricted scan does not
        # lose throughput (it never reused the cache anyway).
        assert partitioned["scan"].throughput_tuples_per_s >= (
            0.98 * unpartitioned["scan"].throughput_tuples_per_s
        )

    def test_single_way_mask_hurts_scan(self, simulator):
        normal = simulator.simulate(
            [QuerySpec("scan", scan_profile(), 22, 0x3)]
        )["scan"]
        single = simulator.simulate(
            [QuerySpec("scan", scan_profile(), 22, 0x1)]
        )["scan"]
        assert single.throughput_tuples_per_s < (
            0.6 * normal.throughput_tuples_per_s
        )

    def test_smt_penalty_only_when_oversubscribed(self, simulator, spec):
        half = spec.cores // 2
        undersubscribed = simulator.simulate(
            [QuerySpec("a", region_profile("a"), half, FULL),
             QuerySpec("b", region_profile("b"), half, FULL)]
        )
        # Memory streams off, contention only via cache/bandwidth; with
        # half cores each, per-core speed matches an isolated half-core
        # run (no SMT penalty).
        alone = simulator.simulate(
            [QuerySpec("a", region_profile("a"), half, FULL)]
        )
        assert undersubscribed["a"].time_breakdown["compute"] == (
            pytest.approx(alone["a"].time_breakdown["compute"])
        )


class TestCounters:
    def test_scan_counters_match_paper(self, simulator):
        # Sec. IV-A: scan LLC hit ratio below 0.08, MPI ~1.9e-2.
        result = simulator.simulate(
            [QuerySpec("scan", scan_profile(), 22, FULL)]
        )["scan"]
        assert result.counters.llc_hit_ratio < 0.08
        assert result.counters.misses_per_instruction == pytest.approx(
            1.9e-2, rel=0.05
        )

    def test_system_counters_aggregate(self, simulator):
        results = simulator.simulate(
            [QuerySpec("a", scan_profile("a"), 11, FULL),
             QuerySpec("b", scan_profile("b"), 11, FULL)]
        )
        total = system_counters(results)
        assert total.instructions_per_s == pytest.approx(
            sum(r.counters.instructions_per_s for r in results.values())
        )

    def test_counter_rates_properties(self):
        rates = CounterRates(100.0, 10.0, 8.0)
        assert rates.llc_hit_ratio == pytest.approx(0.8)
        assert rates.misses_per_instruction == pytest.approx(0.02)
        empty = CounterRates()
        assert empty.llc_hit_ratio == 0.0
        assert empty.misses_per_instruction == 0.0
