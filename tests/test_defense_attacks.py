"""Tests for the adversarial tenant workloads (repro.defense.attacks)."""

import pytest

from repro.cli import _parse_attack
from repro.defense import (
    ATTACK_PROFILES,
    ATTACK_SCHEMA_VERSION,
    DEFAULT_ATTACK_RATE,
    AttackSpec,
    attack_classes,
    attack_from_dict,
    seeded_attacks,
    validate_attacks,
)
from repro.errors import DefenseError
from repro.operators.base import CacheUsage


class TestSpecValidation:
    def test_rejects_unknown_profile(self):
        with pytest.raises(DefenseError):
            AttackSpec(profile="ddos")

    def test_rejects_negative_start(self):
        with pytest.raises(DefenseError):
            AttackSpec(profile="thrash", start_s=-1.0)

    def test_rejects_stop_before_start(self):
        with pytest.raises(DefenseError):
            AttackSpec(profile="thrash", start_s=2.0, stop_s=2.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(DefenseError):
            AttackSpec(profile="probe", rate_per_s=0.0)


class TestSerialization:
    def test_round_trip(self):
        spec = AttackSpec(
            profile="saturate", start_s=1.5, stop_s=4.0,
            rate_per_s=12.0,
        )
        assert attack_from_dict(spec.to_dict()) == spec

    def test_round_trip_open_ended(self):
        spec = AttackSpec(profile="thrash", start_s=0.0)
        assert spec.stop_s is None
        assert attack_from_dict(spec.to_dict()) == spec

    def test_rejects_unversioned_payload(self):
        payload = AttackSpec(profile="thrash").to_dict()
        del payload["schema_version"]
        with pytest.raises(DefenseError, match="schema_version"):
            attack_from_dict(payload)

    def test_rejects_newer_schema(self):
        payload = AttackSpec(profile="thrash").to_dict()
        payload["schema_version"] = ATTACK_SCHEMA_VERSION + 1
        with pytest.raises(DefenseError, match="newer"):
            attack_from_dict(payload)

    def test_rejects_invalid_schema(self):
        payload = AttackSpec(profile="thrash").to_dict()
        payload["schema_version"] = "one"
        with pytest.raises(DefenseError, match="invalid"):
            attack_from_dict(payload)

    def test_rejects_missing_key(self):
        payload = AttackSpec(profile="thrash").to_dict()
        del payload["rate_per_s"]
        with pytest.raises(DefenseError, match="missing"):
            attack_from_dict(payload)


class TestCanonicalisation:
    def test_order_insensitive(self):
        a = AttackSpec(profile="thrash", start_s=2.0)
        b = AttackSpec(profile="probe", start_s=1.0)
        c = AttackSpec(profile="probe", start_s=1.0, rate_per_s=5.0)
        assert validate_attacks((a, b, c)) == validate_attacks(
            (c, a, b)
        )

    def test_sorted_by_start_then_profile(self):
        late = AttackSpec(profile="thrash", start_s=3.0)
        early = AttackSpec(profile="saturate", start_s=1.0)
        assert validate_attacks((late, early)) == (early, late)


class TestSeededSchedules:
    def test_deterministic_per_seed(self):
        assert seeded_attacks(3, 10.0, 42) == seeded_attacks(
            3, 10.0, 42
        )

    def test_seed_changes_schedule(self):
        assert seeded_attacks(3, 10.0, 42) != seeded_attacks(
            3, 10.0, 43
        )

    def test_schedule_is_valid_and_in_horizon(self):
        attacks = seeded_attacks(5, 20.0, 7)
        assert len(attacks) == 5
        assert attacks == validate_attacks(attacks)
        for attack in attacks:
            assert attack.profile in ATTACK_PROFILES
            assert 0.1 * 20.0 <= attack.start_s <= 0.5 * 20.0
            assert attack.stop_s is None or attack.stop_s <= 20.0
            assert attack.rate_per_s == DEFAULT_ATTACK_RATE

    def test_zero_count_is_empty(self):
        assert seeded_attacks(0, 10.0, 1) == ()

    def test_rejects_negative_count(self):
        with pytest.raises(DefenseError):
            seeded_attacks(-1, 10.0, 1)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(DefenseError):
            seeded_attacks(1, 0.0, 1)


class TestAttackClasses:
    def test_one_class_per_profile_with_own_tenant(self):
        classes = attack_classes()
        assert set(classes) == set(ATTACK_PROFILES)
        for profile, cls in classes.items():
            assert cls.tenant == profile
            assert cls.name == f"atk_{profile}"

    def test_probe_masquerades_as_sensitive(self):
        # The probe occupies the LLC rather than streaming past it, so
        # static classification cannot flag it — detection must go
        # through occupancy x duty instead.
        classes = attack_classes()
        assert classes["probe"].static_cuid is CacheUsage.SENSITIVE
        assert classes["thrash"].static_cuid is CacheUsage.POLLUTING
        assert classes["saturate"].static_cuid is CacheUsage.POLLUTING


class TestCliParsing:
    def test_bare_profile(self):
        assert _parse_attack("thrash") == AttackSpec(profile="thrash")

    def test_full_form(self):
        assert _parse_attack("probe:1.5:6:12") == AttackSpec(
            profile="probe", start_s=1.5, stop_s=6.0, rate_per_s=12.0,
        )

    def test_empty_fields_keep_defaults(self):
        spec = _parse_attack("saturate:2::")
        assert spec.start_s == 2.0
        assert spec.stop_s is None
        assert spec.rate_per_s == DEFAULT_ATTACK_RATE

    def test_rejects_excess_fields(self):
        with pytest.raises(DefenseError):
            _parse_attack("thrash:1:2:3:4")

    def test_rejects_garbage_number(self):
        with pytest.raises(DefenseError):
            _parse_attack("thrash:soon")
