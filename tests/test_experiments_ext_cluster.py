"""Tests for the ext-cluster experiment (fleet routing tables)."""

import pytest

from repro.experiments import ext_cluster


@pytest.fixture(scope="module")
def result():
    return ext_cluster.run(fast=True)


class TestGridTable:
    def test_covers_all_routers_nodes_and_rates(self, result):
        grid_rows = result.select(table="grid")
        expected = (
            len(ext_cluster.FAST_NODE_COUNTS)
            * len(ext_cluster.FAST_LOAD_RATES)
            * len(ext_cluster.ROUTERS)
        )
        assert len(grid_rows) == expected
        assert set(result.column("router")) >= set(
            ext_cluster.ROUTERS
        )

    def test_affinity_beats_hash_on_fleet_p99(self, result):
        """The acceptance scenario: with enough nodes to give the
        router freedom, classifying traffic with the paper's online
        probe and placing it accordingly beats cache-blind consistent
        hashing on the fleet-wide OLAP p99."""
        nodes = max(ext_cluster.FAST_NODE_COUNTS)
        rate = max(ext_cluster.FAST_LOAD_RATES)
        (hash_row,) = result.select(
            table="grid", nodes=nodes, rate_per_s=rate,
            router="hash",
        )
        (affinity_row,) = result.select(
            table="grid", nodes=nodes, rate_per_s=rate,
            router="affinity",
        )
        p99 = result.headers.index("fleet_p99_olap_s")
        assert affinity_row[p99] < hash_row[p99]
        # And it is not trading the other tenant group away.
        oltp_p99 = result.headers.index("fleet_p99_oltp_s")
        assert affinity_row[oltp_p99] <= hash_row[oltp_p99]

    def test_affinity_completes_at_least_as_much(self, result):
        nodes = max(ext_cluster.FAST_NODE_COUNTS)
        rate = max(ext_cluster.FAST_LOAD_RATES)
        (hash_row,) = result.select(
            table="grid", nodes=nodes, rate_per_s=rate,
            router="hash",
        )
        (affinity_row,) = result.select(
            table="grid", nodes=nodes, rate_per_s=rate,
            router="affinity",
        )
        completed = result.headers.index("completed")
        assert affinity_row[completed] >= hash_row[completed]

    def test_no_failovers_without_faults(self, result):
        failovers = result.headers.index("failovers")
        for row in result.select(table="grid"):
            assert row[failovers] == 0


class TestFaultsTable:
    def test_failover_and_loss_accounted(self, result):
        (fault_row,) = result.select(table="faults")
        failovers = result.headers.index("failovers")
        shed = result.headers.index("shed")
        completed = result.headers.index("completed")
        assert fault_row[failovers] > 0
        assert fault_row[shed] > 0
        assert fault_row[completed] > 0

    def test_notes_state_the_headline_and_conservation(self, result):
        assert any("fleet OLAP p99" in note for note in result.notes)
        assert any("conservation" in note for note in result.notes)


class TestMain:
    def test_main_prints_table_and_notes(self, capsys):
        ext_cluster.main(fast=True)
        output = capsys.readouterr().out
        assert "sharded service fleet" in output
        assert "note:" in output
        assert "affinity" in output
