"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.experiments.reporting
import repro.hardware.cat
import repro.model.streams
import repro.resctrl.schemata
import repro.storage.bitpack
import repro.units

MODULES = [
    repro.experiments.reporting,
    repro.hardware.cat,
    repro.model.streams,
    repro.resctrl.schemata,
    repro.storage.bitpack,
    repro.units,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )
    assert results.attempted > 0, (
        f"no doctests collected from {module.__name__}"
    )
