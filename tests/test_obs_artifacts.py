"""Tests for JSON run artifacts (repro.obs.artifacts)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.experiments.reporting import format_table
from repro.experiments.runner import FigureResult
from repro.obs import (
    RunArtifact,
    load_artifact,
    observing,
    write_artifact,
)
from repro.obs.tracing import Span, Tracer


def _figure() -> FigureResult:
    result = FigureResult(
        figure_id="figX",
        title="a test figure",
        headers=("ways", "label", "value"),
    )
    result.add(2, "off", 0.5)
    result.add(2, "on", 0.75)
    result.notes.append("a note")
    return result


class TestRoundTrip:
    def test_write_load_same_rows_and_metrics(self, tmp_path):
        with observing() as (tracer, metrics):
            with tracer.span("figX"):
                metrics.counter("che.solves").inc(3)
                metrics.gauge("report.claims_passed").set(13)
        artifact = RunArtifact(
            experiment="figX",
            figures=[_figure().to_dict()],
            spans=tracer.to_dict(),
            metrics=metrics.snapshot(),
            fast=True,
        )
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)

        assert loaded.experiment == "figX"
        assert loaded.fast is True
        assert loaded.created_at == artifact.created_at
        assert loaded.metrics["counters"]["che.solves"] == 3
        assert loaded.metrics["gauges"]["report.claims_passed"] == 13

        figure = FigureResult.from_dict(loaded.figures[0])
        original = _figure()
        assert figure.rows == original.rows
        assert figure.headers == original.headers
        assert figure.notes == original.notes
        # The reloaded figure renders the identical printed table.
        assert format_table(
            figure.headers, figure.rows, title=figure.title
        ) == format_table(
            original.headers, original.rows, title=original.title
        )

    def test_span_tree_survives(self, tmp_path):
        tracer = Tracer()
        with tracer.span("figX"):
            with tracer.span("pair"):
                with tracer.span("simulate"):
                    pass
        artifact = RunArtifact(
            experiment="figX", spans=tracer.to_dict()
        )
        loaded = load_artifact(write_artifact(artifact, tmp_path))
        span = Span.from_dict(loaded.spans)
        assert span.depth() - 1 == 3  # figX > pair > simulate

    def test_filenames_are_timestamped_and_unique(self, tmp_path):
        artifact = RunArtifact(experiment="figX")
        first = write_artifact(artifact, tmp_path)
        second = write_artifact(artifact, tmp_path)
        assert first != second
        assert first.name.startswith("figX-")
        assert load_artifact(second).experiment == "figX"


class TestSchemaVersions:
    def test_current_version_is_3(self, tmp_path):
        artifact = RunArtifact(
            experiment="figX", jobs=4,
            worker={"pid": 123, "wall_seconds": 0.5},
            seed=11,
        )
        loaded = load_artifact(write_artifact(artifact, tmp_path))
        assert loaded.schema_version == 3
        assert loaded.jobs == 4
        assert loaded.worker == {"pid": 123, "wall_seconds": 0.5}
        assert loaded.seed == 11

    def test_version_1_files_stay_loadable(self, tmp_path):
        # Files written before the parallel executor lack the jobs /
        # worker fields; they default to a sequential run.
        artifact = RunArtifact(experiment="figX")
        path = write_artifact(artifact, tmp_path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 1
        del payload["jobs"]
        del payload["worker"]
        del payload["seed"]
        path.write_text(json.dumps(payload))
        loaded = load_artifact(path)
        assert loaded.schema_version == 1
        assert loaded.jobs == 1
        assert loaded.worker is None
        assert loaded.seed is None

    def test_version_2_files_stay_loadable(self, tmp_path):
        # Files written before the seed plumbing lack the seed field;
        # it defaults to an unseeded run.
        artifact = RunArtifact(experiment="figX", jobs=2)
        path = write_artifact(artifact, tmp_path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 2
        del payload["seed"]
        path.write_text(json.dumps(payload))
        loaded = load_artifact(path)
        assert loaded.schema_version == 2
        assert loaded.jobs == 2
        assert loaded.seed is None


class TestValidation:
    def test_missing_experiment_rejected(self):
        with pytest.raises(ObservabilityError):
            RunArtifact(experiment="")

    def test_unsupported_schema_version(self, tmp_path):
        artifact = RunArtifact(experiment="figX")
        path = write_artifact(artifact, tmp_path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ObservabilityError):
            load_artifact(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_artifact(tmp_path / "absent.json")

    def test_out_dir_created(self, tmp_path):
        nested = tmp_path / "runs" / "nested"
        artifact = RunArtifact(experiment="figX")
        path = write_artifact(artifact, nested)
        assert path.parent == nested
        assert path.exists()
