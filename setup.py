"""Setuptools shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs are unavailable; this file enables pip's legacy
``setup.py develop`` path.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
