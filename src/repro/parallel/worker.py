"""Worker-side entry points for experiment-level fan-out.

:func:`run_experiment_task` is what ``run all --jobs N`` submits to the
process pool: it executes one experiment exactly the way the
sequential CLI would — same observer scope, same printed tables — but
captures everything (stdout, the figure's rows, the span tree, the
metrics snapshot, wall time) into a picklable payload.  The parent
re-emits the payloads *in the sequential schedule order*, so the
combined stdout and the per-experiment artifacts are byte-for-byte
what a ``--jobs 1`` run produces.

Imports of :mod:`repro.cli` happen lazily inside the task: the CLI
imports this package, and pool workers must be able to import this
module without triggering that cycle.
"""

from __future__ import annotations

import io
import os
import time
from contextlib import redirect_stdout
from pathlib import Path

from ..obs.runtime import observing
from .executor import parallel_context


def run_experiment_task(
    name: str,
    fast: bool,
    observe: bool,
    cache_enabled: bool = True,
    disk_dir: str | None = None,
    seed: int | None = None,
    engine: str | None = None,
) -> dict:
    """Run one experiment sequentially in this worker process."""
    from .. import seeding
    from ..cli import EXPERIMENTS
    from ..experiments.runner import FigureResult
    from ..hardware.engine import set_default_engine

    # The parent's run-level seed and engine choice do not cross the
    # process boundary by themselves; re-install them so worker and
    # sequential runs behave identically.
    seeding.set_seed(seed)
    if engine is not None:
        set_default_engine(engine)
    runner, _ = EXPERIMENTS[name]
    started = time.perf_counter()
    stdout = io.StringIO()
    spans = None
    metrics_snapshot = None
    with parallel_context(
        jobs=1,
        cache_enabled=cache_enabled,
        disk_dir=Path(disk_dir) if disk_dir is not None else None,
    ):
        with redirect_stdout(stdout):
            if observe:
                with observing() as (tracer, metrics):
                    with tracer.span(name):
                        result = runner(fast=fast)
                spans = tracer.to_dict()
                metrics_snapshot = metrics.snapshot()
            else:
                result = runner(fast=fast)
    return {
        "name": name,
        "stdout": stdout.getvalue(),
        "figure": (
            result.to_dict() if isinstance(result, FigureResult) else None
        ),
        "spans": spans,
        "metrics": metrics_snapshot,
        "seconds": time.perf_counter() - started,
        "pid": os.getpid(),
    }
