"""Process-pool execution context for experiments and simulations.

Mirrors :mod:`repro.obs.runtime`: code that *could* fan out never holds
a pool reference — it asks this module for the currently installed
:class:`ParallelContext`.  The default context is sequential (one job,
in-memory caching only), so the library behaves exactly like the
pre-parallel code unless a scope opts in::

    with parallel_context(jobs=4, disk_dir="runs/cache"):
        fig09_scan_agg.run(fast=True)   # sweep points fan out

Two levels of fan-out share the one pool:

* **experiment-level** — the CLI maps whole experiments onto the pool
  when several were requested (``run all --jobs 4``); each worker runs
  its experiment sequentially,
* **point-level** — inside a single experiment, the batch APIs
  (:meth:`ExperimentRunner.pair_batch`,
  :meth:`ConcurrencyExperiment.isolated_batch`) ship independent
  simulate() calls to the pool.

Nested pools are never created: a worker process installs a sequential
context before running its experiment.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from .simcache import DEFAULT_CAPACITY, SimulationCache


def _init_worker(parent_sys_path: list[str]) -> None:
    """Worker initializer: inherit the parent's import path.

    With the ``fork`` start method this is redundant; under ``spawn``
    or ``forkserver`` it keeps ``repro`` importable even when the
    parent found it through a runtime ``sys.path`` entry instead of
    ``PYTHONPATH``.
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


@dataclass
class ParallelContext:
    """The currently requested parallelism/caching configuration."""

    jobs: int = 1
    cache_enabled: bool = True
    disk_dir: Path | None = None
    capacity: int = DEFAULT_CAPACITY

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs}")
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
        self._pool: ProcessPoolExecutor | None = None

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def new_cache(self) -> SimulationCache | None:
        """A cache instance honouring this context's configuration.

        Each :class:`~repro.workloads.mixed.ConcurrencyExperiment`
        builds its own (fresh in-memory layer per experiment — the
        hit/miss pattern of ``run all`` is then identical whether the
        experiments run sequentially or on worker processes); the disk
        layer, when configured, is shared through the filesystem.
        """
        if not self.cache_enabled:
            return None
        return SimulationCache(self.capacity, disk_dir=self.disk_dir)

    def pool(self) -> ProcessPoolExecutor | None:
        """The shared process pool (created lazily; None when jobs=1)."""
        if not self.parallel:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(list(sys.path),),
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_DEFAULT = ParallelContext()
_current: ParallelContext = _DEFAULT


def current() -> ParallelContext:
    """The installed context (the sequential default when none is)."""
    return _current


def current_pool() -> ProcessPoolExecutor | None:
    """The active process pool, or None when running sequentially."""
    return _current.pool()


@contextmanager
def parallel_context(
    jobs: int = 1,
    cache_enabled: bool = True,
    disk_dir: str | Path | None = None,
    capacity: int = DEFAULT_CAPACITY,
) -> Iterator[ParallelContext]:
    """Install a context for the duration of a ``with`` block.

    The pool (if one was created) is shut down on exit and the
    previous context restored, so scopes compose like ``observing()``.
    """
    global _current
    context = ParallelContext(
        jobs=jobs,
        cache_enabled=cache_enabled,
        disk_dir=Path(disk_dir) if disk_dir is not None else None,
        capacity=capacity,
    )
    previous = _current
    _current = context
    try:
        yield context
    finally:
        _current = previous
        context.shutdown()
