"""Content-addressed simulation cache.

:func:`evaluate` is the pure-function entry point around
:meth:`~repro.model.simulator.WorkloadSimulator.simulate`: a
:class:`SimulationRequest` carries *everything* the fixed point depends
on — the :class:`~repro.config.SystemSpec`, the
:class:`~repro.model.calibration.Calibration`, the
:class:`~repro.model.simulator.QuerySpec` list (profiles, core counts,
CAT masks) and the solver parameters — so two requests with equal
content produce byte-identical results and may share one solve.

The cache key is the SHA-256 of the request's canonical JSON form
(dataclasses flattened with ``sort_keys=True``; floats serialized via
``repr`` round-trip, which is exact for finite IEEE-754 doubles).  The
query *order* is part of the key: the fixed point's floating-point
summation order follows the caller's list, so aliasing two orderings to
one entry could change results in the last ulp and break the
``--jobs N`` byte-for-byte determinism guarantee.

Two layers sit behind one :class:`SimulationCache` facade:

* an in-memory LRU (per :class:`~repro.workloads.mixed.ConcurrencyExperiment`,
  so repeated baselines inside one figure are solved once),
* an optional on-disk layer under ``<dir>/v<KEY_SCHEMA>/<key>.json``
  (shared across runs — a warm rerun of a figure suite skips every
  solve).  Files are written atomically (temp file + ``os.replace``)
  so concurrent worker processes never observe torn entries.

Cache traffic is published as ``sim.cache.*`` counters on the current
metrics registry (hits / disk_hits / misses / stores / evictions).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

from ..config import SystemSpec
from ..model.calibration import Calibration
from ..model.simulator import QueryResult, QuerySpec, WorkloadSimulator
from ..obs import runtime
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import observing

#: Version of the key/payload schema.  Bump whenever the key payload,
#: the simulator's semantics or the stored-result format changes; the
#: disk layer namespaces entries by it, so stale caches are simply
#: never read.
KEY_SCHEMA = 2  # v2: vectorized Che solver (section search + chunked
#     bracket) shifts results within tolerance; old entries are stale.

#: Default in-memory LRU capacity (entries, not bytes; one entry is a
#: few KiB of result rows).
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class SimulationRequest:
    """One simulate() call, fully described by value."""

    spec: SystemSpec
    calibration: Calibration
    queries: tuple[QuerySpec, ...]
    max_iterations: int = 300
    damping: float = 0.4
    tolerance: float = 1e-6

    def key_payload(self) -> dict:
        """Canonical JSON-serializable form (the content address)."""
        return {
            "key_schema": KEY_SCHEMA,
            "spec": asdict(self.spec),
            "calibration": asdict(self.calibration),
            "queries": [asdict(query) for query in self.queries],
            "solver": {
                "max_iterations": self.max_iterations,
                "damping": self.damping,
                "tolerance": self.tolerance,
            },
        }

    def key(self) -> str:
        canonical = json.dumps(
            self.key_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def solve(self) -> dict[str, QueryResult]:
        """Run the simulator for this request (the cache-miss path)."""
        simulator = WorkloadSimulator(
            self.spec,
            self.calibration,
            max_iterations=self.max_iterations,
            damping=self.damping,
            tolerance=self.tolerance,
        )
        return simulator.simulate(list(self.queries))


def encode_results(results: dict[str, QueryResult]) -> dict:
    """JSON-serializable form of a simulate() result."""
    return {name: result.to_dict() for name, result in results.items()}


def decode_results(payload: dict) -> dict[str, QueryResult]:
    """Rebuild fresh :class:`QueryResult` objects from stored form."""
    return {
        name: QueryResult.from_dict(stored)
        for name, stored in payload.items()
    }


class SimulationCache:
    """In-memory LRU over an optional on-disk layer (see module doc)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        disk_dir: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.disk_dir = (
            Path(disk_dir) / f"v{KEY_SCHEMA}"
            if disk_dir is not None
            else None
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Stored result payload for ``key``, or None.

        Memory is consulted first; a disk hit is promoted into memory.
        The caller counts misses (it knows whether a miss is about to
        be solved or is a duplicate of an in-flight solve).
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            runtime.metrics.counter("sim.cache.hits").inc()
            return payload
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                stored = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                return None  # torn/corrupt entry: treat as a miss
            if stored.get("key_schema") == KEY_SCHEMA:
                payload = stored["results"]
                runtime.metrics.counter("sim.cache.disk_hits").inc()
                self._store_memory(key, payload)
                return payload
        return None

    def put(self, key: str, payload: dict) -> None:
        """Store a result payload in both layers."""
        self._store_memory(key, payload)
        runtime.metrics.counter("sim.cache.stores").inc()
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        document = json.dumps(
            {"key_schema": KEY_SCHEMA, "key": key, "results": payload},
            sort_keys=True,
        )
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(document)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    def _store_memory(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            runtime.metrics.counter("sim.cache.evictions").inc()


# ----------------------------------------------------------------------
# the pure entry point
# ----------------------------------------------------------------------


def solve_request(request: SimulationRequest) -> dict:
    """Worker-side task: solve one request under a private observer.

    Returns a fully picklable payload: the encoded results plus the
    worker's span tree and metrics snapshot, so the parent can merge
    observability data with the existing merge semantics.
    """
    started = time.perf_counter()
    with observing() as (tracer, metrics):
        results = request.solve()
    return {
        "results": encode_results(results),
        "spans": tracer.to_dict(),
        "metrics": metrics.snapshot(),
        "seconds": time.perf_counter() - started,
    }


def _merge_worker_observability(payload: dict) -> None:
    """Fold a worker's spans/metrics into the current observers."""
    if runtime.metrics.enabled:
        runtime.metrics.merge(
            MetricsRegistry.from_snapshot(payload["metrics"])
        )
    if runtime.tracer.enabled:
        runtime.tracer.merge_span_dict(payload["spans"])


def evaluate(
    requests: list[SimulationRequest],
    cache: SimulationCache | None = None,
    pool=None,
) -> list[dict[str, QueryResult]]:
    """Evaluate requests through the cache, fanning misses out.

    Deterministic by construction:

    * results are returned in request order, decoded to fresh objects,
    * lookups are counted in request order, so a duplicate of an
      earlier miss is a hit exactly as it would be sequentially,
    * with a process ``pool``, only *unique* misses are submitted (one
      solve per content key — the same set of solves the sequential
      path performs against a warm in-run cache) and worker
      observability is merged back in submission order.

    With ``cache=None`` nothing is deduplicated: every request is
    solved, mirroring the pre-cache code path exactly.
    """
    if cache is None:
        if pool is None:
            return [request.solve() for request in requests]
        payloads = list(pool.map(solve_request, requests))
        for payload in payloads:
            _merge_worker_observability(payload)
        return [decode_results(p["results"]) for p in payloads]

    keys = [request.key() for request in requests]
    resolved: dict[str, dict] = {}
    pending: list[tuple[str, SimulationRequest]] = []
    pending_keys: set[str] = set()
    for key, request in zip(keys, requests):
        if key in pending_keys:
            # Duplicate of an in-flight solve: the sequential path
            # would find it in the cache by now — count it as a hit.
            runtime.metrics.counter("sim.cache.hits").inc()
            continue
        payload = cache.get(key)
        if payload is not None:
            resolved[key] = payload
            continue
        runtime.metrics.counter("sim.cache.misses").inc()
        pending.append((key, request))
        pending_keys.add(key)

    if pending:
        if pool is not None and len(pending) > 1:
            futures = [
                pool.submit(solve_request, request)
                for _, request in pending
            ]
            for (key, _), future in zip(pending, futures):
                payload = future.result()
                _merge_worker_observability(payload)
                resolved[key] = payload["results"]
                cache.put(key, resolved[key])
        else:
            for key, request in pending:
                resolved[key] = encode_results(request.solve())
                cache.put(key, resolved[key])

    return [decode_results(resolved[key]) for key in keys]
