"""Parallel experiment execution and simulation caching.

Two cooperating pieces (see ``docs/PERFORMANCE.md``):

* :mod:`repro.parallel.executor` — a process-pool context installed
  per scope; experiments and sweep points fan out across it,
* :mod:`repro.parallel.simcache` — a content-addressed cache around
  ``WorkloadSimulator.simulate`` (in-memory LRU + optional on-disk
  layer), so repeated and previously-solved workload fixed points are
  never recomputed.
"""

from .executor import (
    ParallelContext,
    current,
    current_pool,
    parallel_context,
)
from .simcache import (
    KEY_SCHEMA,
    SimulationCache,
    SimulationRequest,
    decode_results,
    encode_results,
    evaluate,
)

__all__ = [
    "KEY_SCHEMA",
    "ParallelContext",
    "SimulationCache",
    "SimulationRequest",
    "current",
    "current_pool",
    "decode_results",
    "encode_results",
    "evaluate",
    "parallel_context",
]
