"""OLTP point select: index lookup followed by projection.

Composite operator matching the paper's S/4HANA OLTP query shape
(Sec. VI-E): locate rows through inverted indexes on key columns, then
project the selected rows to a set of columns via their dictionaries.
The hot working set is the indexes plus the projected columns'
dictionaries — the structures the OLAP scan evicts in Fig. 12.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator
from .index_lookup import IndexLookup
from .project import DictProjection


class PointSelect(PhysicalOperator):
    """``SELECT cols FROM t WHERE k1 = ? AND k2 = ? ...``"""

    def __init__(
        self,
        table: ColumnTable,
        projected_columns: list[str],
        predicates: dict[str, object],
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        if not projected_columns:
            raise StorageError("point select needs projected columns")
        self._table = table
        self._projected = list(projected_columns)
        self._lookup = IndexLookup(table, predicates, calibration)
        self._calibration = calibration

    @property
    def name(self) -> str:
        return "point_select"

    def execute(self) -> dict[str, np.ndarray]:
        """Look up matching rows, then project them."""
        rows = self._lookup.execute()
        projection = DictProjection(
            self._table, self._projected, rows, self._calibration
        )
        result = projection.execute()
        self.stats.index_lookups = self._lookup.stats.index_lookups
        self.stats.dictionary_accesses = (
            projection.stats.dictionary_accesses
        )
        self.stats.rows_processed = int(rows.size)
        return result

    def cache_usage(self) -> CacheUsage:
        """OLTP queries live off resident dictionaries and indexes."""
        return CacheUsage.SENSITIVE

    def access_profile(self, workers: int) -> AccessProfile:
        index_regions = self._lookup.access_profile(workers).regions
        dict_regions = tuple(
            RandomRegion(
                f"dict_{name}",
                self._table.column(name).dictionary_size_bytes,
                accesses_per_tuple=1.0,
                shared=True,
            )
            for name in self._projected
        )
        return AccessProfile(
            name=self.name,
            tuples=1.0,
            compute_cycles_per_tuple=self._calibration.oltp_compute_cycles,
            instructions_per_tuple=(
                self._calibration.oltp_instructions_per_query
            ),
            regions=index_regions + dict_regions,
            streams=(),
            mlp=self._calibration.default_mlp,
        )
