"""Inverted-index point lookup.

The access path of the paper's S/4HANA OLTP query (Sec. VI-E): the
engine intersects the inverted indexes of the primary-key columns to
find qualifying rows, then hands the row ids to a projection.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator


class IndexLookup(PhysicalOperator):
    """Equality lookups on indexed columns, intersected."""

    def __init__(
        self,
        table: ColumnTable,
        predicates: dict[str, object],
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        if not predicates:
            raise StorageError("index lookup needs at least one predicate")
        self._table = table
        self._predicates = dict(predicates)
        self._calibration = calibration
        for column in self._predicates:
            if not table.has_index(column):
                table.create_index(column)

    @property
    def name(self) -> str:
        return "index_lookup"

    def execute(self) -> np.ndarray:
        """Row ids satisfying all equality predicates."""
        row_sets = []
        for column, value in self._predicates.items():
            rows = self._table.index(column).lookup(value)
            row_sets.append(rows)
            self.stats.index_lookups += 1
        result = reduce(np.intersect1d, row_sets)
        self.stats.rows_processed = int(result.size)
        return result

    def cache_usage(self) -> CacheUsage:
        """Index structures want to stay resident: cache-sensitive."""
        return CacheUsage.SENSITIVE

    def access_profile(self, workers: int) -> AccessProfile:
        regions = tuple(
            RandomRegion(
                f"index_{column}",
                self._table.index(column).size_bytes,
                accesses_per_tuple=3.0,  # search + postings walk
                shared=True,
            )
            for column in self._predicates
        )
        return AccessProfile(
            name=self.name,
            tuples=1.0,
            compute_cycles_per_tuple=2_000.0,
            instructions_per_tuple=3_000.0,
            regions=regions,
            streams=(),
            mlp=self._calibration.default_mlp,
        )
