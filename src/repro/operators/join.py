"""Foreign-key join operator (Query 3).

Implements the paper's OLAP-optimised join (Sec. II, III-A):

1. **build**: map the primary keys of R to a bit vector of length N
   (set bit *i* when primary key *i* qualifies),
2. **probe**: for each foreign key of S, test the corresponding bit and
   aggregate the matches.

The bit vector's size (``N/8`` bytes) decides the operator's cache
character — the basis of the paper's *adaptive* CUID category
(Sec. V-B/V-C): a vector far smaller or far larger than the LLC means
the join acts as a polluter; a vector comparable to the LLC makes it
cache-sensitive and deserving of a 60 % allocation instead of 10 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemSpec
from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion, SequentialStream
from ..storage.bitpack import packed_bytes, required_bits
from ..storage.bitvector import BitVector
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator


@dataclass(frozen=True)
class JoinResult:
    """Count of foreign keys that matched a qualifying primary key."""

    matches: int
    probes: int


def classify_join(
    bit_vector_bytes: float, spec: SystemSpec, llc_headroom: float = 2.0
) -> CacheUsage:
    """The paper's simple heuristic (Sec. V-B), made explicit.

    * vector fits in the aggregate private L2 -> it never needs the LLC:
      the probe stream pollutes (restrict to 10 %),
    * vector is comparable to the LLC (up to ``llc_headroom`` times its
      size) -> cache-sensitive (restrict to 60 %, paper Fig. 10b),
    * vector far exceeds the LLC -> misses are compulsory; the join
      behaves like a polluter again.
    """
    if bit_vector_bytes <= 0:
        raise StorageError(
            f"bit_vector_bytes must be > 0: {bit_vector_bytes}"
        )
    if bit_vector_bytes <= spec.l2_total_bytes:
        return CacheUsage.POLLUTING
    if bit_vector_bytes <= llc_headroom * spec.llc.size_bytes:
        return CacheUsage.SENSITIVE
    return CacheUsage.POLLUTING


class ForeignKeyJoin(PhysicalOperator):
    """``SELECT COUNT(*) FROM R, S WHERE R.P = S.F`` via a bit vector."""

    def __init__(
        self,
        pk_table: ColumnTable,
        pk_column: str,
        fk_table: ColumnTable,
        fk_column: str,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        self._pk_table = pk_table
        self._pk = pk_table.column(pk_column)
        self._fk = fk_table.column(fk_column)
        self._spec = spec if spec is not None else SystemSpec()
        self._calibration = calibration
        self._bit_vector: BitVector | None = None

    @property
    def name(self) -> str:
        return "foreign_key_join"

    def build(self) -> BitVector:
        """Build phase: primary keys -> bit vector (1-based keys)."""
        keys = self._pk.materialize().astype(np.int64)
        if keys.size == 0:
            raise StorageError("primary-key column is empty")
        if keys.min() < 1:
            raise StorageError("primary keys must be >= 1")
        length = int(keys.max())
        vector = BitVector.from_positions(length, keys - 1)
        self._bit_vector = vector
        return vector

    def execute(self) -> JoinResult:
        """Build then probe; counts matching foreign keys."""
        vector = self.build()
        foreign = self._fk.materialize().astype(np.int64)
        in_range = (foreign >= 1) & (foreign <= len(vector))
        matches = int(np.count_nonzero(
            vector.test_many(foreign[in_range] - 1)
        ))
        self.stats.bit_vector_probes += int(foreign.size)
        self.stats.rows_processed = int(foreign.size)
        return JoinResult(matches, int(foreign.size))

    @property
    def bit_vector_bytes(self) -> int:
        """Size of the (built or predicted) bit vector."""
        if self._bit_vector is not None:
            return self._bit_vector.size_bytes
        keys = self._pk.materialize()
        return self._calibration.bit_vector_bytes(int(keys.max()))

    def cache_usage(self) -> CacheUsage:
        """Adaptive CUID: the engine resolves it via ``resolve_usage``."""
        return CacheUsage.ADAPTIVE

    def resolve_usage(self) -> CacheUsage:
        """Apply the bit-vector-size heuristic to this instance."""
        return classify_join(self.bit_vector_bytes, self._spec)

    def access_profile(self, workers: int) -> AccessProfile:
        keys = self._pk.materialize()
        return self.profile_from_stats(
            pk_rows=int(keys.max()),
            fk_rows=len(self._fk),
            workers=workers,
            calibration=self._calibration,
        )

    @staticmethod
    def profile_from_stats(
        pk_rows: float,
        fk_rows: float,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "foreign_key_join",
    ) -> AccessProfile:
        """Profile from full-scale statistics.

        The probe phase dominates (|S| >> |R| in the paper's data):
        per probed tuple one random bit-vector access plus the streamed
        foreign-key codes; a small per-worker buffer region models the
        decoded-code staging the engine keeps per chunk.  The bit
        vector is ``software_managed``: HANA's OLAP join partitions its
        probes when the vector outgrows the cache, which bounds the
        DRAM exposure (the reason Fig. 6 degrades by at most ~33 %).
        """
        fk_bits = required_bits(int(pk_rows))
        bytes_per_tuple = packed_bytes(int(fk_rows), fk_bits) / fk_rows
        regions = (
            RandomRegion(
                "bit_vector",
                calibration.bit_vector_bytes(int(pk_rows)),
                accesses_per_tuple=1.0,
                shared=True,
                software_managed=True,
            ),
            RandomRegion(
                "intermediates",
                calibration.join_buffer_bytes_per_worker * workers,
                accesses_per_tuple=calibration.join_buffer_accesses_per_tuple,
                shared=False,
            ),
        )
        return AccessProfile(
            name=name,
            tuples=fk_rows,
            compute_cycles_per_tuple=calibration.join_probe_compute_cycles,
            instructions_per_tuple=calibration.join_instructions_per_tuple,
            regions=regions,
            streams=(SequentialStream("foreign_keys", bytes_per_tuple),),
            mlp=calibration.default_mlp,
        )
