"""Projection with dictionary decompression.

Projecting selected rows to value form requires one dictionary lookup
per (row, column) pair — the random-access pattern that makes OLTP
queries cache-sensitive in the paper's S/4HANA experiment (Sec. VI-E):
the more columns are projected, the more dictionaries must stay
LLC-resident.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator


class DictProjection(PhysicalOperator):
    """Materialise selected rows of selected columns."""

    def __init__(
        self,
        table: ColumnTable,
        columns: list[str],
        rows: np.ndarray,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        if not columns:
            raise StorageError("projection needs at least one column")
        self._table = table
        self._columns = [table.column(name) for name in columns]
        self._rows = np.asarray(rows, dtype=np.int64)
        self._calibration = calibration

    @property
    def name(self) -> str:
        return "dict_projection"

    def execute(self) -> dict[str, np.ndarray]:
        """Decode each projected column at the selected rows."""
        result: dict[str, np.ndarray] = {}
        for column in self._columns:
            result[column.name] = column.values_at(self._rows)
            self.stats.dictionary_accesses += int(self._rows.size)
        self.stats.rows_processed = int(self._rows.size)
        return result

    def cache_usage(self) -> CacheUsage:
        """Projections reuse dictionaries heavily: cache-sensitive."""
        return CacheUsage.SENSITIVE

    def access_profile(self, workers: int) -> AccessProfile:
        regions = tuple(
            RandomRegion(
                f"dict_{column.name}",
                column.dictionary_size_bytes,
                accesses_per_tuple=1.0,
                shared=True,
            )
            for column in self._columns
        )
        return AccessProfile(
            name=self.name,
            tuples=max(1, int(self._rows.size)),
            compute_cycles_per_tuple=20.0,
            instructions_per_tuple=30.0,
            regions=regions,
            streams=(),
            mlp=self._calibration.default_mlp,
        )
