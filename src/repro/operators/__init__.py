"""Physical query operators.

Each operator does two things:

* **execute** for real on the functional column store (results are
  checked against numpy ground truth in the test suite), and
* **describe** its memory behaviour as an
  :class:`~repro.model.streams.AccessProfile` — either from the data it
  actually ran on or from full-scale statistics (``profile_from_stats``)
  so experiments can model the paper's 10^9-row configurations without
  materialising them.

Operators also carry the paper's cache-usage taxonomy (Sec. V-C):
polluting (i), sensitive (ii) or adaptive (iii).
"""

from .aggregate import AggregationResult, GroupedAggregation
from .base import CacheUsage, OperatorStats, PhysicalOperator
from .index_lookup import IndexLookup
from .join import ForeignKeyJoin, JoinResult, classify_join
from .point_select import PointSelect
from .project import DictProjection
from .scan import ColumnScan, ScanResult
from .sort_aggregate import SortAggregation

__all__ = [
    "AggregationResult",
    "CacheUsage",
    "ColumnScan",
    "DictProjection",
    "ForeignKeyJoin",
    "GroupedAggregation",
    "IndexLookup",
    "JoinResult",
    "OperatorStats",
    "PhysicalOperator",
    "PointSelect",
    "ScanResult",
    "SortAggregation",
    "classify_join",
]
