"""Grouped aggregation operator (Query 2).

Follows the paper's description of HANA's algorithm (Sec. III-A):

1. the input is range-partitioned among worker threads,
2. each worker decompresses its values through the *dictionary* (random
   access) and aggregates into a *thread-local hash table*,
3. the local tables are merged into a global hash table.

Its performance-critical working set — dictionary plus hash tables plus
per-worker decompression buffers — is exactly what makes it the paper's
canonical *cache-sensitive* operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion, SequentialStream
from ..storage.bitpack import packed_bytes, required_bits
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator

_AGG_FUNCTIONS = {"MAX", "MIN", "SUM", "COUNT"}


@dataclass(frozen=True)
class AggregationResult:
    """Group keys and their aggregates, sorted by group key."""

    groups: np.ndarray
    aggregates: np.ndarray

    @property
    def num_groups(self) -> int:
        return int(self.groups.size)


def _merge_locals(
    locals_: list[dict[int, float]], function: str
) -> dict[int, float]:
    """Merge thread-local tables into the global result table."""
    merged: dict[int, float] = {}
    for local in locals_:
        for key, value in local.items():
            if key not in merged:
                merged[key] = value
            elif function == "MAX":
                merged[key] = max(merged[key], value)
            elif function == "MIN":
                merged[key] = min(merged[key], value)
            else:  # SUM / COUNT
                merged[key] += value
    return merged


class GroupedAggregation(PhysicalOperator):
    """``SELECT f(v), g FROM t GROUP BY g`` with thread-local tables."""

    def __init__(
        self,
        table: ColumnTable,
        value_column: str,
        group_column: str,
        function: str = "MAX",
        workers: int = 4,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        function = function.upper()
        if function not in _AGG_FUNCTIONS:
            raise StorageError(f"unsupported aggregate: {function!r}")
        if workers < 1:
            raise StorageError(f"workers must be >= 1: {workers}")
        self._table = table
        self._value = table.column(value_column)
        self._group = table.column(group_column)
        self._function = function
        self._workers = workers
        self._calibration = calibration

    @property
    def name(self) -> str:
        return "grouped_aggregation"

    def execute(self) -> AggregationResult:
        """Partition -> local aggregation -> merge, faithfully."""
        rows = len(self._value)
        if rows != len(self._group):
            raise StorageError("value and group columns differ in length")
        value_codes = self._value.codes()
        group_codes = self._group.codes()
        # Decompression through the dictionary: the random-access hot
        # path the paper highlights.
        values = self._value.dictionary.decode(value_codes)
        self.stats.dictionary_accesses += rows

        boundaries = np.linspace(0, rows, self._workers + 1, dtype=np.int64)
        local_tables: list[dict[int, float]] = []
        for worker in range(self._workers):
            start, end = int(boundaries[worker]), int(boundaries[worker + 1])
            local: dict[int, float] = {}
            chunk_groups = group_codes[start:end]
            chunk_values = values[start:end]
            for group_code, value in zip(
                chunk_groups.tolist(), chunk_values.tolist()
            ):
                if group_code not in local:
                    local[group_code] = 1 if self._function == "COUNT" else value
                elif self._function == "MAX":
                    if value > local[group_code]:
                        local[group_code] = value
                elif self._function == "MIN":
                    if value < local[group_code]:
                        local[group_code] = value
                elif self._function == "SUM":
                    local[group_code] += value
                else:  # COUNT
                    local[group_code] += 1
            local_tables.append(local)
            self.stats.hash_table_accesses += end - start

        merged = _merge_locals(local_tables, self._function)
        self.stats.rows_processed = rows
        group_code_array = np.asarray(sorted(merged), dtype=np.int64)
        aggregates = np.asarray(
            [merged[int(code)] for code in group_code_array]
        )
        group_values = self._group.dictionary.decode(group_code_array)
        return AggregationResult(group_values, aggregates)

    def cache_usage(self) -> CacheUsage:
        """Aggregation profits from the whole LLC (CUID category ii)."""
        return CacheUsage.SENSITIVE

    def access_profile(self, workers: int) -> AccessProfile:
        return self.profile_from_stats(
            rows=len(self._value),
            value_distinct=self._value.dictionary.cardinality,
            group_distinct=self._group.dictionary.cardinality,
            workers=workers,
            calibration=self._calibration,
        )

    @staticmethod
    def profile_from_stats(
        rows: float,
        value_distinct: int,
        group_distinct: int,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "grouped_aggregation",
    ) -> AccessProfile:
        """Profile from full-scale statistics.

        Regions:
        * the value column's dictionary (shared, 1 probe/tuple),
        * thread-local + merged hash tables (1 probe/tuple),
        * per-worker decompression buffers (2 touches/tuple).
        Stream: the packed codes of both input columns.
        """
        value_bits = required_bits(value_distinct)
        group_bits = required_bits(group_distinct)
        bytes_per_tuple = (
            packed_bytes(int(rows), value_bits)
            + packed_bytes(int(rows), group_bits)
        ) / rows
        regions = (
            RandomRegion(
                "dictionary",
                calibration.dictionary_bytes(value_distinct),
                accesses_per_tuple=1.0,
                shared=True,
            ),
            RandomRegion(
                "hash_table",
                calibration.hash_table_bytes(group_distinct, workers),
                accesses_per_tuple=1.0,
                shared=False,
            ),
            RandomRegion(
                "intermediates",
                calibration.agg_buffer_bytes_per_worker * workers,
                accesses_per_tuple=calibration.agg_buffer_accesses_per_tuple,
                shared=False,
            ),
        )
        return AccessProfile(
            name=name,
            tuples=rows,
            compute_cycles_per_tuple=calibration.agg_compute_cycles,
            instructions_per_tuple=calibration.agg_instructions_per_tuple,
            regions=regions,
            streams=(SequentialStream("input_codes", bytes_per_tuple),),
            mlp=calibration.default_mlp,
        )
