"""Operator base classes and the cache-usage taxonomy.

The paper annotates every job with a *cache usage identifier* (CUID)
distinguishing three categories (Sec. V-C):

* ``POLLUTING`` — no data reuse, evicts everyone else's lines
  (column scan),
* ``SENSITIVE`` — profits from the whole LLC (grouped aggregation);
  also the *default* for unknown operators, to avoid regressions,
* ``ADAPTIVE`` — polluting or sensitive depending on data
  characteristics (foreign-key join, by bit-vector size).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

from ..model.streams import AccessProfile


class CacheUsage(enum.Enum):
    """The paper's three-way operator classification (Sec. V-C).

    ``UNKNOWN`` extends the taxonomy for online monitoring: a tenant
    that posted no completions in a window (e.g. starved by a
    contention attack) has no throughput signal to classify from, and
    the online classifier returns a stable ``UNKNOWN`` verdict rather
    than dividing by zero or flapping between categories.  Consumers
    treat it like the sensitive default (no mask restriction).
    """

    POLLUTING = "polluting"
    SENSITIVE = "sensitive"
    ADAPTIVE = "adaptive"
    UNKNOWN = "unknown"


@dataclass
class OperatorStats:
    """Bookkeeping filled in by ``execute`` for tests and reporting."""

    rows_processed: int = 0
    dictionary_accesses: int = 0
    hash_table_accesses: int = 0
    bit_vector_probes: int = 0
    index_lookups: int = 0
    extra: dict[str, float] = field(default_factory=dict)


class PhysicalOperator(abc.ABC):
    """Interface every physical operator implements."""

    def __init__(self) -> None:
        self.stats = OperatorStats()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable operator name."""

    @abc.abstractmethod
    def execute(self):
        """Run the operator on its bound data; returns its result."""

    @abc.abstractmethod
    def cache_usage(self) -> CacheUsage:
        """CUID category for the engine's partitioning policy."""

    @abc.abstractmethod
    def access_profile(self, workers: int) -> AccessProfile:
        """Model-facing memory profile of this operator instance."""
