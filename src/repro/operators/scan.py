"""Column scan operator (Query 1).

Evaluates a range predicate directly on the packed dictionary codes:
because the dictionary is order-preserving, ``X > bound`` is rewritten
to ``code >= encode_upper_bound(bound)`` once, and the scan never
touches the dictionary (paper Sec. IV-A).  The scan streams the packed
code vector exactly once — no reuse, strong spatial locality — which
makes it the paper's canonical *cache polluter*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, SequentialStream
from ..storage.bitpack import packed_bytes, required_bits
from ..storage.table import ColumnTable
from .base import CacheUsage, PhysicalOperator


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a counting scan."""

    matches: int
    rows_scanned: int

    @property
    def selectivity(self) -> float:
        if not self.rows_scanned:
            return 0.0
        return self.matches / self.rows_scanned


class ColumnScan(PhysicalOperator):
    """``SELECT COUNT(*) FROM t WHERE t.col > bound`` on packed codes."""

    SUPPORTED_OPS = {">", ">=", "<", "<=", "="}

    def __init__(
        self,
        table: ColumnTable,
        column: str,
        op: str,
        bound,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        if op not in self.SUPPORTED_OPS:
            raise StorageError(f"unsupported scan predicate: {op!r}")
        self._table = table
        self._column = table.column(column)
        self._op = op
        self._bound = bound
        self._calibration = calibration

    @property
    def name(self) -> str:
        return "column_scan"

    def execute(self) -> ScanResult:
        """Count matching rows entirely on compressed codes."""
        codes = self._column.codes()
        dictionary = self._column.dictionary
        if self._op == ">":
            threshold = dictionary.encode_upper_bound(self._bound)
            mask = codes >= threshold
        elif self._op == ">=":
            threshold = dictionary.encode_lower_bound(self._bound)
            mask = codes >= threshold
        elif self._op == "<":
            threshold = dictionary.encode_lower_bound(self._bound)
            mask = codes < threshold
        elif self._op == "<=":
            threshold = dictionary.encode_upper_bound(self._bound)
            mask = codes < threshold
        else:  # "="
            low = dictionary.encode_lower_bound(self._bound)
            high = dictionary.encode_upper_bound(self._bound)
            mask = (codes >= low) & (codes < high)
        matches = int(np.count_nonzero(mask))
        self.stats.rows_processed = len(self._column)
        return ScanResult(matches, len(self._column))

    def matching_rows(self) -> np.ndarray:
        """Row ids of matching tuples (used when feeding projections)."""
        codes = self._column.codes()
        dictionary = self._column.dictionary
        if self._op == "=":
            low = dictionary.encode_lower_bound(self._bound)
            high = dictionary.encode_upper_bound(self._bound)
            mask = (codes >= low) & (codes < high)
        elif self._op == ">":
            mask = codes >= dictionary.encode_upper_bound(self._bound)
        elif self._op == ">=":
            mask = codes >= dictionary.encode_lower_bound(self._bound)
        elif self._op == "<":
            mask = codes < dictionary.encode_lower_bound(self._bound)
        else:  # "<="
            mask = codes < dictionary.encode_upper_bound(self._bound)
        return np.nonzero(mask)[0]

    def cache_usage(self) -> CacheUsage:
        """Scans never reuse data: always polluting (CUID category i)."""
        return CacheUsage.POLLUTING

    def access_profile(self, workers: int) -> AccessProfile:
        return self.profile_from_stats(
            rows=len(self._column),
            distinct=self._column.dictionary.cardinality,
            calibration=self._calibration,
        )

    @staticmethod
    def profile_from_stats(
        rows: float,
        distinct: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "column_scan",
    ) -> AccessProfile:
        """Profile from full-scale statistics (no data required).

        The streamed bytes per tuple follow from the packed code width:
        10^6 distinct values -> 20 bits -> 2.5 B/tuple (paper Sec. III-B).
        """
        bits = required_bits(distinct)
        bytes_per_tuple = packed_bytes(int(rows), bits) / rows
        return AccessProfile(
            name=name,
            tuples=rows,
            compute_cycles_per_tuple=calibration.scan_compute_cycles,
            instructions_per_tuple=calibration.scan_instructions_per_tuple,
            regions=(),
            streams=(SequentialStream("input_codes", bytes_per_tuple),),
            mlp=calibration.default_mlp,
        )
