"""Sort-based grouped aggregation — the algorithmic comparator.

The paper's related work contrasts hash-based aggregation with
cache-efficient sort-based aggregation (Müller et al., SIGMOD'15 [20])
and notes that *both* families remain sensitive to cache pollution.
This operator lets the repository test that claim:

* functionally: sort the group codes, then segmented-reduce — no hash
  tables at all,
* performance-wise: run generation works in L2-sized buffers and the
  merge streams sequentially, so the operator trades the hash table's
  random LLC accesses for extra *bandwidth* (multiple passes over the
  data).  It is therefore far less sensitive to LLC capacity but more
  sensitive to bandwidth contention — the crossover explored in
  ``experiments/ext_sort_vs_hash.py``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import StorageError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion, SequentialStream
from ..storage.bitpack import packed_bytes, required_bits
from ..storage.table import ColumnTable
from .aggregate import AggregationResult
from .base import CacheUsage, PhysicalOperator

_AGG_FUNCTIONS = {"MAX", "MIN", "SUM", "COUNT"}


class SortAggregation(PhysicalOperator):
    """``SELECT f(v), g FROM t GROUP BY g`` via sort + segmented reduce."""

    def __init__(
        self,
        table: ColumnTable,
        value_column: str,
        group_column: str,
        function: str = "MAX",
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        super().__init__()
        function = function.upper()
        if function not in _AGG_FUNCTIONS:
            raise StorageError(f"unsupported aggregate: {function!r}")
        self._table = table
        self._value = table.column(value_column)
        self._group = table.column(group_column)
        self._function = function
        self._calibration = calibration

    @property
    def name(self) -> str:
        return "sort_aggregation"

    def execute(self) -> AggregationResult:
        """Sort by group code, reduce each run — no hash tables."""
        group_codes = self._group.codes()
        values = self._value.dictionary.decode(self._value.codes())
        order = np.argsort(group_codes, kind="stable")
        sorted_groups = group_codes[order]
        sorted_values = values[order]
        self.stats.rows_processed = int(values.size)

        boundaries = np.nonzero(np.diff(sorted_groups))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [sorted_groups.size]])

        aggregates = np.empty(starts.size, dtype=sorted_values.dtype)
        for index, (start, end) in enumerate(zip(starts, ends)):
            segment = sorted_values[start:end]
            if self._function == "MAX":
                aggregates[index] = segment.max()
            elif self._function == "MIN":
                aggregates[index] = segment.min()
            elif self._function == "SUM":
                aggregates[index] = segment.sum()
            else:  # COUNT
                aggregates[index] = segment.size
        group_values = self._group.dictionary.decode(
            sorted_groups[starts]
        )
        return AggregationResult(group_values, aggregates)

    def cache_usage(self) -> CacheUsage:
        """Sorting streams; run buffers live in L2: a polluter."""
        return CacheUsage.POLLUTING

    def access_profile(self, workers: int) -> AccessProfile:
        return self.profile_from_stats(
            rows=len(self._value),
            value_distinct=self._value.dictionary.cardinality,
            group_distinct=self._group.dictionary.cardinality,
            workers=workers,
            calibration=self._calibration,
        )

    @staticmethod
    def merge_passes(
        rows: float, workers: int, fan_in: int = 64,
        run_rows: int = 64 * 1024,
    ) -> int:
        """Multiway-merge passes needed after L2-sized run generation."""
        runs = max(1.0, rows / workers / run_rows)
        return max(1, math.ceil(math.log(runs, fan_in)))

    @staticmethod
    def profile_from_stats(
        rows: float,
        value_distinct: int,
        group_distinct: int,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "sort_aggregation",
    ) -> AccessProfile:
        """Profile: multiple sequential passes, tiny random regions.

        Per tuple: the input codes are read once for run generation and
        once per merge pass (read + write ~ 2x traffic per pass); the
        dictionary is probed once, like the hash variant, to decode the
        aggregated value.
        """
        value_bits = required_bits(value_distinct)
        group_bits = required_bits(group_distinct)
        input_bytes = (
            packed_bytes(int(rows), value_bits)
            + packed_bytes(int(rows), group_bits)
        ) / rows
        passes = SortAggregation.merge_passes(rows, workers)
        # run payload: (group code, value) pairs of ~12 B.
        pass_bytes = 2.0 * passes * 12.0
        regions = (
            RandomRegion(
                "dictionary",
                calibration.dictionary_bytes(value_distinct),
                accesses_per_tuple=1.0,
                shared=True,
            ),
            RandomRegion(
                "run_buffers",
                workers * 256 * 1024,  # L2-sized run generation
                accesses_per_tuple=1.0,
                shared=False,
            ),
        )
        return AccessProfile(
            name=name,
            tuples=rows,
            compute_cycles_per_tuple=(
                calibration.agg_compute_cycles + 6.0 * passes
            ),
            instructions_per_tuple=(
                calibration.agg_instructions_per_tuple + 20.0 * passes
            ),
            regions=regions,
            streams=(
                SequentialStream("input_codes", input_bytes),
                SequentialStream("merge_traffic", pass_bytes),
            ),
            mlp=calibration.default_mlp,
        )
