"""Data generators for the paper's experimental data sets (Sec. III-B).

All generators are seeded for reproducibility.  The paper's tables hold
10^9 rows; functional runs use a scaled-down row count while the
*statistical* parameters (distinct counts, key ranges) that drive the
performance model stay at paper scale via the workload catalogs.
"""

from __future__ import annotations

import numpy as np

from .. import seeding
from ..errors import StorageError

#: Historical default stream, used when neither an explicit seed nor a
#: run-level ``--seed`` is installed.
DEFAULT_DATAGEN_SEED = 0x5CA1AB1E


class DataGenerator:
    """Seeded generator for the micro-benchmark tables of Fig. 3.

    With no argument the seed comes from the run-level seed installed
    by the CLI's ``--seed`` (via :func:`repro.seeding.derive`), falling
    back to the historical constant — existing callers keep generating
    bit-identical tables.
    """

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            seed = seeding.derive(
                "storage.datagen", DEFAULT_DATAGEN_SEED
            )
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def uniform_ints(
        self, rows: int, distinct: int, low: int = 1
    ) -> np.ndarray:
        """Uniform integers in ``[low, low + distinct)`` — Fig. 3 data.

        The paper draws column values uniformly between 1 and N.
        """
        if rows <= 0:
            raise StorageError(f"rows must be > 0: {rows}")
        if distinct <= 0:
            raise StorageError(f"distinct must be > 0: {distinct}")
        return self._rng.integers(low, low + distinct, size=rows,
                                  dtype=np.int64)

    def zipf_ints(
        self, rows: int, distinct: int, skew: float = 1.1, low: int = 1
    ) -> np.ndarray:
        """Zipf-skewed integers (for skew-sensitivity extensions)."""
        if rows <= 0 or distinct <= 0:
            raise StorageError("rows and distinct must be > 0")
        if skew <= 1.0:
            raise StorageError(f"zipf skew must be > 1: {skew}")
        draws = self._rng.zipf(skew, size=rows)
        return low + (draws - 1) % distinct

    def scan_table(self, rows: int, distinct: int = 10**6) -> np.ndarray:
        """Column A.X for Query 1: uniform ints in [1, distinct]."""
        return self.uniform_ints(rows, distinct)

    def aggregation_table(
        self, rows: int, value_distinct: int, group_distinct: int
    ) -> dict[str, np.ndarray]:
        """Columns B.V / B.G for Query 2."""
        return {
            "V": self.uniform_ints(rows, value_distinct),
            "G": self.uniform_ints(rows, group_distinct),
        }

    def join_tables(
        self, pk_rows: int, fk_rows: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columns R.P and S.F for Query 3.

        R.P is a permutation of ``1..pk_rows`` (distinct primary keys);
        S.F references uniformly random primary keys.
        """
        if pk_rows <= 0 or fk_rows <= 0:
            raise StorageError("pk_rows and fk_rows must be > 0")
        primary = self._rng.permutation(np.arange(1, pk_rows + 1))
        foreign = self._rng.integers(1, pk_rows + 1, size=fk_rows,
                                     dtype=np.int64)
        return primary, foreign

    def wide_table(
        self, rows: int, columns: dict[str, int]
    ) -> dict[str, np.ndarray]:
        """A wide table with per-column distinct counts (ACDOCA-like)."""
        if rows <= 0:
            raise StorageError(f"rows must be > 0: {rows}")
        return {
            name: self.uniform_ints(rows, distinct)
            for name, distinct in columns.items()
        }
