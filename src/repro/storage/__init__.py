"""Functional in-memory column store.

A working (small-scale) implementation of the SAP HANA storage concepts
the paper describes in Sec. II: order-preserving dictionary encoding
with bit-packed code vectors, column tables, bit vectors for foreign-key
joins and inverted indexes for OLTP point access.  The physical
operators in :mod:`repro.operators` execute on these structures for
real, while their cache behaviour is summarised for the analytic model.
"""

from .bitpack import pack_codes, required_bits, unpack_codes
from .bitvector import BitVector
from .column import DictEncodedColumn
from .datagen import DataGenerator
from .dictionary import OrderedDictionary
from .index import InvertedIndex
from .table import ColumnTable, Schema, SchemaColumn

__all__ = [
    "BitVector",
    "ColumnTable",
    "DataGenerator",
    "DictEncodedColumn",
    "InvertedIndex",
    "OrderedDictionary",
    "Schema",
    "SchemaColumn",
    "pack_codes",
    "required_bits",
    "unpack_codes",
]
