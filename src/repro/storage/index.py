"""Inverted index for point access.

The S/4HANA OLTP query in the paper's evaluation (Sec. VI-E) locates
rows through the inverted indexes of five primary-key columns before
projecting.  An inverted index maps each distinct value to the sorted
list of row ids holding it.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError


class InvertedIndex:
    """value -> sorted row ids, stored CSR-style for compactness."""

    def __init__(
        self, values: np.ndarray, offsets: np.ndarray, row_ids: np.ndarray
    ) -> None:
        if values.ndim != 1 or offsets.ndim != 1 or row_ids.ndim != 1:
            raise StorageError("index arrays must be one-dimensional")
        if offsets.size != values.size + 1:
            raise StorageError("offsets must have one more entry than values")
        self._values = values
        self._offsets = offsets
        self._row_ids = row_ids

    @classmethod
    def build(cls, column_values: np.ndarray) -> "InvertedIndex":
        """Build the index from a raw column."""
        array = np.asarray(column_values)
        if array.size == 0:
            raise StorageError("cannot index an empty column")
        order = np.argsort(array, kind="stable")
        sorted_values = array[order]
        distinct, first = np.unique(sorted_values, return_index=True)
        offsets = np.concatenate([first, [array.size]]).astype(np.int64)
        return cls(distinct, offsets, order.astype(np.int64))

    @property
    def cardinality(self) -> int:
        return int(self._values.size)

    @property
    def size_bytes(self) -> int:
        return int(
            self._values.nbytes + self._offsets.nbytes + self._row_ids.nbytes
        )

    def lookup(self, value) -> np.ndarray:
        """Row ids holding ``value`` (empty array when absent)."""
        position = int(np.searchsorted(self._values, value))
        if (
            position >= self.cardinality
            or self._values[position] != value
        ):
            return np.zeros(0, dtype=np.int64)
        start = int(self._offsets[position])
        end = int(self._offsets[position + 1])
        return np.sort(self._row_ids[start:end])

    def lookup_many(self, values: np.ndarray) -> np.ndarray:
        """Union of row ids for several values (sorted, deduplicated)."""
        parts = [self.lookup(value) for value in np.asarray(values).ravel()]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(cardinality={self.cardinality}, "
            f"rows={self._row_ids.size})"
        )
