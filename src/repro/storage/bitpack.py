"""Bit-width compression of dictionary codes.

HANA stores the code vector of a column packed to
``ceil(log2(cardinality))`` bits per value (paper Sec. III-B: 10^6
distinct values are stored in 20 bits each).  The packed width is what
determines a scan's streamed bytes per tuple, so the compression is
functionally real here: codes are physically packed into a uint64 word
array and unpacked on demand.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError

_WORD_BITS = 64


def required_bits(cardinality: int) -> int:
    """Bits needed to store codes ``0 .. cardinality-1``.

    >>> required_bits(10**6)
    20
    >>> required_bits(1)
    1
    """
    if cardinality <= 0:
        raise StorageError(f"cardinality must be > 0: {cardinality}")
    return max(1, int(cardinality - 1).bit_length())


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack unsigned codes into a dense little-endian uint64 array."""
    if not 1 <= bits <= 32:
        raise StorageError(f"bits must be in [1, 32]: {bits}")
    array = np.ascontiguousarray(codes, dtype=np.uint64)
    if array.ndim != 1:
        raise StorageError("codes must be one-dimensional")
    if array.size and int(array.max()) >= (1 << bits):
        raise StorageError(
            f"code {int(array.max())} does not fit in {bits} bits"
        )
    total_bits = array.size * bits
    words = np.zeros((total_bits + _WORD_BITS - 1) // _WORD_BITS or 1,
                     dtype=np.uint64)
    positions = np.arange(array.size, dtype=np.uint64) * np.uint64(bits)
    word_index = positions // np.uint64(_WORD_BITS)
    bit_offset = positions % np.uint64(_WORD_BITS)

    # Low part of each value lands in word_index at bit_offset...
    np.bitwise_or.at(words, word_index, array << bit_offset)
    # ...and values straddling a word boundary spill into the next word.
    spill = bit_offset + np.uint64(bits) > np.uint64(_WORD_BITS)
    if np.any(spill):
        high = array[spill] >> (np.uint64(_WORD_BITS) - bit_offset[spill])
        np.bitwise_or.at(words, word_index[spill] + np.uint64(1), high)
    return words


def unpack_codes(words: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Unpack ``count`` codes from a packed uint64 array."""
    if not 1 <= bits <= 32:
        raise StorageError(f"bits must be in [1, 32]: {bits}")
    if count < 0:
        raise StorageError(f"count must be >= 0: {count}")
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    total_bits = count * bits
    needed_words = (total_bits + _WORD_BITS - 1) // _WORD_BITS
    if words.size < needed_words:
        raise StorageError(
            f"packed array too small: {words.size} words for {count} "
            f"codes of {bits} bits"
        )
    positions = np.arange(count, dtype=np.uint64) * np.uint64(bits)
    word_index = positions // np.uint64(_WORD_BITS)
    bit_offset = positions % np.uint64(_WORD_BITS)
    mask = np.uint64((1 << bits) - 1)

    values = words[word_index] >> bit_offset
    spill = bit_offset + np.uint64(bits) > np.uint64(_WORD_BITS)
    if np.any(spill):
        high = words[word_index[spill] + np.uint64(1)] << (
            np.uint64(_WORD_BITS) - bit_offset[spill]
        )
        values[spill] |= high
    return (values & mask).astype(np.uint32)


def packed_bytes(count: int, bits: int) -> int:
    """Size in bytes of ``count`` codes packed at ``bits`` bits each."""
    if count < 0:
        raise StorageError(f"count must be >= 0: {count}")
    if not 1 <= bits <= 32:
        raise StorageError(f"bits must be in [1, 32]: {bits}")
    total_bits = count * bits
    words = (total_bits + _WORD_BITS - 1) // _WORD_BITS
    return words * 8
