"""Column tables and schemas.

Implements the ``CREATE COLUMN TABLE`` DDL surface of the paper's
experiments (Fig. 3): integer columns, optional primary key, bulk load
with dictionary encoding, and per-column storage statistics that feed
the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StorageError
from .column import DictEncodedColumn
from .index import InvertedIndex


@dataclass(frozen=True)
class SchemaColumn:
    """One column declaration."""

    name: str
    data_type: str = "INT"
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("column name must be non-empty")
        if self.data_type.upper() not in {"INT", "BIGINT", "DECIMAL",
                                          "NVARCHAR"}:
            raise StorageError(f"unsupported data type: {self.data_type}")


@dataclass(frozen=True)
class Schema:
    """A table declaration."""

    table_name: str
    columns: tuple[SchemaColumn, ...]

    def __post_init__(self) -> None:
        if not self.table_name:
            raise StorageError("table name must be non-empty")
        if not self.columns:
            raise StorageError(f"table {self.table_name!r} needs columns")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise StorageError(
                f"duplicate column names in {self.table_name!r}: {names}"
            )
        if sum(c.primary_key for c in self.columns) > 1:
            raise StorageError(
                f"table {self.table_name!r}: at most one primary-key column "
                "is supported"
            )

    @property
    def primary_key(self) -> str | None:
        for column in self.columns:
            if column.primary_key:
                return column.name
        return None

    def column(self, name: str) -> SchemaColumn:
        for column in self.columns:
            if column.name == name:
                return column
        raise StorageError(
            f"table {self.table_name!r} has no column {name!r}"
        )


class ColumnTable:
    """A loaded column table: encoded columns plus optional PK index."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._columns: dict[str, DictEncodedColumn] = {}
        self._indexes: dict[str, InvertedIndex] = {}
        self._num_rows = 0

    @property
    def name(self) -> str:
        return self.schema.table_name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def load(self, data: dict[str, np.ndarray]) -> None:
        """Bulk-load the table, replacing any previous contents."""
        expected = {c.name for c in self.schema.columns}
        if set(data) != expected:
            raise StorageError(
                f"load data columns {sorted(data)} do not match schema "
                f"columns {sorted(expected)}"
            )
        lengths = {name: len(values) for name, values in data.items()}
        if len(set(lengths.values())) != 1:
            raise StorageError(f"column lengths differ: {lengths}")
        self._num_rows = next(iter(lengths.values()))
        self._columns = {
            name: DictEncodedColumn.from_values(name, np.asarray(values))
            for name, values in data.items()
        }
        self._indexes = {}
        pk = self.schema.primary_key
        if pk is not None:
            values = np.asarray(data[pk])
            if np.unique(values).size != values.size:
                raise StorageError(
                    f"primary key column {pk!r} contains duplicates"
                )
            self._indexes[pk] = InvertedIndex.build(values)

    def column(self, name: str) -> DictEncodedColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no loaded column {name!r}"
            ) from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def index(self, name: str) -> InvertedIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no index on {name!r}"
            ) from None

    def create_index(self, name: str) -> InvertedIndex:
        """Build an inverted index on a column (OLTP access path)."""
        column = self.column(name)
        index = InvertedIndex.build(column.materialize())
        self._indexes[name] = index
        return index

    def column_names(self) -> list[str]:
        return [c.name for c in self.schema.columns]

    def __repr__(self) -> str:
        return f"ColumnTable(name={self.name!r}, rows={self._num_rows})"
