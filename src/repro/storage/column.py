"""Dictionary-encoded column.

Combines an :class:`~repro.storage.dictionary.OrderedDictionary` with a
bit-packed code vector (paper Sec. II).  Scans operate on the packed
codes; projections decode through the dictionary — the two access
patterns whose cache behaviour the paper contrasts.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from .bitpack import pack_codes, packed_bytes, required_bits, unpack_codes
from .dictionary import OrderedDictionary


class DictEncodedColumn:
    """One column: ordered dictionary + packed codes."""

    def __init__(
        self, name: str, dictionary: OrderedDictionary, codes: np.ndarray
    ) -> None:
        if not name:
            raise StorageError("column needs a non-empty name")
        self.name = name
        self.dictionary = dictionary
        self._bits = required_bits(dictionary.cardinality)
        self._count = int(codes.size)
        if codes.size and int(codes.max()) >= dictionary.cardinality:
            raise StorageError(
                f"column {name!r}: code {int(codes.max())} out of range for "
                f"cardinality {dictionary.cardinality}"
            )
        self._packed = pack_codes(codes, self._bits)

    @classmethod
    def from_values(cls, name: str, values: np.ndarray) -> "DictEncodedColumn":
        """Encode a raw value array into a compressed column."""
        dictionary = OrderedDictionary.from_values(values)
        codes = dictionary.encode(np.asarray(values))
        return cls(name, dictionary, codes)

    def __len__(self) -> int:
        return self._count

    @property
    def bits_per_value(self) -> int:
        """Packed width: ``ceil(log2(cardinality))`` bits."""
        return self._bits

    @property
    def packed_size_bytes(self) -> int:
        """Bytes streamed by a full scan of this column."""
        return packed_bytes(self._count, self._bits)

    @property
    def dictionary_size_bytes(self) -> int:
        return self.dictionary.size_bytes

    def codes(self) -> np.ndarray:
        """Unpack the full code vector (the scan's working form)."""
        return unpack_codes(self._packed, self._bits, self._count)

    def codes_at(self, rows: np.ndarray) -> np.ndarray:
        """Codes of selected rows (for projections / point access)."""
        row_array = np.asarray(rows)
        if row_array.size and (
            row_array.min() < 0 or row_array.max() >= self._count
        ):
            raise StorageError(
                f"row id out of range [0, {self._count}) in column "
                f"{self.name!r}"
            )
        # Unpacking row-by-row mirrors the random access pattern; for
        # the functional result we unpack all and gather, which is
        # equivalent and vectorised.
        return self.codes()[row_array]

    def values_at(self, rows: np.ndarray) -> np.ndarray:
        """Decoded values of selected rows (dictionary random access)."""
        return self.dictionary.decode(self.codes_at(rows))

    def materialize(self) -> np.ndarray:
        """Decode the whole column (used by tests as ground truth)."""
        return self.dictionary.decode(self.codes())

    def __repr__(self) -> str:
        return (
            f"DictEncodedColumn(name={self.name!r}, rows={self._count}, "
            f"bits={self._bits}, dict={self.dictionary.cardinality})"
        )
