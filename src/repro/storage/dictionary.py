"""Order-preserving dictionary encoding.

SAP HANA's column store replaces each value with its position in a
sorted dictionary of the column's distinct values (paper Sec. II).
Because the dictionary is *ordered*, range predicates can be evaluated
directly on the integer codes: ``value > bound`` becomes
``code > encode_bound(bound)`` — the mechanism that lets the column
scan run entirely on compressed data without touching the dictionary
(paper Sec. IV-A).
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError


class OrderedDictionary:
    """Sorted distinct values; code = rank of the value.

    Codes are dense integers ``0 .. cardinality-1`` assigned in value
    order, so value order and code order coincide.
    """

    def __init__(self, sorted_values: np.ndarray) -> None:
        if sorted_values.ndim != 1:
            raise StorageError("dictionary values must be one-dimensional")
        if sorted_values.size == 0:
            raise StorageError("dictionary must not be empty")
        if sorted_values.size > 1 and np.any(np.diff(sorted_values) <= 0):
            raise StorageError("dictionary values must be strictly increasing")
        self._values = sorted_values

    @classmethod
    def from_values(cls, values: np.ndarray) -> "OrderedDictionary":
        """Build the dictionary from a raw (unsorted) column."""
        array = np.asarray(values)
        if array.size == 0:
            raise StorageError("cannot build a dictionary from no values")
        return cls(np.unique(array))

    @property
    def cardinality(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted distinct values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def size_bytes(self) -> int:
        """In-memory footprint of the dictionary payload."""
        return int(self._values.nbytes)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map values to codes; raises on values absent from the domain."""
        array = np.asarray(values)
        codes = np.searchsorted(self._values, array)
        in_range = codes < self.cardinality
        valid = np.zeros(array.shape, dtype=bool)
        valid[in_range] = (
            self._values[codes[in_range]] == array[in_range]
        )
        if not np.all(valid):
            missing = np.asarray(array)[~valid]
            raise StorageError(
                f"values not in dictionary domain: {missing[:5].tolist()}..."
            )
        return codes.astype(np.uint32)

    def encode_lower_bound(self, value) -> int:
        """Smallest code whose value is >= ``value``.

        Used to rewrite range predicates onto codes.  Returns
        ``cardinality`` when every dictionary value is smaller.
        """
        return int(np.searchsorted(self._values, value, side="left"))

    def encode_upper_bound(self, value) -> int:
        """Smallest code whose value is > ``value``."""
        return int(np.searchsorted(self._values, value, side="right"))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to values (the random-access hot path)."""
        array = np.asarray(codes)
        if array.size and (array.min() < 0 or array.max() >= self.cardinality):
            raise StorageError(
                f"code out of range [0, {self.cardinality}): "
                f"min={array.min()}, max={array.max()}"
            )
        return self._values[array]

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return (
            f"OrderedDictionary(cardinality={self.cardinality}, "
            f"bytes={self.size_bytes})"
        )
