"""Bit vector over a dense primary-key domain.

The paper's OLAP join builds a bit vector of length ``N`` over primary
keys ``1..N`` and probes it once per foreign key (Sec. II, III-A).  Its
size — ``N/8`` bytes — is what decides whether the join is cache-
polluting (small vector) or cache-sensitive (vector comparable to the
LLC), the distinction behind the paper's adaptive CUID category.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError


class BitVector:
    """Fixed-length bit set backed by a numpy uint64 array."""

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise StorageError(f"bit vector length must be > 0: {length}")
        self._length = length
        self._words = np.zeros((length + 63) // 64, dtype=np.uint64)

    @classmethod
    def from_positions(
        cls, length: int, positions: np.ndarray
    ) -> "BitVector":
        """Build a vector with the given positions set."""
        vector = cls(length)
        vector.set_many(positions)
        return vector

    def __len__(self) -> int:
        return self._length

    @property
    def size_bytes(self) -> int:
        return int(self._words.nbytes)

    def _check(self, positions: np.ndarray) -> np.ndarray:
        array = np.asarray(positions, dtype=np.int64)
        if array.size and (array.min() < 0 or array.max() >= self._length):
            raise StorageError(
                f"bit position out of range [0, {self._length})"
            )
        return array

    def set_many(self, positions: np.ndarray) -> None:
        array = self._check(positions)
        words = array // 64
        bits = np.uint64(1) << (array % 64).astype(np.uint64)
        np.bitwise_or.at(self._words, words, bits)

    def clear_many(self, positions: np.ndarray) -> None:
        array = self._check(positions)
        words = array // 64
        bits = ~(np.uint64(1) << (array % 64).astype(np.uint64))
        np.bitwise_and.at(self._words, words, bits)

    def test_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised membership probe — the join's inner loop."""
        array = self._check(positions)
        words = self._words[array // 64]
        bits = (array % 64).astype(np.uint64)
        return (words >> bits & np.uint64(1)).astype(bool)

    def set(self, position: int) -> None:
        self.set_many(np.asarray([position]))

    def test(self, position: int) -> bool:
        return bool(self.test_many(np.asarray([position]))[0])

    def count(self) -> int:
        """Population count."""
        return int(np.sum(np.bitwise_count(self._words)))

    def __repr__(self) -> str:
        return (
            f"BitVector(length={self._length}, set={self.count()}, "
            f"bytes={self.size_bytes})"
        )
