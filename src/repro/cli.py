"""Command-line interface: regenerate paper figures and extensions.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig9             # one figure
    python -m repro run all              # every figure + extension
    python -m repro run fig9 --fast      # reduced sweeps
    python -m repro run all --fast --jobs 4
                                         # experiments fan out across
                                         #   4 worker processes
    python -m repro run fig9 --fast --jobs 4
                                         # sweep points fan out instead
    python -m repro run all --fast --cache-dir runs/cache
                                         # persistent simulation cache:
                                         #   warm reruns skip solves
    python -m repro run fig9 --fast --json --trace
                                         # + JSON artifact under runs/
                                         #   and a span-tree printout

``run all`` executes every experiment except ``report`` (the report
re-runs all figures itself, so including it would execute the whole
evaluation twice); ``run report`` stays available directly.

Determinism guarantee: for any ``--jobs`` value the printed tables,
figure rows, notes and artifact figures are byte-for-byte identical to
the sequential run — parallelism only changes wall-clock time (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from . import seeding
from .experiments.runner import FigureResult
from .hardware.engine import ENGINES, set_default_engine
from .obs import (
    MetricsRegistry,
    RunArtifact,
    Span,
    format_spans,
    observing,
    write_artifact,
)
from .parallel import parallel_context
from .parallel.worker import run_experiment_task

from .experiments import (
    ext_baselines,
    ext_cluster,
    ext_defense,
    ext_planner,
    ext_scheduling,
    ext_service,
    ext_skew,
    ext_sort_vs_hash,
    ext_trace_validation,
    fig01_teaser,
    fig04_scan,
    fig05_aggregation,
    fig06_join,
    fig09_scan_agg,
    fig10_agg_join,
    fig11_tpch,
    fig12_oltp,
    summary,
)

EXPERIMENTS: dict[str, tuple[Callable[..., object], str]] = {
    "fig1": (fig01_teaser.main, "teaser: OLTP vs OLAP scan"),
    "fig4": (fig04_scan.main, "column scan vs LLC size"),
    "fig5": (fig05_aggregation.main, "aggregation vs LLC size"),
    "fig6": (fig06_join.main, "FK join vs LLC size"),
    "fig9": (fig09_scan_agg.main, "scan || aggregation, off/on"),
    "fig10": (fig10_agg_join.main, "aggregation || join, 3 schemes"),
    "fig11": (fig11_tpch.main, "scan || TPC-H (SF 100)"),
    "fig12": (fig12_oltp.main, "scan || S/4HANA OLTP"),
    "ext-sched": (ext_scheduling.main, "cache-aware co-scheduling"),
    "ext-cluster": (
        ext_cluster.main,
        "sharded fleet: routing policy x node count x load",
    ),
    "ext-coloring": (ext_baselines.main, "CAT vs page coloring"),
    "ext-defense": (
        ext_defense.main,
        "adversarial tenants: detection + CAT quarantine",
    ),
    "ext-planner": (
        ext_planner.main,
        "forecast-driven blueprint planning vs reactive adaptation",
    ),
    "ext-service": (
        ext_service.main,
        "open-loop query service: load sweep + adaptive mix shift",
    ),
    "ext-skew": (ext_skew.main, "uniform vs Zipf-skewed access"),
    "ext-sort": (ext_sort_vs_hash.main, "hash vs sort aggregation"),
    "ext-trace": (
        ext_trace_validation.main,
        "analytic model vs exact LRU simulation",
    ),
    "report": (
        summary.main,
        "run all figures, check every paper claim (PASS/FAIL)",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Accelerating Concurrent Workloads with "
            "CPU Cache Partitioning' (ICDE 2018)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", help="run experiments")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    run.add_argument(
        "--fast", action="store_true",
        help="reduced sweeps for a quick look",
    )
    run.add_argument(
        "--engine", choices=ENGINES, default=None,
        help=(
            "trace-simulation engine for cache-level experiments: "
            "'fast' (vectorized batch replay, the default) or 'ref' "
            "(per-access reference loop); both produce bit-identical "
            "results, only wall-clock differs"
        ),
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "worker processes: whole experiments fan out when several "
            "were requested, independent sweep points otherwise "
            "(default: 1, fully sequential; results are identical "
            "for any value)"
        ),
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the simulation cache (recompute every solve)",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "persist the simulation cache under DIR (e.g. runs/cache); "
            "warm reruns then skip previously-solved points"
        ),
    )
    run.add_argument(
        "--json", action="store_true",
        help="write a JSON run artifact (rows + spans + metrics)",
    )
    run.add_argument(
        "--out", default="runs", metavar="DIR",
        help="artifact directory for --json (default: runs/)",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="print the span tree after each experiment",
    )
    run.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help=(
            "run-level seed: every stochastic component (data "
            "generators, skew draws) derives its stream from it and "
            "the value is recorded in the run artifact"
        ),
    )

    serve = commands.add_parser(
        "serve",
        help="simulate the open-loop query service",
        description=(
            "Run the discrete-event query service: seeded open-loop "
            "arrivals over the paper's query catalog, bounded "
            "concurrency with queueing/shedding, per-tenant SLO "
            "tracking, and (policy 'adaptive') online CAT "
            "repartitioning.  Deterministic: the same arguments "
            "produce a byte-identical report."
        ),
    )
    serve.add_argument(
        "--profile",
        choices=("poisson", "bursty", "diurnal", "replay"),
        default="poisson",
        help=(
            "arrival process (default: poisson); 'replay' re-drives "
            "a recorded report's exact arrival sequence and requires "
            "--trace-file"
        ),
    )
    serve.add_argument(
        "--trace-file", default=None, metavar="REPORT",
        help=(
            "recorded service report (schema v2+) whose arrival log "
            "to replay; duration, rate, mix and seed come from the "
            "trace, the policy under test from --policy"
        ),
    )
    serve.add_argument(
        "--policy", choices=("none", "static", "adaptive"),
        default="adaptive",
        help=(
            "partitioning policy: none (full LLC for everyone), "
            "static (the paper's scheme), adaptive (online "
            "controller; default)"
        ),
    )
    serve.add_argument(
        "--mix", choices=("olap", "oltp", "shift"), default="olap",
        help=(
            "workload mix: olap-heavy, oltp-heavy, or an olap->oltp "
            "shift at mid-run (default: olap)"
        ),
    )
    serve.add_argument(
        "--duration", type=float, default=20.0, metavar="SECONDS",
        help="arrival horizon in simulated seconds (default: 20)",
    )
    serve.add_argument(
        "--rate", type=float, default=12.0, metavar="PER_S",
        help="nominal offered load in requests/s (default: 12)",
    )
    serve.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="arrival-process seed (recorded in the report)",
    )
    serve.add_argument(
        "--engine", dest="serve_engine",
        choices=("scalar", "vector"), default="vector",
        help=(
            "hot-path implementation: 'vector' (NumPy batched; "
            "default) or 'scalar' (pure-Python reference) — both "
            "produce byte-identical reports"
        ),
    )
    serve.add_argument(
        "--sample-window", type=float, default=None,
        metavar="SECONDS",
        help=(
            "interval sampling: window length in simulated seconds "
            "(default: off — every arrival is simulated)"
        ),
    )
    serve.add_argument(
        "--sample-period", type=int, default=10, metavar="K",
        help=(
            "simulate every K-th window, skipping the rest at O(1) "
            "cost (default: 10; needs --sample-window)"
        ),
    )
    serve.add_argument(
        "--sample-warmup", type=float, default=0.5,
        metavar="FRACTION",
        help=(
            "leading fraction of each simulated window treated as "
            "warmup: arrivals run but are not measured "
            "(default: 0.5)"
        ),
    )
    serve.add_argument(
        "--out", default="runs", metavar="DIR",
        help="report directory (default: runs/)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="print the span tree after the run",
    )

    cluster = commands.add_parser(
        "cluster",
        help="simulate a sharded multi-node service fleet",
        description=(
            "Run N independent service nodes behind a routing layer: "
            "per-node seeded arrival streams, consistent-hash / "
            "least-loaded / cache-affinity routing, optional seeded "
            "node fault injection with ring-based failover, and a "
            "fleet report merging per-node latency histograms into "
            "fleet-wide SLO verdicts.  Deterministic: the same "
            "arguments produce a byte-identical report for any "
            "--jobs value."
        ),
    )
    cluster.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="fleet size (default: 2)",
    )
    cluster.add_argument(
        "--router",
        choices=("hash", "least-loaded", "affinity", "planned"),
        default="hash",
        help=(
            "routing policy: consistent hashing on tenant id, "
            "shortest admission queue, cache-affinity placement, or "
            "planner-installed blueprint homes (default: hash; "
            "--policy planned implies planned)"
        ),
    )
    cluster.add_argument(
        "--profile", choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="per-node arrival process (default: poisson)",
    )
    cluster.add_argument(
        "--policy",
        choices=("none", "static", "adaptive", "planned"),
        default="adaptive",
        help=(
            "per-node CAT partitioning policy; 'planned' hands "
            "partitioning and placement to the fleet planner "
            "(default: adaptive)"
        ),
    )
    cluster.add_argument(
        "--mix", choices=("olap", "oltp", "shift"), default="olap",
        help=(
            "fleet workload mix over the three tenant groups; "
            "'shift' starts OLAP-heavy and flips to OLTP-heavy at "
            "--shift-at (default: olap)"
        ),
    )
    cluster.add_argument(
        "--shift-at", type=float, default=None, metavar="SECONDS",
        help=(
            "with --mix shift: the flip time in simulated seconds "
            "(default: half the duration)"
        ),
    )
    cluster.add_argument(
        "--duration", type=float, default=20.0, metavar="SECONDS",
        help="arrival horizon in simulated seconds (default: 20)",
    )
    cluster.add_argument(
        "--rate", type=float, default=12.0, metavar="PER_S",
        help="offered load per source stream in requests/s "
             "(default: 12)",
    )
    cluster.add_argument(
        "--faults", type=int, default=0, metavar="N",
        help=(
            "inject N seeded node kills (with recovery) drawn from "
            "the run seed (default: 0)"
        ),
    )
    cluster.add_argument(
        "--attack", action="append", default=None,
        metavar="PROFILE[:START[:STOP[:RATE]]]",
        help=(
            "schedule one adversarial tenant stream (thrash, "
            "saturate, or probe); repeatable.  START/STOP are "
            "simulated seconds, RATE requests/s (see docs/DEFENSE.md)"
        ),
    )
    cluster.add_argument(
        "--attacks", type=int, default=0, metavar="N",
        help=(
            "draw N seeded attack schedules from the run seed "
            "(default: 0)"
        ),
    )
    cluster.add_argument(
        "--defense", choices=("off", "jail", "evict"), default="off",
        help=(
            "contention defense: detect adversarial tenant groups "
            "and jail them in a minimal CAT partition; 'evict' also "
            "re-routes convicted groups onto a sacrificial node "
            "(default: off)"
        ),
    )
    cluster.add_argument(
        "--defense-interval", type=float, default=1.0,
        metavar="SECONDS",
        help="detector judgement period (default: 1)",
    )
    cluster.add_argument(
        "--defense-convict", type=int, default=2, metavar="N",
        help=(
            "suspect windows before conviction (default: 2)"
        ),
    )
    cluster.add_argument(
        "--defense-release", type=int, default=3, metavar="N",
        help=(
            "clean windows before a convicted group is released "
            "(default: 3)"
        ),
    )
    cluster.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="fleet seed (recorded in the report)",
    )
    cluster.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "accepted for interface symmetry; the report is "
            "byte-identical for any value (see --fleet-jobs for "
            "actual fan-out)"
        ),
    )
    cluster.add_argument(
        "--fleet-jobs", type=int, default=1, metavar="N",
        help=(
            "simulate nodes on N worker processes (hash router "
            "only — epoch-parallel execution; byte-identical "
            "reports for any value; stateful routers fall back to "
            "sequential with a report-recorded warning) "
            "(default: 1)"
        ),
    )
    cluster.add_argument(
        "--engine", dest="serve_engine",
        choices=("scalar", "vector"), default="vector",
        help=(
            "per-node hot-path implementation (default: vector; "
            "byte-identical reports either way)"
        ),
    )
    cluster.add_argument(
        "--sample-window", type=float, default=None,
        metavar="SECONDS",
        help=(
            "interval sampling: window length in simulated seconds, "
            "applied to every source stream (default: off)"
        ),
    )
    cluster.add_argument(
        "--sample-period", type=int, default=10, metavar="K",
        help=(
            "simulate every K-th window (default: 10; needs "
            "--sample-window)"
        ),
    )
    cluster.add_argument(
        "--sample-warmup", type=float, default=0.5,
        metavar="FRACTION",
        help=(
            "leading fraction of each simulated window treated as "
            "warmup (default: 0.5)"
        ),
    )
    cluster.add_argument(
        "--plan-interval", type=float, default=2.0,
        metavar="SECONDS",
        help=(
            "planned policy: replanning tick period in simulated "
            "seconds (default: 2)"
        ),
    )
    cluster.add_argument(
        "--plan-horizon", type=float, default=4.0,
        metavar="SECONDS",
        help=(
            "planned policy: forecast look-ahead in simulated "
            "seconds (default: 4)"
        ),
    )
    cluster.add_argument(
        "--plan-downtime", type=float, default=0.25,
        metavar="SECONDS",
        help=(
            "planned policy: per-migration tenant blackout in "
            "simulated seconds (default: 0.25)"
        ),
    )
    cluster.add_argument(
        "--plan-forecaster", choices=("ewma", "seasonal"),
        default="seasonal",
        help=(
            "planned policy: per-tenant arrival forecaster "
            "(default: seasonal)"
        ),
    )
    cluster.add_argument(
        "--plan-margin", type=float, default=0.1,
        metavar="FRACTION",
        help=(
            "planned policy: hysteresis — a candidate blueprint must "
            "beat the incumbent's predicted score by this relative "
            "margin to trigger a transition (default: 0.1)"
        ),
    )
    cluster.add_argument(
        "--plan-period", type=float, default=None,
        metavar="SECONDS",
        help=(
            "planned policy: seasonal period in simulated seconds "
            "(default: the run duration)"
        ),
    )
    cluster.add_argument(
        "--plan-train", default=None, metavar="REPORT",
        help=(
            "planned policy: warm-start the forecasters from a "
            "recorded fleet report's arrival_windows block"
        ),
    )
    cluster.add_argument(
        "--search", choices=("enum", "beam"), default="enum",
        help=(
            "planned policy: blueprint candidate generation — score "
            "the bounded enumerated family, or beam-search the full "
            "placement space seeded by it (default: enum)"
        ),
    )
    cluster.add_argument(
        "--beam-width", type=int, default=16, metavar="N",
        help=(
            "planned policy: beam frontier kept per search round "
            "(default: 16)"
        ),
    )
    cluster.add_argument(
        "--search-steps", type=int, default=4, metavar="N",
        help=(
            "planned policy: beam expansion rounds per plan tick "
            "(default: 4)"
        ),
    )
    cluster.add_argument(
        "--search-candidates", type=int, default=2000, metavar="N",
        help=(
            "planned policy: per-tick candidate scoring budget for "
            "the beam search (default: 2000)"
        ),
    )
    cluster.add_argument(
        "--out", default="runs", metavar="DIR",
        help="report directory (default: runs/)",
    )
    cluster.add_argument(
        "--trace", action="store_true",
        help="print the span tree after the run",
    )
    return parser


def expand_experiments(name: str) -> list[str]:
    """Experiment ids to execute for a CLI request.

    ``all`` covers every experiment except ``report``: the report
    re-runs all figures internally, so including it would run the
    whole evaluation twice.
    """
    if name == "all":
        return [key for key in sorted(EXPERIMENTS) if key != "report"]
    return [name]


def _run_observed(name: str, args: argparse.Namespace) -> None:
    """Run one experiment under a tracer/registry; emit artifacts."""
    runner, _ = EXPERIMENTS[name]
    with observing() as (tracer, metrics):
        with tracer.span(name):
            result = runner(fast=args.fast)
    if args.trace:
        print()
        print(format_spans(tracer.root))
    if args.json:
        figures = (
            [result.to_dict()]
            if isinstance(result, FigureResult)
            else []
        )
        artifact = RunArtifact(
            experiment=name,
            figures=figures,
            spans=tracer.to_dict(),
            metrics=metrics.snapshot(),
            fast=args.fast,
            jobs=args.jobs,
            seed=args.seed,
        )
        path = write_artifact(artifact, args.out)
        print(f"artifact: {path}")


def _emit_worker_payload(
    payload: dict, args: argparse.Namespace
) -> None:
    """Re-emit one worker's experiment exactly as a sequential run."""
    print(payload["stdout"], end="")
    if args.trace and payload["spans"] is not None:
        print()
        print(format_spans(Span.from_dict(payload["spans"])))
    if args.json:
        artifact = RunArtifact(
            experiment=payload["name"],
            figures=(
                [payload["figure"]]
                if payload["figure"] is not None
                else []
            ),
            spans=payload["spans"],
            metrics=payload["metrics"]
            or MetricsRegistry().snapshot(),
            fast=args.fast,
            jobs=args.jobs,
            seed=args.seed,
            worker={
                "pid": payload["pid"],
                "wall_seconds": payload["seconds"],
            },
        )
        path = write_artifact(artifact, args.out)
        print(f"artifact: {path}")


def _run_parallel(names: list[str], args: argparse.Namespace) -> None:
    """Experiment-level fan-out: one pool task per experiment.

    Tasks complete in any order; payloads are printed (and their
    artifacts written) in the sequential schedule order, so the
    combined stdout is byte-for-byte the ``--jobs 1`` output.
    """
    observe = args.json or args.trace
    with parallel_context(
        jobs=args.jobs,
        cache_enabled=not args.no_cache,
        disk_dir=args.cache_dir,
    ) as context:
        pool = context.pool()
        futures = [
            pool.submit(
                run_experiment_task,
                name,
                args.fast,
                observe,
                not args.no_cache,
                args.cache_dir,
                args.seed,
                args.engine,
            )
            for name in names
        ]
        for index, future in enumerate(futures):
            if index:
                print()
            _emit_worker_payload(future.result(), args)


def _run_serve(args: argparse.Namespace) -> int:
    """Run one service simulation and write its report."""
    from .errors import ServeError
    from .serve import (
        QueryService,
        ServiceConfig,
        load_trace,
        trace_config,
    )
    from .serve.arrivals import DEFAULT_ARRIVAL_SEED

    if (args.profile == "replay") != (args.trace_file is not None):
        print(
            "error: --profile replay and --trace-file go together "
            "(replay needs a trace; a trace implies replay)",
            file=sys.stderr,
        )
        return 2
    seeding.set_seed(args.seed)
    try:
        arrivals = None
        if args.profile == "replay":
            # The trace's envelope (duration, rate, mix, seed) is
            # authoritative — the run differs only in the policy under
            # test, so latency deltas are attributable to it alone.
            try:
                traced = trace_config(args.trace_file)
                arrivals = load_trace(args.trace_file)
            except ServeError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            config = ServiceConfig(
                profile="replay",
                policy=args.policy,
                mix=traced["mix"],
                duration_s=traced["duration_s"],
                rate_per_s=traced["rate_per_s"],
                seed=traced["seed"],
                max_concurrency=traced["max_concurrency"],
                queue_depth=traced["queue_depth"],
                control_interval_s=traced["control_interval_s"],
                shift_at_s=traced["shift_at_s"],
                olap_p99_s=traced["olap_p99_s"],
                oltp_p99_s=traced["oltp_p99_s"],
                # v2 traces predate interval sampling.
                sample_window_s=traced.get("sample_window_s"),
                sample_period=traced.get("sample_period", 1),
                sample_warmup=traced.get("sample_warmup", 0.5),
            )
            label = str(traced["seed"])
        else:
            config = ServiceConfig(
                profile=args.profile,
                policy=args.policy,
                mix=args.mix,
                duration_s=args.duration,
                rate_per_s=args.rate,
                seed=seeding.derive(
                    "serve.arrivals", DEFAULT_ARRIVAL_SEED
                ),
                sample_window_s=args.sample_window,
                sample_period=args.sample_period,
                sample_warmup=args.sample_warmup,
            )
            label = "default" if args.seed is None else str(args.seed)
        with observing() as (tracer, _):
            with tracer.span("serve"):
                report = QueryService(
                    config, arrivals=arrivals,
                    engine=args.serve_engine,
                ).run()
        if args.trace:
            print()
            print(format_spans(tracer.root))
        path = report.write(
            f"{args.out}/serve-{args.profile}-{args.policy}-"
            f"seed{label}.json"
        )
        print(
            f"serve: profile={args.profile} policy={args.policy} "
            f"mix={config.mix} duration={config.duration_s:g}s "
            f"rate={config.rate_per_s:g}/s seed={label}"
        )
        print(
            f"  arrived={report.arrived} admitted={report.admitted} "
            f"queued={report.queued} shed={report.shed} "
            f"completed={report.completed} "
            f"({report.completed_per_s:.2f}/s)"
        )
        for verdict in report.slo:
            status = "OK" if verdict.ok else "VIOLATED"
            print(
                f"  tenant {verdict.tenant}: n={verdict.completed} "
                f"p50={verdict.p50_s:.3f}s p95={verdict.p95_s:.3f}s "
                f"p99={verdict.p99_s:.3f}s [{status}]"
            )
        controller = report.controller
        if controller.get("enabled"):
            print(
                f"  controller: ticks={controller['ticks']} "
                f"reconfigurations="
                f"{controller['reconfigurations']} at "
                f"{controller['change_times_s']}"
            )
        print(f"report: {path}")
    finally:
        seeding.set_seed(None)
    return 0


def _parse_attack(text: str):
    """Parse one ``--attack PROFILE[:START[:STOP[:RATE]]]`` spec.

    Empty fields keep their defaults, so ``thrash:1::30`` schedules an
    open-ended thrasher from t=1s at 30 requests/s.
    """
    from .defense import DEFAULT_ATTACK_RATE, AttackSpec
    from .errors import DefenseError

    fields = text.split(":")
    if len(fields) > 4:
        raise DefenseError(
            f"attack spec {text!r} has too many fields "
            "(PROFILE[:START[:STOP[:RATE]]])"
        )
    fields += [""] * (4 - len(fields))
    profile, start, stop, rate = fields
    try:
        return AttackSpec(
            profile=profile,
            start_s=float(start) if start else 0.0,
            stop_s=float(stop) if stop else None,
            rate_per_s=float(rate) if rate else DEFAULT_ATTACK_RATE,
        )
    except ValueError as error:
        raise DefenseError(
            f"attack spec {text!r}: {error}"
        ) from error


def _run_cluster(args: argparse.Namespace) -> int:
    """Run one fleet simulation and write its report."""
    from .cluster import Cluster, ClusterConfig, seeded_faults
    from .defense import seeded_attacks
    from .errors import ClusterError, DefenseError, PlannerError
    from .planner import training_from_report
    from .serve.arrivals import DEFAULT_ARRIVAL_SEED

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.fleet_jobs < 1:
        print(
            f"error: --fleet-jobs must be >= 1, got "
            f"{args.fleet_jobs}",
            file=sys.stderr,
        )
        return 2
    # The planned policy and the planned router are one feature; let
    # `--policy planned` alone select both rather than demanding the
    # redundant `--router planned`.
    if args.policy == "planned" and args.router == "hash":
        args.router = "planned"
    training: tuple = ()
    if args.plan_train is not None:
        try:
            with open(args.plan_train, encoding="utf-8") as handle:
                payload = json.load(handle)
            training = training_from_report(payload)
        except OSError as error:
            print(
                f"error: cannot read --plan-train report: {error}",
                file=sys.stderr,
            )
            return 2
        except (json.JSONDecodeError, PlannerError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    seeding.set_seed(args.seed)
    try:
        fleet_seed = seeding.derive("cluster", DEFAULT_ARRIVAL_SEED)
        try:
            faults = (
                seeded_faults(
                    args.nodes, args.faults, args.duration,
                    fleet_seed,
                )
                if args.faults else ()
            )
            attacks = tuple(
                _parse_attack(text) for text in (args.attack or ())
            )
            if args.attacks:
                attacks += seeded_attacks(
                    args.attacks, args.duration, fleet_seed
                )
            config = ClusterConfig(
                nodes=args.nodes,
                router=args.router,
                profile=args.profile,
                policy=args.policy,
                mix=args.mix,
                duration_s=args.duration,
                rate_per_s=args.rate,
                seed=fleet_seed,
                faults=faults,
                sample_window_s=args.sample_window,
                sample_period=args.sample_period,
                sample_warmup=args.sample_warmup,
                shift_at_s=args.shift_at,
                plan_interval_s=args.plan_interval,
                plan_horizon_s=args.plan_horizon,
                plan_downtime_s=args.plan_downtime,
                plan_forecaster=args.plan_forecaster,
                plan_period_s=args.plan_period,
                plan_margin=args.plan_margin,
                plan_search=args.search,
                plan_beam_width=args.beam_width,
                plan_search_steps=args.search_steps,
                plan_search_candidates=args.search_candidates,
                plan_training=training,
                attacks=attacks,
                defense=args.defense,
                defense_interval_s=args.defense_interval,
                defense_convict_windows=args.defense_convict,
                defense_release_windows=args.defense_release,
            )
        except (ClusterError, DefenseError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        with observing() as (tracer, _):
            with tracer.span("cluster"):
                report = Cluster(
                    config, engine=args.serve_engine
                ).run(fleet_jobs=args.fleet_jobs)
        if args.trace:
            print()
            print(format_spans(tracer.root))
        label = "default" if args.seed is None else str(args.seed)
        path = report.write(
            f"{args.out}/cluster-{args.router}-n{args.nodes}-"
            f"seed{label}.json"
        )
        print(
            f"cluster: nodes={args.nodes} router={args.router} "
            f"policy={args.policy} mix={args.mix} "
            f"profile={args.profile} duration={args.duration:g}s "
            f"rate={args.rate:g}/s/node seed={label} "
            f"fleet-jobs={args.fleet_jobs} "
            f"epochs={report.execution['epochs']}"
        )
        for warning in report.execution["warnings"]:
            print(f"  warning: {warning}")
        print(
            f"  generated={report.generated} "
            f"completed={report.completed} "
            f"forwarded={report.forwarded} "
            f"failovers={report.failovers} "
            f"shed(admission={report.shed_admission} "
            f"failure={report.shed_failure} "
            f"no-node={report.shed_no_node})"
        )
        if report.planner.get("enabled"):
            planner = report.planner
            schemes = ",".join(planner["blueprint"]["schemes"])
            search = planner["search"]
            print(
                f"  planner: ticks={planner['ticks']} "
                f"reconfigurations={planner['reconfigurations']} "
                f"migrated={planner['migrated_tenants']} "
                f"deferred={planner['deferred_requests']} "
                f"schemes=[{schemes}]"
            )
            print(
                f"  search: strategy={search['strategy']} "
                f"scored={search['candidates_scored']} "
                f"rounds={search['rounds']} "
                f"improvements={search['frontier_improvements']}"
            )
        defense = report.defense
        if defense.get("enabled") or defense.get("attacks"):
            arrivals = sum(
                defense.get("attack_arrivals", {}).values()
            )
            line = (
                f"  defense: mode={defense['mode']} "
                f"attacks={len(defense['attacks'])} "
                f"attack-arrivals={arrivals}"
            )
            if defense.get("enabled"):
                jailed = sum(
                    defense.get("jail_seconds", {}).values()
                )
                line += (
                    f" convictions={len(defense['convictions'])} "
                    f"false-positives="
                    f"{len(defense['false_positives'])} "
                    f"missed={len(defense['missed'])} "
                    f"jailed={jailed:.2f}s"
                )
            print(line)
        for verdict in report.fleet_slo:
            status = "OK" if verdict.ok else "VIOLATED"
            print(
                f"  fleet {verdict.tenant}: n={verdict.completed} "
                f"p50={verdict.p50_s:.3f}s p95={verdict.p95_s:.3f}s "
                f"p99={verdict.p99_s:.3f}s [{status}]"
            )
        for stats, node_report in zip(
            report.node_stats, report.node_reports
        ):
            extra = ""
            if stats["kills"]:
                extra = (
                    f" kills={stats['kills']} "
                    f"down={stats['downtime_s']:.2f}s "
                    f"lost={stats['failure_shed']}"
                )
            print(
                f"  node {stats['index']}: "
                f"routed={stats['routed_in']} "
                f"completed={node_report.completed} "
                f"shed={node_report.shed}{extra}"
            )
        print(f"report: {path}")
    finally:
        seeding.set_seed(None)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in sorted(EXPERIMENTS.items()):
            print(f"  {name.ljust(width)}  {description}")
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "cluster":
        return _run_cluster(args)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2

    names = expand_experiments(args.experiment)
    if args.engine is not None:
        set_default_engine(args.engine)
    seeding.set_seed(args.seed)
    try:
        if args.jobs > 1 and len(names) > 1:
            _run_parallel(names, args)
            return 0

        with parallel_context(
            jobs=args.jobs,
            cache_enabled=not args.no_cache,
            disk_dir=args.cache_dir,
        ):
            for index, name in enumerate(names):
                if index:
                    print()
                if args.json or args.trace:
                    _run_observed(name, args)
                else:
                    runner, _ = EXPERIMENTS[name]
                    runner(fast=args.fast)
    finally:
        seeding.set_seed(None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
