"""Hardware system specifications.

The default specification reproduces the paper's test machine: a single
socket Intel Xeon E5-2699 v4 (Broadwell-EP) with 22 physical cores, a
shared, inclusive 55 MiB 20-way last-level cache, 64 GB/s DRAM read
bandwidth and 80 ns DRAM access latency (Sec. III-C of the paper).

All simulator components take a :class:`SystemSpec` instead of hard-coded
constants, so experiments can be re-run on scaled-down geometries (useful
for fast trace-driven simulation in tests) or on entirely different
machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import CacheConfigError, ConfigError
from .units import GB, KiB, MiB, NANOSECOND


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    Attributes:
        size_bytes: total capacity of the cache.
        ways: associativity.  The LLC's way count also determines the
            granularity of CAT partitioning (one bitmask bit per way).
        line_bytes: cache-line size; 64 bytes on all modern x86 parts.
    """

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise CacheConfigError(f"cache size must be > 0: {self.size_bytes}")
        if self.ways <= 0:
            raise CacheConfigError(f"ways must be > 0: {self.ways}")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise CacheConfigError(
                f"line size must be a positive power of two: {self.line_bytes}"
            )
        if self.size_bytes % (self.ways * self.line_bytes):
            raise CacheConfigError(
                "cache size must be a multiple of ways * line size: "
                f"{self.size_bytes} % ({self.ways} * {self.line_bytes}) != 0"
            )

    @property
    def sets(self) -> int:
        """Number of cache sets (size / (ways * line size))."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way — the CAT allocation granularity."""
        return self.size_bytes // self.ways

    def scaled(self, factor: float) -> "CacheSpec":
        """Return a geometry with capacity divided by ``factor``.

        Associativity and line size are preserved (they determine CAT
        semantics and spatial locality); only the set count shrinks.
        """
        if factor <= 0:
            raise CacheConfigError(f"scale factor must be > 0: {factor}")
        sets = max(1, round(self.sets / factor))
        return replace(self, size_bytes=sets * self.ways * self.line_bytes)


@dataclass(frozen=True)
class DramSpec:
    """DRAM characteristics as measured by Intel Memory Latency Checker."""

    bandwidth_bytes_per_s: float = 64 * GB
    latency_s: float = 80 * NANOSECOND

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError(
                f"DRAM bandwidth must be > 0: {self.bandwidth_bytes_per_s}"
            )
        if self.latency_s <= 0:
            raise ConfigError(f"DRAM latency must be > 0: {self.latency_s}")


@dataclass(frozen=True)
class SystemSpec:
    """Complete single-socket system description.

    The CAT fields mirror the Xeon E5 v4 implementation: up to 16 classes
    of service (CLOS) and one capacity-bitmask bit per LLC way.
    """

    cores: int = 22
    smt_threads_per_core: int = 2
    frequency_hz: float = 2.2e9
    l1d: CacheSpec = field(default_factory=lambda: CacheSpec(32 * KiB, 8))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(256 * KiB, 8))
    llc: CacheSpec = field(default_factory=lambda: CacheSpec(55 * MiB, 20))
    dram: DramSpec = field(default_factory=DramSpec)
    cat_classes: int = 16
    cat_min_bits: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"core count must be > 0: {self.cores}")
        if self.smt_threads_per_core <= 0:
            raise ConfigError(
                f"SMT threads must be > 0: {self.smt_threads_per_core}"
            )
        if self.frequency_hz <= 0:
            raise ConfigError(f"frequency must be > 0: {self.frequency_hz}")
        if self.cat_classes <= 0:
            raise ConfigError(f"CAT classes must be > 0: {self.cat_classes}")
        if not 1 <= self.cat_min_bits <= self.llc.ways:
            raise ConfigError(
                f"CAT minimum bitmask width {self.cat_min_bits} must be in "
                f"[1, {self.llc.ways}]"
            )

    @property
    def hardware_threads(self) -> int:
        """Logical CPU count (cores * SMT)."""
        return self.cores * self.smt_threads_per_core

    @property
    def full_mask(self) -> int:
        """Capacity bitmask granting access to the entire LLC."""
        return (1 << self.llc.ways) - 1

    @property
    def cycle_s(self) -> float:
        """Duration of one core cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def l2_total_bytes(self) -> int:
        """Aggregate private L2 capacity across all cores."""
        return self.l2.size_bytes * self.cores

    def mask_bytes(self, mask: int) -> int:
        """LLC capacity reachable through a capacity bitmask."""
        if mask < 0 or mask > self.full_mask:
            raise ConfigError(
                f"mask {mask:#x} out of range for {self.llc.ways} ways"
            )
        return bin(mask).count("1") * self.llc.way_bytes

    def mask_fraction(self, mask: int) -> float:
        """Fraction of the LLC reachable through a capacity bitmask."""
        return self.mask_bytes(mask) / self.llc.size_bytes

    def scaled(self, factor: float) -> "SystemSpec":
        """Return a system with all cache capacities divided by ``factor``.

        Used by the trace-driven simulator in tests: cache-sharing
        behaviour is approximately invariant under proportional scaling
        of cache and working-set sizes, but a 55 MiB LLC is expensive to
        simulate line-by-line in Python.
        """
        return replace(
            self,
            l1d=self.l1d.scaled(factor),
            l2=self.l2.scaled(factor),
            llc=self.llc.scaled(factor),
        )


def xeon_e5_2699_v4() -> SystemSpec:
    """The paper's evaluation machine (Sec. III-C)."""
    return SystemSpec()


DEFAULT_SYSTEM = xeon_e5_2699_v4()
