"""Byte- and time-unit helpers used across the simulator.

The paper states hardware parameters in mixed units (MiB caches, GB/s
bandwidth, ns latency).  Centralising the constants avoids the classic
``MB`` / ``MiB`` confusion: cache sizes are binary (powers of two), DRAM
bandwidth is decimal (as reported by Intel MLC).
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3


def format_bytes(num_bytes: float) -> str:
    """Render a byte count in a human-readable binary unit.

    >>> format_bytes(55 * MiB)
    '55.0 MiB'
    >>> format_bytes(512)
    '512 B'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if num_bytes < KiB:
        return f"{int(num_bytes)} B"
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.1f} {name}"
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal GB/s (matching Intel MLC output).

    >>> format_rate(64 * GB)
    '64.0 GB/s'
    """
    if bytes_per_second < 0:
        raise ValueError(
            f"bandwidth must be non-negative, got {bytes_per_second}"
        )
    if bytes_per_second >= GB:
        return f"{bytes_per_second / GB:.1f} GB/s"
    if bytes_per_second >= MB:
        return f"{bytes_per_second / MB:.1f} MB/s"
    return f"{bytes_per_second:.0f} B/s"
