"""Shared-cache occupancy via the Che characteristic-time approximation.

Under LRU, a cache of ``C`` lines evicts a line that has not been
re-referenced for the cache's *characteristic time* ``T`` — the time it
takes the combined insertion traffic to push a line from MRU to LRU.
Che's approximation (Che, Tung & Wang, 2002; widely validated for LRU)
states that an object referenced as a Poisson process with rate
``lambda`` is resident with probability ``1 - exp(-lambda * T)``, where
``T`` solves the fill-constraint

    sum_i  expected_occupancy_i(T)  =  C.

We apply it per cache *actor*:

* a **random region** of ``W`` lines probed uniformly at total rate
  ``a`` has per-line rate ``lambda = a / W`` and expected occupancy
  ``W * (1 - exp(-a/W * T))``; its hit ratio equals its resident
  fraction,
* a **stream** (scan) references each line exactly once at insertion
  rate ``r``; every streamed line then lingers for ``T`` seconds, so
  the stream occupies ``r * T`` lines and never hits.

The second bullet *is* cache pollution in closed form: the higher the
scan's insertion rate, the shorter ``T``, the smaller every region's
resident fraction.  CAT partitioning bounds which segment a stream can
insert into, restoring large ``T`` for the protected segment — exactly
the mechanism the paper exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ModelError
from ..obs import runtime
from .segments import Segment


@dataclass(frozen=True)
class RegionActor:
    """Random-region competitor inside the LLC.

    ``working_lines`` is the region's size in cache lines;
    ``access_rate`` its uniform random reference rate (lines/second)
    *as seen by the LLC* (accesses filtered by private caches excluded).
    """

    query: str
    name: str
    working_lines: float
    access_rate: float

    def __post_init__(self) -> None:
        if self.working_lines <= 0:
            raise ModelError(
                f"region {self.query}/{self.name}: working_lines must be > 0"
            )
        if self.access_rate < 0:
            raise ModelError(
                f"region {self.query}/{self.name}: access_rate must be >= 0"
            )

    def occupancy(self, t_char: float) -> float:
        """Expected resident lines at characteristic time ``t_char``."""
        if self.access_rate == 0:
            return 0.0
        if math.isinf(t_char):
            return self.working_lines
        rate_per_line = self.access_rate / self.working_lines
        return self.working_lines * -math.expm1(-rate_per_line * t_char)

    def hit_ratio(self, t_char: float) -> float:
        """Probability a probe finds its line resident (Che)."""
        if self.access_rate == 0:
            return 1.0
        return self.occupancy(t_char) / self.working_lines


@dataclass(frozen=True)
class StreamActor:
    """Streaming competitor: inserts lines, never re-references them."""

    query: str
    name: str
    insertion_rate: float  # lines/second entering the LLC

    def __post_init__(self) -> None:
        if self.insertion_rate < 0:
            raise ModelError(
                f"stream {self.query}/{self.name}: insertion_rate must be >= 0"
            )

    def occupancy(self, t_char: float) -> float:
        if math.isinf(t_char):
            # A stream in an otherwise idle cache fills whatever is free;
            # callers only reach t=inf when streams are absent or idle.
            return 0.0 if self.insertion_rate == 0 else math.inf
        return self.insertion_rate * t_char


@dataclass
class CacheActorSet:
    """All LLC competitors of one workload, keyed by owning query."""

    regions: list[RegionActor]
    streams: list[StreamActor]

    def for_query(self, query: str) -> "CacheActorSet":
        return CacheActorSet(
            regions=[r for r in self.regions if r.query == query],
            streams=[s for s in self.streams if s.query == query],
        )


def _total_occupancy(
    regions: list[RegionActor], streams: list[StreamActor], t_char: float
) -> float:
    return sum(r.occupancy(t_char) for r in regions) + sum(
        s.occupancy(t_char) for s in streams
    )


def solve_characteristic_time(
    regions: list[RegionActor],
    streams: list[StreamActor],
    capacity_lines: float,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Solve Che's fill constraint for the characteristic time.

    Returns ``inf`` when all actors fit simultaneously (cache never
    fills: every region is fully resident).

    Publishes solver metrics into the current registry
    (``che.solves``, ``che.iterations``, ``che.bracket_expansions``,
    ``che.convergence_failures`` — see docs/OBSERVABILITY.md).
    """
    if capacity_lines <= 0:
        raise ModelError(f"capacity_lines must be > 0: {capacity_lines}")

    metrics = runtime.metrics
    metrics.counter("che.solves").inc()

    streaming = sum(s.insertion_rate for s in streams)
    max_region_lines = sum(
        r.working_lines for r in regions if r.access_rate > 0
    )
    if streaming == 0 and max_region_lines <= capacity_lines:
        return math.inf

    # Bracket the root: occupancy(T) is monotone increasing in T.
    t_low, t_high = 0.0, 1e-9
    expansions = 0
    bracketed = False
    for _ in range(200):
        if _total_occupancy(regions, streams, t_high) >= capacity_lines:
            bracketed = True
            break
        t_high *= 4.0
        expansions += 1
    metrics.counter("che.bracket_expansions").inc(expansions)
    if not bracketed:
        # Demand never reaches capacity (e.g. negligible rates): treat as
        # an unfilled cache.
        return math.inf

    iterations = 0
    converged = False
    for _ in range(max_iterations):
        iterations += 1
        t_mid = 0.5 * (t_low + t_high)
        if _total_occupancy(regions, streams, t_mid) < capacity_lines:
            t_low = t_mid
        else:
            t_high = t_mid
        if t_high - t_low <= tolerance * max(t_high, 1e-30):
            converged = True
            break
    metrics.counter("che.iterations").inc(iterations)
    if not converged:
        metrics.counter("che.convergence_failures").inc()
    return 0.5 * (t_low + t_high)


@dataclass(frozen=True)
class SegmentSolution:
    """Result of solving one segment: T plus per-actor hit/occupancy."""

    segment: Segment
    t_char: float
    region_hit_ratios: dict[tuple[str, str], float]
    region_occupancy_lines: dict[tuple[str, str], float]
    stream_occupancy_lines: dict[tuple[str, str], float]


def solve_segment(
    segment: Segment,
    regions: list[RegionActor],
    streams: list[StreamActor],
    way_lines: float,
) -> SegmentSolution:
    """Solve the Che fixed point for one way-mask segment.

    ``regions``/``streams`` must already be scaled to this segment (the
    caller distributes each query's traffic across its allowed segments
    proportionally to capacity).
    """
    capacity = segment.ways * way_lines
    with runtime.tracer.span("solve_segment"):
        t_char = solve_characteristic_time(regions, streams, capacity)
    hit_ratios = {
        (r.query, r.name): r.hit_ratio(t_char) for r in regions
    }
    region_occ = {(r.query, r.name): r.occupancy(t_char) for r in regions}
    stream_occ = {}
    for s in streams:
        occupancy = s.occupancy(t_char)
        if math.isinf(occupancy):
            occupancy = capacity - sum(region_occ.values())
        stream_occ[(s.query, s.name)] = max(0.0, occupancy)
    return SegmentSolution(segment, t_char, hit_ratios, region_occ, stream_occ)
