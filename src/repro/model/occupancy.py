"""Shared-cache occupancy via the Che characteristic-time approximation.

Under LRU, a cache of ``C`` lines evicts a line that has not been
re-referenced for the cache's *characteristic time* ``T`` — the time it
takes the combined insertion traffic to push a line from MRU to LRU.
Che's approximation (Che, Tung & Wang, 2002; widely validated for LRU)
states that an object referenced as a Poisson process with rate
``lambda`` is resident with probability ``1 - exp(-lambda * T)``, where
``T`` solves the fill-constraint

    sum_i  expected_occupancy_i(T)  =  C.

We apply it per cache *actor*:

* a **random region** of ``W`` lines probed uniformly at total rate
  ``a`` has per-line rate ``lambda = a / W`` and expected occupancy
  ``W * (1 - exp(-a/W * T))``; its hit ratio equals its resident
  fraction,
* a **stream** (scan) references each line exactly once at insertion
  rate ``r``; every streamed line then lingers for ``T`` seconds, so
  the stream occupies ``r * T`` lines and never hits.

The second bullet *is* cache pollution in closed form: the higher the
scan's insertion rate, the shorter ``T``, the smaller every region's
resident fraction.  CAT partitioning bounds which segment a stream can
insert into, restoring large ``T`` for the protected segment — exactly
the mechanism the paper exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..obs import runtime
from .segments import Segment


@dataclass(frozen=True)
class RegionActor:
    """Random-region competitor inside the LLC.

    ``working_lines`` is the region's size in cache lines;
    ``access_rate`` its uniform random reference rate (lines/second)
    *as seen by the LLC* (accesses filtered by private caches excluded).
    """

    query: str
    name: str
    working_lines: float
    access_rate: float

    def __post_init__(self) -> None:
        if self.working_lines <= 0:
            raise ModelError(
                f"region {self.query}/{self.name}: working_lines must be > 0"
            )
        if self.access_rate < 0:
            raise ModelError(
                f"region {self.query}/{self.name}: access_rate must be >= 0"
            )

    def occupancy(self, t_char: float) -> float:
        """Expected resident lines at characteristic time ``t_char``."""
        if self.access_rate == 0:
            return 0.0
        if math.isinf(t_char):
            return self.working_lines
        rate_per_line = self.access_rate / self.working_lines
        return self.working_lines * -math.expm1(-rate_per_line * t_char)

    def hit_ratio(self, t_char: float) -> float:
        """Probability a probe finds its line resident (Che)."""
        if self.access_rate == 0:
            return 1.0
        return self.occupancy(t_char) / self.working_lines


@dataclass(frozen=True)
class StreamActor:
    """Streaming competitor: inserts lines, never re-references them."""

    query: str
    name: str
    insertion_rate: float  # lines/second entering the LLC

    def __post_init__(self) -> None:
        if self.insertion_rate < 0:
            raise ModelError(
                f"stream {self.query}/{self.name}: insertion_rate must be >= 0"
            )

    def occupancy(self, t_char: float) -> float:
        if math.isinf(t_char):
            # A stream in an otherwise idle cache fills whatever is free;
            # callers only reach t=inf when streams are absent or idle.
            return 0.0 if self.insertion_rate == 0 else math.inf
        return self.insertion_rate * t_char


@dataclass
class CacheActorSet:
    """All LLC competitors of one workload, keyed by owning query."""

    regions: list[RegionActor]
    streams: list[StreamActor]

    def for_query(self, query: str) -> "CacheActorSet":
        return CacheActorSet(
            regions=[r for r in self.regions if r.query == query],
            streams=[s for s in self.streams if s.query == query],
        )


def _total_occupancy(
    regions: list[RegionActor], streams: list[StreamActor], t_char: float
) -> float:
    return sum(r.occupancy(t_char) for r in regions) + sum(
        s.occupancy(t_char) for s in streams
    )


#: Bracket sweep: candidate upper bounds ``1e-9 * 4**k`` — the same
#: geometric schedule the scalar solver walked one step at a time,
#: evaluated in a single vectorized pass.  ``4**199 * 1e-9`` is still a
#: finite double (~6e110), far past any physical characteristic time.
_BRACKET_STEPS = 200
_BRACKET_GRID = 1e-9 * 4.0 ** np.arange(_BRACKET_STEPS, dtype=np.float64)
#: Bracket candidates evaluated per chunk: the scan starts at the
#: analytic lower-bound index, so one chunk almost always brackets the
#: root without touching the rest of the grid.
_BRACKET_CHUNK = 16

#: Interior points per section-search round.  Each round narrows the
#: bracket by ``_SECTION_POINTS + 1``x, so convergence to a 1e-6
#: relative width takes ~4 rounds instead of ~30 bisection halvings —
#: and every round is one vectorized occupancy evaluation (a wider
#: grid costs nearly nothing; the per-round Python/numpy dispatch is
#: what the hot path pays for).
_SECTION_POINTS = 46
_SECTION_FRACTIONS = (
    np.arange(1, _SECTION_POINTS + 1, dtype=np.float64)
    / (_SECTION_POINTS + 1)
)


def _actor_arrays(
    regions: list[RegionActor], streams: list[StreamActor]
) -> tuple[np.ndarray, np.ndarray, float]:
    """Struct-of-arrays view of the competitors (idle regions dropped).

    Returns ``(working_lines, rate_per_line, streaming_rate)``; the
    aggregate stream term is linear in ``t`` so all streams collapse
    into one scalar insertion rate.
    """
    active = [r for r in regions if r.access_rate > 0]
    lines = np.array(
        [r.working_lines for r in active], dtype=np.float64
    )
    per_line = np.array(
        [r.access_rate / r.working_lines for r in active],
        dtype=np.float64,
    )
    streaming = float(sum(s.insertion_rate for s in streams))
    return lines, per_line, streaming


def _occupancy_grid(
    lines: np.ndarray,
    per_line: np.ndarray,
    streaming: float,
    ts: np.ndarray,
) -> np.ndarray:
    """Total expected occupancy at each candidate time (vectorized)."""
    if lines.size:
        totals = -np.expm1(-(ts[:, None] * per_line)) @ lines
    else:
        totals = np.zeros(ts.shape, dtype=np.float64)
    return totals + streaming * ts


def solve_characteristic_time(
    regions: list[RegionActor],
    streams: list[StreamActor],
    capacity_lines: float,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Solve Che's fill constraint for the characteristic time.

    Returns ``inf`` when all actors fit simultaneously (cache never
    fills: every region is fully resident).

    The solver is vectorized struct-of-arrays NumPy: the geometric
    bracket sweep is one batched occupancy evaluation, and the root is
    then isolated by a section search that evaluates
    ``_SECTION_POINTS`` interior candidates per round — the fleet/serve
    hot path calls this thousands of times per simulated second, so the
    per-actor Python loop of the original bisection dominated entire
    fleet runs.

    Publishes solver metrics into the current registry
    (``che.solves``, ``che.iterations``, ``che.bracket_expansions``,
    ``che.convergence_failures`` — see docs/OBSERVABILITY.md).
    """
    lines, per_line, streaming = _actor_arrays(regions, streams)
    return solve_characteristic_time_arrays(
        lines, per_line, streaming, capacity_lines,
        tolerance=tolerance, max_iterations=max_iterations,
    )


def solve_characteristic_time_arrays(
    lines: np.ndarray,
    per_line: np.ndarray,
    streaming: float,
    capacity_lines: float,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Array-level core of :func:`solve_characteristic_time`.

    ``lines``/``per_line`` are the active regions' working sets and
    per-line reference rates (struct-of-arrays, idle regions already
    dropped); ``streaming`` the aggregate stream insertion rate.  The
    simulator's hot path calls this directly so the fixed-point loop
    never materialises per-round actor objects.
    """
    if capacity_lines <= 0:
        raise ModelError(f"capacity_lines must be > 0: {capacity_lines}")

    metrics = runtime.metrics
    metrics.counter("che.solves").inc()

    if streaming == 0 and float(lines.sum()) <= capacity_lines:
        return math.inf

    with np.errstate(over="ignore"):
        # Bracket the root: occupancy(T) is monotone increasing in T,
        # so searchsorted against the grid's occupancies finds the
        # first candidate at or above capacity; its predecessor
        # lower-bounds the root.  ``1 - e^-x <= x`` gives the analytic
        # lower bound ``T >= capacity / (sum(w_i r_i) + s)``, so the
        # scan starts at that grid index and walks forward in chunks —
        # usually one chunk — instead of evaluating all candidates.
        demand_rate = float(per_line @ lines) + streaming
        if demand_rate <= 0.0:
            # Zero demand (including denormal per-line rates whose
            # product underflows to 0.0): no insertions ever fill the
            # cache, at any characteristic time.
            return math.inf
        start = int(
            _BRACKET_GRID.searchsorted(capacity_lines / demand_rate)
        )
        first = _BRACKET_STEPS
        for chunk in range(start, _BRACKET_STEPS, _BRACKET_CHUNK):
            stop = min(chunk + _BRACKET_CHUNK, _BRACKET_STEPS)
            totals = _occupancy_grid(
                lines, per_line, streaming, _BRACKET_GRID[chunk:stop]
            )
            cut = int(totals.searchsorted(capacity_lines))
            if cut < stop - chunk:
                first = chunk + cut
                break
        if first >= _BRACKET_STEPS:
            # Demand never reaches capacity (e.g. negligible rates):
            # treat as an unfilled cache.
            metrics.counter("che.bracket_expansions").inc(
                _BRACKET_STEPS
            )
            return math.inf
        metrics.counter("che.bracket_expansions").inc(first)
        t_high = float(_BRACKET_GRID[first])
        t_low = float(_BRACKET_GRID[first - 1]) if first else 0.0

        iterations = 0
        converged = False
        for _ in range(max_iterations):
            iterations += 1
            grid = t_low + (t_high - t_low) * _SECTION_FRACTIONS
            totals = _occupancy_grid(lines, per_line, streaming, grid)
            cut = int(totals.searchsorted(capacity_lines))
            if cut < _SECTION_POINTS:
                t_high = float(grid[cut])
                if cut:
                    t_low = float(grid[cut - 1])
            else:
                t_low = float(grid[-1])
            if t_high - t_low <= tolerance * max(t_high, 1e-30):
                converged = True
                break
    metrics.counter("che.iterations").inc(iterations)
    if not converged:
        metrics.counter("che.convergence_failures").inc()
    return 0.5 * (t_low + t_high)


@dataclass(frozen=True)
class SegmentSolution:
    """Result of solving one segment: T plus per-actor hit/occupancy."""

    segment: Segment
    t_char: float
    region_hit_ratios: dict[tuple[str, str], float]
    region_occupancy_lines: dict[tuple[str, str], float]
    stream_occupancy_lines: dict[tuple[str, str], float]


def solve_segment(
    segment: Segment,
    regions: list[RegionActor],
    streams: list[StreamActor],
    way_lines: float,
) -> SegmentSolution:
    """Solve the Che fixed point for one way-mask segment.

    ``regions``/``streams`` must already be scaled to this segment (the
    caller distributes each query's traffic across its allowed segments
    proportionally to capacity).
    """
    capacity = segment.ways * way_lines
    with runtime.tracer.span("solve_segment"):
        t_char = solve_characteristic_time(regions, streams, capacity)
    hit_ratios = {
        (r.query, r.name): r.hit_ratio(t_char) for r in regions
    }
    region_occ = {(r.query, r.name): r.occupancy(t_char) for r in regions}
    stream_occ = {}
    for s in streams:
        occupancy = s.occupancy(t_char)
        if math.isinf(occupancy):
            occupancy = capacity - sum(region_occ.values())
        stream_occ[(s.query, s.name)] = max(0.0, occupancy)
    return SegmentSolution(segment, t_char, hit_ratios, region_occ, stream_occ)
