"""Model calibration constants and their provenance.

Every constant that is *not* a paper-stated hardware parameter lives
here with a note on where it comes from.  The reproduction targets the
*shape* of the paper's figures (who wins, by what rough factor, where
the curves break); these constants were chosen once from public
micro-architecture data and the paper's own in-text numbers, then left
alone — experiments do not tune them per figure.

Provenance notes:

* ``dict_entry_bytes = 4``: the paper derives 4 MiB for 10^6 distinct
  INT values (Sec. IV-B), i.e. 4 bytes per dictionary entry.
* ``hash_entry_bytes = 16``: the paper says 10^5 groups make the hash
  tables "occupy all of the LLC" on 22 worker threads:
  23 * 1e5 * 16 B = 35 MiB, matching "comparable to the LLC" and
  the Fig. 5a break of the 10^5-group curve near 40 MiB.
* ``*_buffer_bytes_per_worker``: HANA's aggregation materialises
  decompressed value chunks per worker; the paper's Fig. 5a break point
  near 20 MiB with a 4 MiB dictionary implies roughly 16 MiB of hot
  intermediate state across 22 workers (~64 Ki rows * 12 B each).
  The join keeps less state (codes only), explaining its milder 5-14 %
  sensitivity in Fig. 6.
* ``per_core_stream_bandwidth``: Broadwell-EP sustains roughly 6 GB/s
  of prefetched streaming per core, so >= 11 cores saturate the 64 GB/s
  socket, which is why the paper calls the workloads bandwidth-limited.
* ``software_managed_miss_discount``: OLAP joins block/partition their
  probes once the bit vector outgrows the cache, amortising each
  fetched line over several probes; a 4x amortisation reproduces the
  paper's *bounded* Fig. 6 degradation (33 % at 10^8 keys, 5-14 % at
  10^9) instead of the unbounded collapse naive random probing would
  suffer.
* ``smt_compute_factor``: co-running a second hyper-thread costs a
  memory-bound thread a small slice of core issue bandwidth.
* ``stream_llc_hit_fraction``: the paper measures an LLC hit ratio
  below 0.08 for the pure scan (Sec. IV-A) — residual hits from
  prefetch timing; we charge a small constant.
* ``default_mlp``: out-of-order Broadwell sustains ~6 outstanding
  demand misses per core on pointer-light random-access code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..units import GB, KiB


@dataclass(frozen=True)
class Calibration:
    """Cost constants for the analytic model (see module docstring)."""

    dict_entry_bytes: int = 4
    hash_entry_bytes: int = 16
    agg_buffer_bytes_per_worker: int = 768 * KiB
    agg_buffer_accesses_per_tuple: float = 2.0
    join_buffer_bytes_per_worker: int = 256 * KiB
    join_buffer_accesses_per_tuple: float = 1.0
    per_core_stream_bandwidth: float = 6 * GB
    software_managed_miss_discount: float = 0.25
    smt_compute_factor: float = 1.25
    stream_llc_hit_fraction: float = 0.05
    default_mlp: float = 6.0
    scan_compute_cycles: float = 0.5
    scan_instructions_per_tuple: float = 2.0
    agg_compute_cycles: float = 10.0
    agg_instructions_per_tuple: float = 60.0
    join_probe_compute_cycles: float = 1.0
    join_instructions_per_tuple: float = 8.0
    oltp_compute_cycles: float = 18_000.0
    oltp_instructions_per_query: float = 30_000.0

    def __post_init__(self) -> None:
        positive_fields = (
            "dict_entry_bytes",
            "hash_entry_bytes",
            "agg_buffer_bytes_per_worker",
            "join_buffer_bytes_per_worker",
            "per_core_stream_bandwidth",
            "default_mlp",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ModelError(f"calibration {name} must be > 0")
        if self.smt_compute_factor < 1.0:
            raise ModelError("smt_compute_factor must be >= 1")
        if not 0.0 <= self.stream_llc_hit_fraction < 1.0:
            raise ModelError("stream_llc_hit_fraction must be in [0, 1)")

    def dictionary_bytes(self, distinct_values: int) -> int:
        """Dictionary working-set size for an INT column."""
        if distinct_values <= 0:
            raise ModelError(
                f"distinct_values must be > 0: {distinct_values}"
            )
        return distinct_values * self.dict_entry_bytes

    def hash_table_bytes(self, groups: int, workers: int) -> int:
        """Aggregate size of thread-local hash tables plus the merged one."""
        if groups <= 0 or workers <= 0:
            raise ModelError("groups and workers must be > 0")
        local = workers * groups * self.hash_entry_bytes
        merged = groups * self.hash_entry_bytes
        return local + merged

    def bit_vector_bytes(self, primary_keys: int) -> int:
        """Bit vector size for a dense primary-key domain."""
        if primary_keys <= 0:
            raise ModelError(f"primary_keys must be > 0: {primary_keys}")
        return max(1, primary_keys // 8)


DEFAULT_CALIBRATION = Calibration()
