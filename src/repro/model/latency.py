"""Memory-access latency model.

Converts hit-ratio predictions into per-access stall cycles.  Three
effects matter for the paper's shapes:

* random accesses overlap thanks to out-of-order execution: effective
  stall = latency / MLP (memory-level parallelism),
* sequential streams are latency-insensitive because the stream
  prefetcher runs ahead — they are costed by bandwidth, not latency
  (handled in the simulator), *unless* the CAT mask is a single way:
  with one usable way per set, prefetched lines evict each other before
  consumption, so streaming falls back to demand-latency mode.  This
  reproduces the paper's observation that mask ``0x1`` "degrades
  performance severely — even for Query 1" (Sec. V-B),
* under DRAM-bandwidth saturation, miss latency inflates by the queueing
  slowdown factor computed by the bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..errors import ModelError


@dataclass(frozen=True)
class LatencyModel:
    """Cycle costs of the cache hierarchy.

    Defaults approximate Broadwell-EP: L2 ~12 cycles, LLC ~42 cycles,
    DRAM latency from the system spec (80 ns = 176 cycles at 2.2 GHz).
    """

    spec: SystemSpec
    l2_cycles: float = 12.0
    llc_cycles: float = 42.0
    min_prefetch_ways: int = 2

    def __post_init__(self) -> None:
        if self.l2_cycles <= 0 or self.llc_cycles <= 0:
            raise ModelError("cache latencies must be > 0")
        if self.min_prefetch_ways < 1:
            raise ModelError("min_prefetch_ways must be >= 1")

    @property
    def dram_cycles(self) -> float:
        return self.spec.dram.latency_s * self.spec.frequency_hz

    def random_access_cycles(
        self,
        l2_hit_fraction: float,
        llc_hit_ratio: float,
        mlp: float,
        dram_slowdown: float = 1.0,
    ) -> float:
        """Average stall cycles for one random region access.

        ``l2_hit_fraction`` is the probability the private L2 satisfies
        the access; the remainder goes to the LLC and, on an LLC miss,
        to DRAM (latency scaled by the bandwidth-queueing slowdown).
        """
        for name, value in (
            ("l2_hit_fraction", l2_hit_fraction),
            ("llc_hit_ratio", llc_hit_ratio),
        ):
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value}")
        if mlp < 1:
            raise ModelError(f"mlp must be >= 1, got {mlp}")
        if dram_slowdown < 1:
            raise ModelError(f"dram_slowdown must be >= 1, got {dram_slowdown}")
        llc_fraction = 1.0 - l2_hit_fraction
        miss_ratio = 1.0 - llc_hit_ratio
        raw = (
            l2_hit_fraction * self.l2_cycles
            + llc_fraction
            * (
                llc_hit_ratio * self.llc_cycles
                + miss_ratio * self.dram_cycles * dram_slowdown
            )
        )
        return raw / mlp

    def streaming_latency_bound(self, allocated_ways: int) -> bool:
        """True when the CAT mask is too narrow for prefetching to work.

        With fewer than ``min_prefetch_ways`` usable ways per set, the
        prefetcher's fills collide with in-flight demand lines and the
        stream degrades to demand-latency access.
        """
        if allocated_ways < 1:
            raise ModelError(f"allocated_ways must be >= 1: {allocated_ways}")
        return allocated_ways < self.min_prefetch_ways

    def streaming_cycles_per_line(
        self, allocated_ways: int, dram_slowdown: float = 1.0
    ) -> float:
        """Latency cost per streamed line when prefetching is defeated.

        Returns 0.0 in the normal (prefetch-covered) case: streaming is
        then purely bandwidth-bound and costed by the simulator's
        transfer-time term.
        """
        if not self.streaming_latency_bound(allocated_ways):
            return 0.0
        # Demand-fetch every line; modest overlap of 2 outstanding lines.
        return self.dram_cycles * dram_slowdown / 2.0

    def l2_hit_fraction(
        self, region_total_bytes: float, shared: bool, workers: int
    ) -> float:
        """Fraction of region accesses filtered by the private L2.

        A thread-local structure (``shared=False``) is split across the
        ``workers`` cores, so each L2 sees only its slice; a shared
        structure must fit as a whole to be L2-resident.
        """
        if region_total_bytes <= 0:
            raise ModelError("region_total_bytes must be > 0")
        if workers < 1:
            raise ModelError(f"workers must be >= 1: {workers}")
        per_core_bytes = (
            region_total_bytes if shared else region_total_bytes / workers
        )
        return min(1.0, self.spec.l2.size_bytes / per_core_bytes)
