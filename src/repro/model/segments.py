"""Way-mask decomposition into cache segments.

CAT assigns each query (via its CLOS) a capacity bitmask over the LLC's
ways.  For the occupancy model, the cache decomposes into *segments*:
maximal groups of ways that are reachable by exactly the same set of
queries.  Within a segment everybody listed competes under LRU; across
segments there is no interaction.

Example (the paper's default scheme, 20 ways): scan = ``0x3``,
aggregation = ``0xfffff`` decomposes into a 2-way segment shared by
{scan, aggregation} and an 18-way segment exclusive to {aggregation}.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError


@dataclass(frozen=True)
class Segment:
    """A group of LLC ways reachable by the same set of queries."""

    members: frozenset[str]
    ways: int

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ModelError(f"segment must span >= 1 way, got {self.ways}")
        if not self.members:
            raise ModelError("segment must have at least one member")

    def capacity_bytes(self, way_bytes: int) -> int:
        return self.ways * way_bytes


def decompose_masks(masks: dict[str, int], total_ways: int) -> list[Segment]:
    """Split ``total_ways`` LLC ways into segments of identical membership.

    Ways covered by no mask are dropped (capacity nobody can allocate
    into is invisible to the model — on real hardware such ways only
    hold stale lines).

    Returns segments sorted by their lowest way for determinism.
    """
    if total_ways <= 0:
        raise ModelError(f"total_ways must be > 0: {total_ways}")
    full_mask = (1 << total_ways) - 1
    for name, mask in masks.items():
        if mask <= 0:
            raise ModelError(f"mask for {name!r} must be non-zero")
        if mask > full_mask:
            raise ModelError(
                f"mask {mask:#x} for {name!r} exceeds {total_ways} ways"
            )

    membership_ways: dict[frozenset[str], list[int]] = {}
    for way in range(total_ways):
        members = frozenset(
            name for name, mask in masks.items() if mask >> way & 1
        )
        if not members:
            continue
        membership_ways.setdefault(members, []).append(way)

    segments = [
        Segment(members, len(ways))
        for members, ways in sorted(
            membership_ways.items(), key=lambda item: min(item[1])
        )
    ]
    return segments


def allowed_ways(masks: dict[str, int], name: str) -> int:
    """Number of ways ``name`` may allocate into."""
    try:
        mask = masks[name]
    except KeyError:
        raise ModelError(f"no mask configured for {name!r}") from None
    return bin(mask).count("1")
