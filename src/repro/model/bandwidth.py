"""DRAM bandwidth accounting for the workload simulator.

Each query's DRAM traffic has two components: streamed bytes (scan
input) and LLC-miss line fills from random regions.  Total demand is
arbitrated max-min fairly (see :class:`repro.hardware.dram.BandwidthArbiter`);
a query whose demand exceeds its grant runs slower by ``demand/grant``,
which feeds back into the simulator's throughput fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..hardware.dram import BandwidthArbiter
from ..obs import runtime


@dataclass(frozen=True)
class BandwidthUsage:
    """One query's DRAM traffic at its current (tentative) throughput."""

    query: str
    stream_bytes_per_s: float
    miss_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.stream_bytes_per_s < 0 or self.miss_bytes_per_s < 0:
            raise ModelError(
                f"bandwidth components for {self.query!r} must be >= 0"
            )

    @property
    def total(self) -> float:
        return self.stream_bytes_per_s + self.miss_bytes_per_s


@dataclass(frozen=True)
class BandwidthSolution:
    """Arbitration outcome: per-query grants and slowdown factors."""

    grants: dict[str, float]
    slowdowns: dict[str, float]
    total_demand: float
    capacity: float

    @property
    def saturated(self) -> bool:
        return self.total_demand > self.capacity * (1 - 1e-9)


def solve_bandwidth(
    usages: list[BandwidthUsage], capacity_bytes_per_s: float
) -> BandwidthSolution:
    """Arbitrate DRAM bandwidth among queries.

    Returns each query's granted bandwidth and the slowdown factor
    (``demand / grant``, >= 1) to apply to its memory-bound time.
    """
    names = [u.query for u in usages]
    if len(names) != len(set(names)):
        raise ModelError(f"duplicate query names in bandwidth solve: {names}")
    arbiter = BandwidthArbiter(capacity_bytes_per_s)
    demands = {u.query: u.total for u in usages}
    grants = arbiter.allocate(demands)
    # Derive slowdowns from the grants already in hand (allocation is
    # deterministic, so this matches ``arbiter.slowdown`` without a
    # second max-min pass — one allocation per fixed-point round).
    slowdowns = {}
    for name, demand in demands.items():
        grant = grants[name]
        if demand <= 0 or grant >= demand:
            slowdowns[name] = 1.0
        else:
            slowdowns[name] = (
                demand / grant if grant > 0 else float("inf")
            )
    # One solve per round of the simulator's throughput fixed point.
    metrics = runtime.metrics
    metrics.counter("bandwidth.solves").inc()
    total_demand = sum(demands.values())
    if total_demand > capacity_bytes_per_s * (1 - 1e-9):
        metrics.counter("bandwidth.saturated_solves").inc()
    return BandwidthSolution(
        grants=grants,
        slowdowns=slowdowns,
        total_demand=total_demand,
        capacity=capacity_bytes_per_s,
    )
