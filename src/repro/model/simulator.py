"""Steady-state workload simulator.

Given a set of concurrently running queries — each with an
:class:`~repro.model.streams.AccessProfile`, a core allocation and a CAT
capacity bitmask — the simulator solves the coupled fixed point of

* per-query throughput,
* LLC occupancy / hit ratios per way-mask segment (Che approximation),
* DRAM bandwidth grants (max-min fair arbitration),

and reports per-query throughput, time breakdowns and PCM-style
counters.  This mirrors the paper's measurement method: queries run
repeatedly ("for 90 seconds"), so the interesting quantity is the
steady-state rate, not a single execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

import numpy as np

from ..config import SystemSpec
from ..errors import ModelError
from ..obs import runtime
from .bandwidth import BandwidthUsage, solve_bandwidth
from .calibration import DEFAULT_CALIBRATION, Calibration
from .latency import LatencyModel
from .occupancy import (
    RegionActor,
    StreamActor,
    solve_characteristic_time_arrays,
    solve_segment,
)
from .segments import decompose_masks
from .streams import AccessProfile


@dataclass(frozen=True)
class QuerySpec:
    """A query instance participating in a simulated workload."""

    name: str
    profile: AccessProfile
    cores: int
    mask: int

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ModelError(f"query {self.name!r}: cores must be > 0")
        if self.mask <= 0:
            raise ModelError(f"query {self.name!r}: mask must be non-zero")


@dataclass
class CounterRates:
    """Per-second hardware-counter rates (PCM analogue)."""

    instructions_per_s: float = 0.0
    llc_references_per_s: float = 0.0
    llc_hits_per_s: float = 0.0

    @property
    def llc_misses_per_s(self) -> float:
        return self.llc_references_per_s - self.llc_hits_per_s

    @property
    def llc_hit_ratio(self) -> float:
        if self.llc_references_per_s <= 0:
            return 0.0
        return self.llc_hits_per_s / self.llc_references_per_s

    @property
    def misses_per_instruction(self) -> float:
        if self.instructions_per_s <= 0:
            return 0.0
        return self.llc_misses_per_s / self.instructions_per_s

    def combined(self, other: "CounterRates") -> "CounterRates":
        return CounterRates(
            self.instructions_per_s + other.instructions_per_s,
            self.llc_references_per_s + other.llc_references_per_s,
            self.llc_hits_per_s + other.llc_hits_per_s,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round trip)."""
        return {
            "instructions_per_s": self.instructions_per_s,
            "llc_references_per_s": self.llc_references_per_s,
            "llc_hits_per_s": self.llc_hits_per_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CounterRates":
        return cls(
            instructions_per_s=payload["instructions_per_s"],
            llc_references_per_s=payload["llc_references_per_s"],
            llc_hits_per_s=payload["llc_hits_per_s"],
        )


@dataclass
class QueryResult:
    """Simulation outcome for one query."""

    name: str
    throughput_tuples_per_s: float
    per_tuple_seconds: float
    queries_per_s: float
    region_hit_ratios: dict[str, float] = field(default_factory=dict)
    region_l2_fractions: dict[str, float] = field(default_factory=dict)
    time_breakdown: dict[str, float] = field(default_factory=dict)
    dram_bytes_per_s: float = 0.0
    bandwidth_slowdown: float = 1.0
    counters: CounterRates = field(default_factory=CounterRates)

    def to_dict(self) -> dict:
        """JSON-serializable form, exact to the last float bit.

        JSON serializes floats via ``repr``, which round-trips every
        finite IEEE-754 double exactly — the simulation cache relies
        on this to keep cached reruns byte-identical to cold solves.
        """
        return {
            "name": self.name,
            "throughput_tuples_per_s": self.throughput_tuples_per_s,
            "per_tuple_seconds": self.per_tuple_seconds,
            "queries_per_s": self.queries_per_s,
            "region_hit_ratios": dict(self.region_hit_ratios),
            "region_l2_fractions": dict(self.region_l2_fractions),
            "time_breakdown": dict(self.time_breakdown),
            "dram_bytes_per_s": self.dram_bytes_per_s,
            "bandwidth_slowdown": self.bandwidth_slowdown,
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResult":
        return cls(
            name=payload["name"],
            throughput_tuples_per_s=payload["throughput_tuples_per_s"],
            per_tuple_seconds=payload["per_tuple_seconds"],
            queries_per_s=payload["queries_per_s"],
            region_hit_ratios=dict(payload["region_hit_ratios"]),
            region_l2_fractions=dict(payload["region_l2_fractions"]),
            time_breakdown=dict(payload["time_breakdown"]),
            dram_bytes_per_s=payload["dram_bytes_per_s"],
            bandwidth_slowdown=payload["bandwidth_slowdown"],
            counters=CounterRates.from_dict(payload["counters"]),
        )


@dataclass
class _SingleSegmentContext:
    """Rate-independent arrays for a one-segment composition.

    Built once per ``simulate()`` call; every fixed-point round scales
    ``per_line_coeff``/``stream_coeff`` by the current throughput
    vector instead of rebuilding actor objects.
    """

    capacity_lines: float
    working: "np.ndarray"
    per_line_coeff: "np.ndarray"
    owner: "np.ndarray"
    keys: list
    idle_hits: dict
    stream_coeff: "np.ndarray"


def system_counters(results: dict[str, QueryResult]) -> CounterRates:
    """Socket-wide counter rates (what PCM reports for the machine)."""
    total = CounterRates()
    for result in results.values():
        total = total.combined(result.counters)
    return total


class WorkloadSimulator:
    """Solves the throughput/occupancy/bandwidth fixed point."""

    def __init__(
        self,
        spec: SystemSpec,
        calibration: Calibration = DEFAULT_CALIBRATION,
        latency: LatencyModel | None = None,
        max_iterations: int = 300,
        damping: float = 0.4,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise ModelError(f"damping must be in (0, 1]: {damping}")
        self.spec = spec
        self.calibration = calibration
        self.latency = latency if latency is not None else LatencyModel(spec)
        self.max_iterations = max_iterations
        self.damping = damping
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def simulate(self, queries: list[QuerySpec]) -> dict[str, QueryResult]:
        """Solve the workload's steady state.

        When the queries' summed core counts oversubscribe the socket
        (the paper runs each query with the full physical-core
        concurrency limit, so two queries time-share cores as SMT
        siblings), a proportional compute penalty is applied; memory
        behaviour is left to the contention models.
        """
        if not queries:
            raise ModelError("simulate requires at least one query")
        names = [q.name for q in queries]
        if len(names) != len(set(names)):
            raise ModelError(f"duplicate query names: {names}")
        with runtime.tracer.span(
            "simulate", queries=",".join(names)
        ):
            return self._simulate(queries)

    def simulate_many(
        self, compositions: list[list[QuerySpec]]
    ) -> list[dict[str, QueryResult]]:
        """Solve several compositions in one batched call.

        Each composition gets exactly the fixed point
        :meth:`simulate` would have produced (the results are
        bit-identical), but the per-query preparation constants —
        latency-model fractions, per-tuple coefficients — are shared
        across compositions through one prepare memo, so a population
        of overlapping hypothetical node states (the planner's batch
        scoring path) pays for each distinct ``(query, cores, mask,
        smt)`` shape once instead of once per composition.
        """
        if not compositions:
            return []
        prepare_cache: dict = {}
        results = []
        with runtime.tracer.span(
            "simulate_batch", compositions=len(compositions)
        ):
            runtime.metrics.counter(
                "simulator.batch.compositions"
            ).inc(len(compositions))
            for queries in compositions:
                if not queries:
                    raise ModelError(
                        "simulate requires at least one query"
                    )
                names = [q.name for q in queries]
                if len(names) != len(set(names)):
                    raise ModelError(
                        f"duplicate query names: {names}"
                    )
                results.append(
                    self._simulate(
                        queries, prepare_cache=prepare_cache
                    )
                )
        return results

    def _simulate(
        self,
        queries: list[QuerySpec],
        prepare_cache: dict | None = None,
    ) -> dict[str, QueryResult]:
        # SMT contention: when the workload demands more cores than the
        # socket has, the surplus threads time-share.  A query whose
        # threads all collide (e.g. a 2-core OLTP pool on a machine
        # saturated by a 22-core scan) pays the full hyper-thread
        # penalty; a query with only a few contended cores pays
        # proportionally.
        total_cores = sum(q.cores for q in queries)
        surplus = max(0, total_cores - self.spec.cores)
        smt_factors = {}
        for q in queries:
            contended_share = min(1.0, surplus / q.cores)
            smt_factors[q.name] = 1.0 + (
                self.calibration.smt_compute_factor - 1.0
            ) * contended_share

        masks = {q.name: q.mask for q in queries}
        segments = decompose_masks(masks, self.spec.llc.ways)
        line_bytes = self.spec.llc.line_bytes
        way_lines = self.spec.llc.way_bytes / line_bytes
        allowed_lines = {
            q.name: bin(q.mask).count("1") * way_lines for q in queries
        }

        if prepare_cache is None:
            prepared = {
                q.name: self._prepare(q, smt_factors[q.name])
                for q in queries
            }
        else:
            # Batched path: identical (query, cores, mask, smt) shapes
            # across compositions share one prepared dict.  The dicts
            # are read-only after _prepare, so sharing is safe.
            prepared = {}
            for q in queries:
                shape = (
                    q.name, id(q.profile), q.cores, q.mask,
                    smt_factors[q.name],
                )
                entry = prepare_cache.get(shape)
                if entry is None:
                    entry = prepare_cache[shape] = self._prepare(
                        q, smt_factors[q.name]
                    )
                prepared[q.name] = entry
        throughput = {
            q.name: q.cores / prepared[q.name]["base_tuple_seconds"]
            for q in queries
        }
        hit_ratios: dict[str, dict[str, float]] = {
            q.name: {r.name: 1.0 for r in q.profile.regions} for q in queries
        }
        slowdowns = {q.name: 1.0 for q in queries}
        single_ctx = (
            self._single_segment_context(
                queries, prepared, segments[0], way_lines
            )
            if len(segments) == 1
            else None
        )

        rounds = 0
        converged = False
        for _ in range(self.max_iterations):
            rounds += 1
            hit_ratios = self._solve_occupancy(
                queries, prepared, throughput, segments, allowed_lines,
                way_lines, single_ctx=single_ctx,
            )
            usages = [
                self._bandwidth_usage(q, prepared[q.name], throughput[q.name],
                                      hit_ratios[q.name])
                for q in queries
            ]
            solution = solve_bandwidth(
                usages, self.spec.dram.bandwidth_bytes_per_s
            )
            slowdowns = solution.slowdowns

            max_change = 0.0
            for q in queries:
                per_tuple, _ = self._per_tuple_time(
                    q, prepared[q.name], hit_ratios[q.name],
                    slowdowns[q.name],
                )
                target = q.cores / per_tuple
                updated = (
                    throughput[q.name] ** (1 - self.damping)
                    * target ** self.damping
                )
                change = abs(updated - throughput[q.name]) / max(
                    throughput[q.name], 1e-30
                )
                max_change = max(max_change, change)
                throughput[q.name] = updated
            if max_change < self.tolerance:
                converged = True
                break

        metrics = runtime.metrics
        metrics.counter("simulator.solves").inc()
        metrics.counter("simulator.fixed_point_rounds").inc(rounds)
        if not converged:
            metrics.counter("simulator.convergence_failures").inc()

        return self._build_results(
            queries, prepared, throughput, hit_ratios, slowdowns
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _prepare(self, query: QuerySpec, smt_factor: float) -> dict:
        """Precompute per-query constants that do not move in the loop."""
        profile = query.profile
        line_bytes = self.spec.llc.line_bytes
        l2_fractions = {
            region.name: self.latency.l2_hit_fraction(
                region.total_bytes, region.shared, query.cores
            )
            for region in profile.regions
        }
        llc_accesses_per_tuple = {
            region.name: region.accesses_per_tuple
            * (1.0 - l2_fractions[region.name])
            for region in profile.regions
        }
        stream_lines_per_tuple = profile.stream_bytes_per_tuple / line_bytes
        compute_seconds = (
            profile.compute_cycles_per_tuple * smt_factor * self.spec.cycle_s
        )
        ways = bin(query.mask).count("1")
        base_stream_seconds = (
            profile.stream_bytes_per_tuple
            / self.calibration.per_core_stream_bandwidth
        )
        # Optimistic first guess: everything hits, no contention.
        base_random = sum(
            llc_accesses_per_tuple[r.name]
            * self.latency.random_access_cycles(
                l2_fractions[r.name], 1.0, profile.mlp
            )
            * self.spec.cycle_s
            + r.accesses_per_tuple
            * l2_fractions[r.name]
            * self.latency.l2_cycles
            / profile.mlp
            * self.spec.cycle_s
            for r in profile.regions
        )
        base = max(
            compute_seconds + base_random + base_stream_seconds, 1e-15
        )
        return {
            "l2_fractions": l2_fractions,
            "llc_accesses_per_tuple": llc_accesses_per_tuple,
            "stream_lines_per_tuple": stream_lines_per_tuple,
            "compute_seconds": compute_seconds,
            "ways": ways,
            "base_tuple_seconds": base,
            # Hot-loop constants: the properties/lookups below are
            # re-read on every fixed-point round.
            "stream_bytes_per_tuple": profile.stream_bytes_per_tuple,
            "base_stream_seconds": base_stream_seconds,
            # (name, llc accesses/tuple, raw accesses/tuple,
            #  l2 fraction, software_managed) per region.
            "region_rows": tuple(
                (
                    region.name,
                    llc_accesses_per_tuple[region.name],
                    region.accesses_per_tuple,
                    l2_fractions[region.name],
                    region.software_managed,
                )
                for region in profile.regions
            ),
        }

    def _solve_occupancy(
        self,
        queries: list[QuerySpec],
        prepared: dict[str, dict],
        throughput: dict[str, float],
        segments,
        allowed_lines: dict[str, float],
        way_lines: float,
        single_ctx: _SingleSegmentContext | None = None,
    ) -> dict[str, dict[str, float]]:
        """Solve every way-mask segment; blend per-region hit ratios.

        A region spanning several segments distributes its working set
        and accesses across them.  Real LRU residency is not uniform:
        lines survive where eviction pressure is low, so a region that
        fits into a clean (e.g. exclusive) segment effectively migrates
        there, while a region larger than the clean capacity spills the
        remainder into contested segments.  We capture this with a
        greedy placement iterated a few times: order the region's
        allowed segments by their characteristic time (cleanest first)
        and fill the working set up to each segment's capacity; any
        overflow is spread capacity-proportionally (it misses anyway).
        Streams have no reuse and keep capacity-proportional weights.
        """
        line_bytes = self.spec.llc.line_bytes
        by_name = {q.name: q for q in queries}

        if len(segments) == 1:
            # Uniform-mask compositions (the "none" policy, and any
            # scheme where every class shares one mask) collapse to a
            # single segment with unit weights and no re-placement —
            # solve it struct-of-arrays, skipping actor objects and
            # the placement machinery entirely.
            if single_ctx is None:
                single_ctx = self._single_segment_context(
                    queries, prepared, segments[0], way_lines
                )
            return self._solve_occupancy_single(
                queries, throughput, single_ctx
            )

        # region weights: (query, region_name) -> {segment_index: weight}
        weights: dict[tuple[str, str], dict[int, float]] = {}
        for seg_index, segment in enumerate(segments):
            seg_lines = segment.ways * way_lines
            for member in segment.members:
                base = seg_lines / allowed_lines[member]
                for region in by_name[member].profile.regions:
                    weights.setdefault((member, region.name), {})[
                        seg_index
                    ] = base

        blended: dict[str, dict[str, float]] = {}
        # Re-placement only moves regions that span >= 2 segments, so a
        # single-segment composition (e.g. policy "none") converges in
        # one round — the extra rounds would re-solve identical inputs.
        placement_rounds = 3 if len(segments) > 1 else 1
        for _ in range(placement_rounds):
            blended = {q.name: {} for q in queries}
            seg_times: dict[int, float] = {}
            for seg_index, segment in enumerate(segments):
                seg_lines = segment.ways * way_lines
                regions: list[RegionActor] = []
                streams: list[StreamActor] = []
                for member in segment.members:
                    query = by_name[member]
                    prep = prepared[member]
                    rate = throughput[member]
                    stream_weight = seg_lines / allowed_lines[member]
                    for region in query.profile.regions:
                        weight = weights[(member, region.name)][seg_index]
                        if weight <= 0:
                            continue
                        access_rate = (
                            rate
                            * prep["llc_accesses_per_tuple"][region.name]
                        )
                        working_lines = max(
                            1.0, region.total_bytes / line_bytes
                        )
                        regions.append(
                            RegionActor(
                                member,
                                region.name,
                                working_lines * weight,
                                access_rate * weight,
                            )
                        )
                    insertion = rate * prep["stream_lines_per_tuple"]
                    if insertion > 0:
                        streams.append(
                            StreamActor(
                                member, "input", insertion * stream_weight
                            )
                        )
                solution = solve_segment(
                    segment, regions, streams, way_lines
                )
                seg_times[seg_index] = solution.t_char
                for key, hit in solution.region_hit_ratios.items():
                    member, region_name = key
                    weight = weights[(member, region_name)][seg_index]
                    blended[member][region_name] = (
                        blended[member].get(region_name, 0.0)
                        + weight * hit
                    )

            # Coordinated greedy re-placement: regions claim the
            # cleanest segments first, hottest (highest per-line
            # reference rate) regions first — mirroring which lines
            # survive under LRU.  A shared residual per segment stops
            # several regions from over-committing the same clean ways.
            residual = {
                seg_index: segment.ways * way_lines
                for seg_index, segment in enumerate(segments)
            }
            hotness: list[tuple[float, tuple[str, str]]] = []
            for (member, region_name), seg_weights in weights.items():
                region = by_name[member].profile.region(region_name)
                working_lines = max(1.0, region.total_bytes / line_bytes)
                rate = (
                    throughput[member]
                    * prepared[member]["llc_accesses_per_tuple"][
                        region_name
                    ]
                )
                hotness.append(
                    (rate / working_lines, (member, region_name))
                )
            hotness.sort(key=lambda item: -item[0])

            for _, key in hotness:
                member, region_name = key
                seg_weights = weights[key]
                if len(seg_weights) < 2:
                    continue
                region = by_name[member].profile.region(region_name)
                working_lines = max(1.0, region.total_bytes / line_bytes)
                order = sorted(
                    seg_weights,
                    key=lambda idx: -seg_times.get(idx, 0.0),
                )
                remaining = working_lines
                placed: dict[int, float] = {idx: 0.0 for idx in
                                            seg_weights}
                for seg_index in order:
                    take = min(remaining, residual[seg_index])
                    placed[seg_index] = take
                    residual[seg_index] -= take
                    remaining -= take
                if remaining > 0:
                    total_capacity = sum(
                        segments[idx].ways * way_lines
                        for idx in seg_weights
                    )
                    for seg_index in seg_weights:
                        capacity = segments[seg_index].ways * way_lines
                        placed[seg_index] += (
                            remaining * capacity / total_capacity
                        )
                for seg_index in seg_weights:
                    seg_weights[seg_index] = (
                        placed[seg_index] / working_lines
                    )

        for q in queries:
            for region in q.profile.regions:
                blended[q.name].setdefault(region.name, 1.0)
                blended[q.name][region.name] = min(
                    1.0, max(0.0, blended[q.name][region.name])
                )
        return blended

    def _single_segment_context(
        self,
        queries: list[QuerySpec],
        prepared: dict[str, dict],
        segment,
        way_lines: float,
    ) -> _SingleSegmentContext:
        """Precompute the rate-independent arrays for a one-segment
        composition — built once per ``simulate()`` call, scaled by the
        current throughput vector on every fixed-point round."""
        line_bytes = self.spec.llc.line_bytes
        working: list[float] = []
        per_line_coeff: list[float] = []
        owner: list[int] = []
        keys: list[tuple[str, str]] = []
        idle_hits: dict[str, dict[str, float]] = {}
        stream_coeff: list[float] = []
        for q_index, q in enumerate(queries):
            prep = prepared[q.name]
            hits: dict[str, float] = {}
            for region in q.profile.regions:
                coeff = prep["llc_accesses_per_tuple"][region.name]
                if coeff > 0:
                    lines = max(1.0, region.total_bytes / line_bytes)
                    working.append(lines)
                    per_line_coeff.append(coeff / lines)
                    owner.append(q_index)
                    keys.append((q.name, region.name))
                else:
                    # Idle regions never miss (same as the actor path).
                    hits[region.name] = 1.0
            idle_hits[q.name] = hits
            stream_coeff.append(prep["stream_lines_per_tuple"])
        return _SingleSegmentContext(
            capacity_lines=segment.ways * way_lines,
            working=np.asarray(working, dtype=np.float64),
            per_line_coeff=np.asarray(
                per_line_coeff, dtype=np.float64
            ),
            owner=np.asarray(owner, dtype=np.intp),
            keys=keys,
            idle_hits=idle_hits,
            stream_coeff=np.asarray(stream_coeff, dtype=np.float64),
        )

    def _solve_occupancy_single(
        self,
        queries: list[QuerySpec],
        throughput: dict[str, float],
        ctx: _SingleSegmentContext,
    ) -> dict[str, dict[str, float]]:
        """Struct-of-arrays solve for a one-segment composition.

        Equivalent to the general path with every placement weight
        equal to one: each query's whole working set and traffic lands
        in the single shared segment, so blended hit ratios come
        straight from one characteristic-time solve over flat arrays
        — no per-round actor objects, no placement rounds.
        """
        rates = np.fromiter(
            (throughput[q.name] for q in queries),
            dtype=np.float64,
            count=len(queries),
        )
        per_line = rates[ctx.owner] * ctx.per_line_coeff
        streaming = float(rates @ ctx.stream_coeff)
        with runtime.tracer.span("solve_segment"):
            t_char = solve_characteristic_time_arrays(
                ctx.working, per_line, streaming, ctx.capacity_lines
            )
        blended = {
            name: dict(hits) for name, hits in ctx.idle_hits.items()
        }
        if math.isinf(t_char):
            solved = np.ones(len(ctx.keys), dtype=np.float64)
        else:
            with np.errstate(over="ignore"):
                solved = -np.expm1(-per_line * t_char)
        for (name, region_name), hit in zip(ctx.keys, solved.tolist()):
            blended[name][region_name] = min(1.0, max(0.0, hit))
        return blended

    def _effective_hit(self, region, hit: float) -> float:
        """Apply the software-blocking discount to a region's hit ratio.

        Operators that partition their probes when a structure outgrows
        the cache amortise each fetched line over several accesses; the
        model charges only a fraction of the nominal capacity misses.
        """
        if not region.software_managed:
            return hit
        discount = self.calibration.software_managed_miss_discount
        return 1.0 - (1.0 - hit) * discount

    def _bandwidth_usage(
        self,
        query: QuerySpec,
        prep: dict,
        throughput: float,
        hits: dict[str, float],
    ) -> BandwidthUsage:
        line_bytes = self.spec.llc.line_bytes
        stream_bytes = throughput * prep["stream_bytes_per_tuple"]
        discount = self.calibration.software_managed_miss_discount
        miss_bytes = 0.0
        for name, coeff, _, _, managed in prep["region_rows"]:
            hit = hits[name]
            if managed:
                hit = 1.0 - (1.0 - hit) * discount
            miss_bytes += (
                throughput * coeff * (1.0 - hit) * line_bytes
            )
        return BandwidthUsage(query.name, stream_bytes, miss_bytes)

    def _per_tuple_time(
        self,
        query: QuerySpec,
        prep: dict,
        hits: dict[str, float],
        slowdown: float,
    ) -> tuple[float, dict[str, float]]:
        profile = query.profile
        cycle_s = self.spec.cycle_s
        slow = max(1.0, slowdown)
        # Inlined LatencyModel.random_access_cycles (same arithmetic,
        # constants hoisted): this loop runs once per query per
        # fixed-point round and dominated the non-solver round cost.
        mlp = profile.mlp
        l2_cycles = self.latency.l2_cycles
        llc_cycles = self.latency.llc_cycles
        dram_cycles = self.latency.dram_cycles * slow
        discount = self.calibration.software_managed_miss_discount
        random_seconds = 0.0
        for name, _, accesses, l2_fraction, managed in prep[
            "region_rows"
        ]:
            hit = hits[name]
            if managed:
                hit = 1.0 - (1.0 - hit) * discount
            raw = l2_fraction * l2_cycles + (1.0 - l2_fraction) * (
                hit * llc_cycles + (1.0 - hit) * dram_cycles
            )
            random_seconds += accesses * (raw / mlp) * cycle_s

        stream_seconds = prep["base_stream_seconds"] * slow
        # Single-way masks defeat the prefetcher (paper Sec. V-B): add a
        # demand-latency charge per streamed line.
        stream_seconds += (
            prep["stream_lines_per_tuple"]
            * self.latency.streaming_cycles_per_line(prep["ways"], slow)
            * cycle_s
        )

        breakdown = {
            "compute": prep["compute_seconds"],
            "random": random_seconds,
            "stream": stream_seconds,
        }
        total = max(sum(breakdown.values()), 1e-15)
        return total, breakdown

    def _build_results(
        self,
        queries: list[QuerySpec],
        prepared: dict[str, dict],
        throughput: dict[str, float],
        hit_ratios: dict[str, dict[str, float]],
        slowdowns: dict[str, float],
    ) -> dict[str, QueryResult]:
        line_bytes = self.spec.llc.line_bytes
        results: dict[str, QueryResult] = {}
        for query in queries:
            prep = prepared[query.name]
            rate = throughput[query.name]
            per_tuple, breakdown = self._per_tuple_time(
                query, prep, hit_ratios[query.name], slowdowns[query.name]
            )
            usage = self._bandwidth_usage(
                query, prep, rate, hit_ratios[query.name]
            )
            stream_refs = rate * prep["stream_lines_per_tuple"]
            region_refs = sum(
                rate * prep["llc_accesses_per_tuple"][r.name]
                for r in query.profile.regions
            )
            region_hits = sum(
                rate
                * prep["llc_accesses_per_tuple"][r.name]
                * self._effective_hit(r, hit_ratios[query.name][r.name])
                for r in query.profile.regions
            )
            counters = CounterRates(
                instructions_per_s=rate * query.profile.instructions_per_tuple,
                llc_references_per_s=region_refs + stream_refs,
                llc_hits_per_s=region_hits
                + stream_refs * self.calibration.stream_llc_hit_fraction,
            )
            results[query.name] = QueryResult(
                name=query.name,
                throughput_tuples_per_s=rate,
                per_tuple_seconds=per_tuple,
                queries_per_s=rate / query.profile.tuples,
                region_hit_ratios=dict(hit_ratios[query.name]),
                region_l2_fractions=dict(prep["l2_fractions"]),
                time_breakdown=breakdown,
                # Delivered traffic: demand scaled back by the queueing
                # slowdown (grants cap what actually crosses the bus).
                dram_bytes_per_s=(
                    usage.total / max(1.0, slowdowns[query.name])
                ),
                bandwidth_slowdown=slowdowns[query.name],
                counters=counters,
            )
        return results
