"""Analytic performance model.

Predicts steady-state throughput and PCM-style counters for sets of
concurrently running queries on a CAT-partitioned machine.  The model
rests on three pieces of memory-system physics:

* **LLC occupancy** under LRU sharing, computed with the Che
  characteristic-time approximation per way-mask segment
  (:mod:`repro.model.occupancy`),
* **miss latency** with memory-level parallelism and prefetching
  (:mod:`repro.model.latency`),
* **DRAM bandwidth contention** via max-min fair arbitration
  (:mod:`repro.model.bandwidth`).

The trace-driven simulator in :mod:`repro.hardware` validates the
occupancy model on scaled-down geometries (see the test suite).
"""

from .bandwidth import BandwidthUsage, solve_bandwidth
from .calibration import Calibration, DEFAULT_CALIBRATION
from .latency import LatencyModel
from .occupancy import CacheActorSet, RegionActor, StreamActor, solve_segment
from .segments import Segment, decompose_masks
from .simulator import QueryResult, QuerySpec, WorkloadSimulator
from .streams import (
    AccessProfile,
    RandomRegion,
    SequentialStream,
    skewed_regions,
)

__all__ = [
    "AccessProfile",
    "BandwidthUsage",
    "CacheActorSet",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "LatencyModel",
    "QueryResult",
    "QuerySpec",
    "RandomRegion",
    "RegionActor",
    "Segment",
    "SequentialStream",
    "StreamActor",
    "WorkloadSimulator",
    "decompose_masks",
    "skewed_regions",
    "solve_bandwidth",
    "solve_segment",
]
