"""Access-profile descriptors.

An :class:`AccessProfile` is the model-facing summary of an operator or
query: how much it computes per tuple, which memory regions it probes
randomly (dictionaries, hash tables, bit vectors, indexes) and which it
streams through sequentially (column codes).  Physical operators in
:mod:`repro.operators` emit these; the simulator consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ModelError


@dataclass(frozen=True)
class RandomRegion:
    """A bounded memory region accessed uniformly at random.

    Attributes:
        name: label for reporting ("dictionary", "hash_table", ...).
        total_bytes: working-set size at LLC level.
        accesses_per_tuple: random references issued per processed tuple.
        shared: True when all worker threads probe the *same* structure
            (dictionary, bit vector); False for thread-local structures
            (per-worker hash tables), where each core's private-cache
            slice only sees ``total_bytes / workers``.
        software_managed: True for structures the operator probes in a
            blocking/partitioned fashion when they outgrow the cache
            (e.g. the FK join radix-partitions its probes): capacity
            misses are then amortised over a batch, which bounds the
            operator's DRAM exposure.  Modelled as a constant discount
            on the miss ratio (see ``Calibration``).
    """

    name: str
    total_bytes: float
    accesses_per_tuple: float
    shared: bool = True
    software_managed: bool = False

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ModelError(
                f"region {self.name!r}: total_bytes must be > 0, "
                f"got {self.total_bytes}"
            )
        if self.accesses_per_tuple < 0:
            raise ModelError(
                f"region {self.name!r}: accesses_per_tuple must be >= 0"
            )


@dataclass(frozen=True)
class SequentialStream:
    """Sequentially streamed data with no reuse (column scan input)."""

    name: str
    bytes_per_tuple: float

    def __post_init__(self) -> None:
        if self.bytes_per_tuple < 0:
            raise ModelError(
                f"stream {self.name!r}: bytes_per_tuple must be >= 0"
            )


@dataclass(frozen=True)
class AccessProfile:
    """Complete memory/compute footprint of one query (or operator).

    ``tuples`` is the number of work items a single query execution
    processes; throughput is reported in tuples/s and, divided by
    ``tuples``, in queries/s.
    """

    name: str
    tuples: float
    compute_cycles_per_tuple: float
    instructions_per_tuple: float
    regions: tuple[RandomRegion, ...] = ()
    streams: tuple[SequentialStream, ...] = ()
    mlp: float = 6.0

    def __post_init__(self) -> None:
        if self.tuples <= 0:
            raise ModelError(f"profile {self.name!r}: tuples must be > 0")
        if self.compute_cycles_per_tuple < 0:
            raise ModelError(
                f"profile {self.name!r}: compute cycles must be >= 0"
            )
        if self.instructions_per_tuple <= 0:
            raise ModelError(
                f"profile {self.name!r}: instructions per tuple must be > 0"
            )
        if self.mlp < 1:
            raise ModelError(f"profile {self.name!r}: mlp must be >= 1")
        names = [r.name for r in self.regions] + [s.name for s in self.streams]
        if len(names) != len(set(names)):
            raise ModelError(
                f"profile {self.name!r}: region/stream names must be unique: "
                f"{names}"
            )

    @property
    def stream_bytes_per_tuple(self) -> float:
        """Total sequential traffic per tuple."""
        return sum(s.bytes_per_tuple for s in self.streams)

    def with_name(self, name: str) -> "AccessProfile":
        return replace(self, name=name)

    def region(self, name: str) -> RandomRegion:
        for candidate in self.regions:
            if candidate.name == name:
                return candidate
        raise ModelError(f"profile {self.name!r} has no region {name!r}")


def skewed_regions(
    name: str,
    total_bytes: float,
    accesses_per_tuple: float,
    hot_fraction: float = 0.2,
    hot_access_share: float = 0.8,
    shared: bool = True,
) -> tuple[RandomRegion, RandomRegion]:
    """Two-point approximation of a Zipf-skewed region.

    The paper's data sets are uniform; real dictionaries and group
    distributions are usually skewed, which concentrates accesses on a
    small hot set that survives in the cache.  The classic 80/20 split
    (``hot_access_share`` of the accesses hit ``hot_fraction`` of the
    bytes) turns one skewed region into two uniform ones that the Che
    model handles exactly.

    >>> hot, cold = skewed_regions("dict", 100.0, 1.0)
    >>> (hot.total_bytes, hot.accesses_per_tuple)
    (20.0, 0.8)
    >>> (cold.total_bytes, round(cold.accesses_per_tuple, 6))
    (80.0, 0.2)
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ModelError(f"hot_fraction must be in (0, 1): {hot_fraction}")
    if not 0.0 < hot_access_share < 1.0:
        raise ModelError(
            f"hot_access_share must be in (0, 1): {hot_access_share}"
        )
    if total_bytes <= 0 or accesses_per_tuple < 0:
        raise ModelError("total_bytes must be > 0, accesses >= 0")
    hot = RandomRegion(
        f"{name}_hot",
        total_bytes * hot_fraction,
        accesses_per_tuple * hot_access_share,
        shared=shared,
    )
    cold = RandomRegion(
        f"{name}_cold",
        total_bytes * (1.0 - hot_fraction),
        accesses_per_tuple * (1.0 - hot_access_share),
        shared=shared,
    )
    return hot, cold
