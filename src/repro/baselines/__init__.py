"""Baseline comparators from the paper's related work.

* :mod:`repro.baselines.page_coloring` — software cache partitioning
  by OS page colors (Lee et al., MCC-DB; Zhang et al., EuroSys'09),
  the approach the paper argues against for in-memory systems because
  re-partitioning requires copying the data (Sec. V-A, VII).
"""

from .page_coloring import (
    PageColoringPartitioner,
    RepartitionEvent,
    coloring_capacity_bytes,
)

__all__ = [
    "PageColoringPartitioner",
    "RepartitionEvent",
    "coloring_capacity_bytes",
]
