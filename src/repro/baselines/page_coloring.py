"""Page-coloring cache partitioning — the software baseline.

Before CAT, shared-cache partitioning was done in software: physical
pages whose address bits select the same cache *sets* form a "color";
by allocating an application's memory only from certain colors, the OS
confines it to a fraction of the cache (Lee et al. [13]; Cho & Jin
[25]; Zhang et al. [15]).

The paper dismisses page coloring for in-memory DBMSs for two reasons
(Sec. V-A), both modelled here so the comparison can be *measured*:

1. **granularity/capacity**: a color partitions sets, so the number of
   partitions is fixed by page size x set count; capacity-wise it is
   equivalent to way partitioning (same fraction of bytes) but also
   partitions *DRAM pages*, constraining the allocator,
2. **re-partitioning cost**: changing an application's colors means
   *copying every resident page* to pages of the new colors.  For a
   multi-GiB in-memory table this costs seconds of memory bandwidth,
   while CAT re-partitioning is one register write (~microseconds).

:func:`repro.experiments.ext_baselines.run` turns this into the
dynamic-workload comparison the paper argues from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..errors import WorkloadError
from ..units import KiB


PAGE_BYTES = 4 * KiB


def num_colors(spec: SystemSpec, page_bytes: int = PAGE_BYTES) -> int:
    """Number of distinct page colors the LLC geometry offers.

    A color is the set-index bits covered by a physical page:
    sets_per_page = page / line; colors = sets / sets_per_page.
    """
    sets_per_page = page_bytes // spec.llc.line_bytes
    if sets_per_page <= 0:
        raise WorkloadError("page smaller than a cache line")
    colors = spec.llc.sets // sets_per_page
    return max(1, colors)


def coloring_capacity_bytes(
    spec: SystemSpec, colors_granted: int,
    page_bytes: int = PAGE_BYTES,
) -> int:
    """LLC capacity reachable through ``colors_granted`` colors."""
    total = num_colors(spec, page_bytes)
    if not 1 <= colors_granted <= total:
        raise WorkloadError(
            f"colors_granted must be in [1, {total}]: {colors_granted}"
        )
    return spec.llc.size_bytes * colors_granted // total


@dataclass(frozen=True)
class RepartitionEvent:
    """Cost record of one re-partitioning operation."""

    mechanism: str            # "page_coloring" or "cat"
    resident_bytes: float     # data that had to move (coloring only)
    cost_seconds: float


@dataclass
class PageColoringPartitioner:
    """Color-based partitioner with explicit re-partitioning cost.

    ``assign(tenant, colors)`` grants a tenant a color set; changing an
    existing tenant's colors charges the copy of its resident bytes at
    the machine's DRAM bandwidth (read + write = 2x traffic), which is
    the number the paper's flexibility argument hinges on.
    """

    spec: SystemSpec
    page_bytes: int = PAGE_BYTES
    _assignments: dict[str, frozenset[int]] = field(default_factory=dict)
    events: list[RepartitionEvent] = field(default_factory=list)

    @property
    def total_colors(self) -> int:
        return num_colors(self.spec, self.page_bytes)

    def capacity_of(self, tenant: str) -> int:
        try:
            colors = self._assignments[tenant]
        except KeyError:
            raise WorkloadError(f"unknown tenant {tenant!r}") from None
        return coloring_capacity_bytes(
            self.spec, len(colors), self.page_bytes
        )

    def assign(
        self, tenant: str, colors: frozenset[int],
        resident_bytes: float = 0.0,
    ) -> RepartitionEvent:
        """(Re-)assign a tenant's colors; returns the cost event."""
        if not colors:
            raise WorkloadError("a tenant needs at least one color")
        if max(colors) >= self.total_colors or min(colors) < 0:
            raise WorkloadError(
                f"colors out of range [0, {self.total_colors})"
            )
        if resident_bytes < 0:
            raise WorkloadError("resident_bytes must be >= 0")

        previous = self._assignments.get(tenant)
        if previous is None or previous == colors:
            moved = 0.0
        else:
            # Pages in colors no longer granted must be copied.
            lost_fraction = (
                len(previous - colors) / len(previous)
                if previous else 0.0
            )
            moved = resident_bytes * lost_fraction
        cost = (
            2.0 * moved / self.spec.dram.bandwidth_bytes_per_s
            if moved else 0.0
        )
        self._assignments[tenant] = colors
        event = RepartitionEvent("page_coloring", moved, cost)
        self.events.append(event)
        return event

    def cat_equivalent_cost(self) -> RepartitionEvent:
        """What the same re-partition costs with CAT: one MSR write."""
        event = RepartitionEvent("cat", 0.0, 1e-6)
        self.events.append(event)
        return event

    def total_repartition_seconds(self, mechanism: str) -> float:
        return sum(
            event.cost_seconds
            for event in self.events
            if event.mechanism == mechanism
        )
