"""Online CUID classification from monitoring data.

The paper derives its cache-usage identifiers from an *offline*
empirical analysis (Sec. IV) and notes in related work that miss-ratio
models could classify operators *online* instead.  This module
implements that extension: probe a query briefly on the performance
model (standing in for a short monitored execution with CMT/PCM), read
its monitoring sample, and classify it into the paper's taxonomy:

* high memory traffic + negligible LLC benefit -> POLLUTING,
* meaningful LLC occupancy whose hit ratio depends on allocation ->
  SENSITIVE,
* classification that flips with the data (probed per instance) is the
  ADAPTIVE case by construction — the classifier is simply re-run.

The probe compares two monitored micro-runs (full LLC vs. the polluter
slice); an operator whose throughput is invariant under the restriction
cannot need the cache — exactly the paper's definition of a polluter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..errors import ModelError
from ..hardware.cat import mask_from_fraction
from ..hardware.cmt import CmtSample
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import QueryResult, QuerySpec, WorkloadSimulator
from ..model.streams import AccessProfile
from ..operators.base import CacheUsage


@dataclass(frozen=True)
class OnlineClassification:
    """Outcome of probing one operator."""

    operator: str
    cuid: CacheUsage
    restricted_ratio: float       # throughput(10 %) / throughput(100 %)
    full_sample: CmtSample
    restricted_sample: CmtSample

    @property
    def cache_benefit(self) -> float:
        """Throughput lost when confined to the polluter slice."""
        return 1.0 - self.restricted_ratio


class OnlineClassifier:
    """Classifies access profiles by monitored probe runs."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        polluter_fraction: float = 0.10,
        sensitivity_threshold: float = 0.05,
    ) -> None:
        if not 0.0 < sensitivity_threshold < 1.0:
            raise ModelError(
                "sensitivity_threshold must be in (0, 1): "
                f"{sensitivity_threshold}"
            )
        self.spec = spec if spec is not None else SystemSpec()
        self.simulator = WorkloadSimulator(self.spec, calibration)
        self._probe_mask = mask_from_fraction(self.spec,
                                              polluter_fraction)
        self._threshold = sensitivity_threshold
        # Precomputed once, compared with a tolerance: ``1.0 - t`` is
        # itself rounded in IEEE-754 (1.0 - 0.05 != 0.95), so an
        # operator sitting exactly at the boundary must not flip
        # classification on representation noise.
        self._cutoff = 1.0 - sensitivity_threshold
        self._cutoff_epsilon = 1e-12

    def _sample(self, result: QueryResult, rmid: int) -> CmtSample:
        """Convert simulator output into a CMT-style reading."""
        counters = result.counters
        return CmtSample(
            rmid=rmid,
            llc_occupancy_bytes=self._occupancy_estimate(result),
            llc_references=counters.llc_references_per_s,
            llc_misses=counters.llc_misses_per_s,
            memory_bandwidth_bytes_per_s=result.dram_bytes_per_s,
        )

    def _occupancy_estimate(self, result: QueryResult) -> float:
        """Occupancy proxy: resident bytes across the query's regions."""
        occupancy = 0.0
        for name, hit_ratio in result.region_hit_ratios.items():
            l2_fraction = result.region_l2_fractions.get(name, 0.0)
            occupancy += hit_ratio * (1.0 - l2_fraction)
        # Normalised to the LLC: callers only compare relative values.
        return min(1.0, occupancy) * self.spec.llc.size_bytes

    def classify(self, profile: AccessProfile) -> OnlineClassification:
        """Probe ``profile`` with full vs. restricted LLC and classify."""
        full = self.simulator.simulate(
            [QuerySpec(profile.name, profile, self.spec.cores,
                       self.spec.full_mask)]
        )[profile.name]
        restricted = self.simulator.simulate(
            [QuerySpec(profile.name, profile, self.spec.cores,
                       self._probe_mask)]
        )[profile.name]
        if full.throughput_tuples_per_s <= 0.0:
            # A starved tenant (e.g. under a contention attack) can
            # post zero completions in a window; there is no throughput
            # signal to classify from.  Return a stable UNKNOWN verdict
            # rather than dividing by zero — repeated probes of the
            # same dead profile must not flap between categories.
            return OnlineClassification(
                operator=profile.name,
                cuid=CacheUsage.UNKNOWN,
                restricted_ratio=0.0,
                full_sample=self._sample(full, rmid=1),
                restricted_sample=self._sample(restricted, rmid=1),
            )
        ratio = (
            restricted.throughput_tuples_per_s
            / full.throughput_tuples_per_s
        )
        # A boundary ratio (exactly 1 - threshold) deterministically
        # classifies as POLLUTING regardless of rounding direction.
        cuid = (
            CacheUsage.POLLUTING
            if ratio >= self._cutoff - self._cutoff_epsilon
            else CacheUsage.SENSITIVE
        )
        return OnlineClassification(
            operator=profile.name,
            cuid=cuid,
            restricted_ratio=ratio,
            full_sample=self._sample(full, rmid=1),
            restricted_sample=self._sample(restricted, rmid=1),
        )

    def classify_many(
        self, profiles: list[AccessProfile]
    ) -> dict[str, OnlineClassification]:
        return {
            profile.name: self.classify(profile) for profile in profiles
        }
