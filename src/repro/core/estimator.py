"""Statistics-driven working-set estimation and mask selection.

The paper's discussion (Sec. VI-F) ends on: *"Generally, the search for
the 'best' partitioning in any given situation will depend on accurate
result size estimates."*  This module supplies that piece: estimate an
operator's performance-critical working sets from *catalog statistics*
(row counts, distinct counts) **before execution**, then pick the CAT
mask the paper's policy would assign — without building hash tables or
bit vectors first.

The estimates mirror the structures of Sec. II:

* dictionary bytes        = distinct values x entry width,
* hash-table bytes        = (workers + 1) x groups x entry width,
* bit-vector bytes        = max primary key / 8,

and the classification rules are the paper's (Sec. V-B/V-C): scans are
polluters; aggregations are sensitive; joins flip on where their bit
vector falls relative to aggregate L2 and the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..engine.cache_control import CuidPolicy
from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..operators.base import CacheUsage
from ..operators.join import classify_join


@dataclass(frozen=True)
class ColumnStatistics:
    """Catalog statistics for one column."""

    name: str
    row_count: int
    distinct_count: int
    max_value: int | None = None   # for dense key domains

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise WorkloadError(
                f"column {self.name!r}: row_count must be > 0"
            )
        if not 1 <= self.distinct_count <= self.row_count:
            raise WorkloadError(
                f"column {self.name!r}: distinct_count must be in "
                f"[1, {self.row_count}]"
            )


@dataclass(frozen=True)
class WorkingSetEstimate:
    """Estimated performance-critical working sets of one operator."""

    operator: str
    cuid: CacheUsage
    dictionary_bytes: int = 0
    hash_table_bytes: int = 0
    bit_vector_bytes: int = 0
    # True for operators of the paper's *adaptive* category (the FK
    # join): when such an operator resolves to SENSITIVE it receives
    # the 60 % grant rather than the full mask (Sec. V-B).
    adaptive_class: bool = False

    @property
    def total_bytes(self) -> int:
        return (
            self.dictionary_bytes
            + self.hash_table_bytes
            + self.bit_vector_bytes
        )


class WorkingSetEstimator:
    """Estimates working sets and selects CAT masks from statistics."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        workers: int | None = None,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        self.workers = workers if workers is not None else self.spec.cores
        self._policy = CuidPolicy.paper_default(self.spec)

    # ------------------------------------------------------------------
    # per-operator estimates
    # ------------------------------------------------------------------

    def estimate_scan(self, column: ColumnStatistics) -> WorkingSetEstimate:
        """Scans keep nothing resident (paper Sec. IV-A)."""
        return WorkingSetEstimate(
            operator=f"scan({column.name})",
            cuid=CacheUsage.POLLUTING,
        )

    def estimate_aggregation(
        self,
        value_column: ColumnStatistics,
        group_column: ColumnStatistics,
    ) -> WorkingSetEstimate:
        """Dictionary + thread-local hash tables (paper Sec. IV-B)."""
        return WorkingSetEstimate(
            operator=(
                f"aggregate({value_column.name} by {group_column.name})"
            ),
            cuid=CacheUsage.SENSITIVE,
            dictionary_bytes=self.calibration.dictionary_bytes(
                value_column.distinct_count
            ),
            hash_table_bytes=self.calibration.hash_table_bytes(
                group_column.distinct_count, self.workers
            ),
        )

    def estimate_join(
        self, primary_key: ColumnStatistics
    ) -> WorkingSetEstimate:
        """Bit vector sized by the key domain (paper Sec. IV-C)."""
        domain = (
            primary_key.max_value
            if primary_key.max_value is not None
            else primary_key.distinct_count
        )
        vector_bytes = self.calibration.bit_vector_bytes(domain)
        return WorkingSetEstimate(
            operator=f"join(pk={primary_key.name})",
            cuid=classify_join(vector_bytes, self.spec),
            bit_vector_bytes=vector_bytes,
            adaptive_class=True,
        )

    # ------------------------------------------------------------------
    # mask selection
    # ------------------------------------------------------------------

    def mask_for(self, estimate: WorkingSetEstimate) -> int:
        """The paper's scheme, applied to an estimate."""
        if estimate.cuid is CacheUsage.POLLUTING:
            return self._policy.polluting_mask
        if estimate.adaptive_class or estimate.cuid is CacheUsage.ADAPTIVE:
            return self._policy.adaptive_sensitive_mask
        return self._policy.sensitive_mask

    def recommended_mask(self, estimate: WorkingSetEstimate) -> int:
        """Refined selection: size the grant to the working set.

        Sensitive operators whose *entire* estimated working set fits
        into fewer ways don't need the full LLC; granting the smallest
        sufficient contiguous mask (with one way of headroom) leaves
        more exclusive capacity for others — the "best partitioning
        from result size estimates" the paper anticipates.
        """
        base = self.mask_for(estimate)
        if estimate.cuid is not CacheUsage.SENSITIVE:
            return base
        if estimate.total_bytes <= 0:
            return base
        way_bytes = self.spec.llc.way_bytes
        needed_ways = -(-estimate.total_bytes // way_bytes) + 1
        needed_ways = max(self.spec.cat_min_bits, needed_ways)
        if needed_ways >= self.spec.llc.ways:
            return base
        return (1 << needed_ways) - 1

    def estimate_sensitivity_to_corunner(
        self, estimate: WorkingSetEstimate
    ) -> bool:
        """True when cache pollution is expected to hurt this operator:
        its working set is LLC-manageable (not compulsory-miss bound)
        and exceeds the private L2s."""
        total = estimate.total_bytes
        return (
            self.spec.l2_total_bytes
            < total
            <= 2 * self.spec.llc.size_bytes
        )
