"""Attaching cache partitioning to a database.

:class:`CachePartitioning` is the deployment-facing API: point it at a
:class:`~repro.engine.database.Database`, pick a scheme, and use it
either imperatively (``enable()`` / ``disable()``) or as a context
manager for scoped experiments.
"""

from __future__ import annotations

from ..engine.database import Database
from .policy import PartitioningScheme, paper_scheme


class CachePartitioning:
    """Scheme-level switch for a database's cache partitioning.

    Example::

        partitioning = CachePartitioning(db)     # paper's scheme
        with partitioning:
            db.execute(...)                      # partitioned
        db.execute(...)                          # back to unpartitioned
    """

    def __init__(
        self,
        database: Database,
        scheme: PartitioningScheme | None = None,
    ) -> None:
        self._database = database
        self._scheme = scheme if scheme is not None else paper_scheme()

    @property
    def scheme(self) -> PartitioningScheme:
        return self._scheme

    def apply_scheme(self, scheme: PartitioningScheme) -> None:
        """Swap the scheme; takes effect on the next enable/job."""
        self._scheme = scheme
        if self._database.cache_partitioning_enabled:
            self.enable()

    def enable(self) -> None:
        policy = self._scheme.to_cuid_policy(self._database.spec)
        self._database.enable_cache_partitioning(policy)

    def disable(self) -> None:
        self._database.disable_cache_partitioning()

    def __enter__(self) -> "CachePartitioning":
        self.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disable()
