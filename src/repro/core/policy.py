"""Cache-partitioning schemes.

A :class:`PartitioningScheme` expresses the paper's policy in LLC
*fractions* (how the paper reasons) and lowers to hardware bitmasks /
a :class:`~repro.engine.cache_control.CuidPolicy` (how it executes).

The paper's final scheme (Sec. V-B/V-C):

* polluting jobs (column scan; small-bit-vector join): 10 % -> ``0x3``,
* sensitive jobs (aggregation; default for unknown jobs): 100 %,
* adaptive jobs resolved as sensitive (LLC-sized bit-vector join):
  60 % -> ``0xfff``.

Restricted masks use the *low* ways, so a restricted polluter shares
its slice with full-mask queries rather than carving it out of them —
matching Fig. 7's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..errors import CatError
from ..hardware.cat import mask_from_fraction
from ..engine.cache_control import CuidPolicy


@dataclass(frozen=True)
class PartitioningScheme:
    """A named scheme in LLC fractions, lowerable to bitmasks."""

    name: str
    polluting_fraction: float
    sensitive_fraction: float
    adaptive_sensitive_fraction: float

    def __post_init__(self) -> None:
        for field_name in (
            "polluting_fraction",
            "sensitive_fraction",
            "adaptive_sensitive_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise CatError(
                    f"{field_name} must be in (0, 1], got {value}"
                )

    def to_cuid_policy(self, spec: SystemSpec) -> CuidPolicy:
        """Lower the fractions to hardware capacity bitmasks."""
        return CuidPolicy(
            polluting_mask=mask_from_fraction(spec, self.polluting_fraction),
            sensitive_mask=mask_from_fraction(spec, self.sensitive_fraction),
            adaptive_sensitive_mask=mask_from_fraction(
                spec, self.adaptive_sensitive_fraction
            ),
        )

    def masks(self, spec: SystemSpec) -> dict[str, int]:
        """The scheme's bitmasks, for reporting."""
        policy = self.to_cuid_policy(spec)
        return {
            "polluting": policy.polluting_mask,
            "sensitive": policy.sensitive_mask,
            "adaptive_sensitive": policy.adaptive_sensitive_mask,
        }


def paper_scheme() -> PartitioningScheme:
    """The scheme the paper ships (Sec. V-B): 10 % / 100 % / 60 %."""
    return PartitioningScheme(
        name="paper_default",
        polluting_fraction=0.10,
        sensitive_fraction=1.0,
        adaptive_sensitive_fraction=0.60,
    )


def join_restricted_scheme() -> PartitioningScheme:
    """The Fig. 10b counter-example: restrict even LLC-sized joins to
    10 % — shown by the paper to *regress* the join by 15-31 %."""
    return PartitioningScheme(
        name="join_restricted_10pct",
        polluting_fraction=0.10,
        sensitive_fraction=1.0,
        adaptive_sensitive_fraction=0.10,
    )


def unpartitioned_scheme() -> PartitioningScheme:
    """Baseline: everyone gets the whole LLC."""
    return PartitioningScheme(
        name="unpartitioned",
        polluting_fraction=1.0,
        sensitive_fraction=1.0,
        adaptive_sensitive_fraction=1.0,
    )
