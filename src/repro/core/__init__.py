"""The paper's primary contribution, packaged as a reusable API.

Three pieces:

* :mod:`repro.core.policy` — named cache-partitioning schemes expressed
  as LLC fractions (the paper's 10 % / 60 % / 100 % scheme and the
  alternatives it evaluates),
* :mod:`repro.core.advisor` — derives a scheme from micro-benchmark
  sweeps, automating the paper's Sec. IV -> Sec. V-B derivation,
* :mod:`repro.core.integration` — attaches partitioning to a running
  :class:`~repro.engine.database.Database`.
"""

from .advisor import CacheSensitivity, SensitivityReport, analyze_sweep, derive_policy
from .estimator import (
    ColumnStatistics,
    WorkingSetEstimate,
    WorkingSetEstimator,
)
from .integration import CachePartitioning
from .online import OnlineClassification, OnlineClassifier
from .policy import (
    PartitioningScheme,
    join_restricted_scheme,
    paper_scheme,
    unpartitioned_scheme,
)
from .scheduling import CacheAwareScheduler, Phase, ScheduledQuery

__all__ = [
    "CacheAwareScheduler",
    "CachePartitioning",
    "CacheSensitivity",
    "ColumnStatistics",
    "WorkingSetEstimate",
    "WorkingSetEstimator",
    "OnlineClassification",
    "OnlineClassifier",
    "PartitioningScheme",
    "Phase",
    "ScheduledQuery",
    "SensitivityReport",
    "analyze_sweep",
    "derive_policy",
    "join_restricted_scheme",
    "paper_scheme",
    "unpartitioned_scheme",
]
