"""Cache-aware co-scheduling (the paper's future-work proposal).

The paper closes with: *"it might be advisable to co-run operators with
high cache pollution characteristics, but let cache-sensitive queries
rather run alone"* (Sec. VIII, following Lee et al.).  This module
implements and evaluates that strategy on the performance model.

Given a batch of queries with CUID annotations, the scheduler builds
*phases* of at most ``max_corun`` concurrent queries:

* **naive**: first-come-first-served pairing, ignoring cache usage —
  the baseline any engine without cache-awareness implements,
* **cache_aware**: polluters are paired with polluters; sensitive
  queries are paired with (CAT-restricted) polluters only when no
  polluter-polluter pairing is possible, and otherwise run together
  with other sensitive queries (which share the LLC gracefully) —
  never with an *unrestricted* polluter.

Phases are evaluated by the workload simulator; the figure of merit is
the batch *makespan* (sum of phase times, each phase as slow as its
slowest member's remaining work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..engine.cache_control import CuidPolicy
from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import QuerySpec, WorkloadSimulator
from ..model.streams import AccessProfile
from ..operators.base import CacheUsage


@dataclass(frozen=True)
class ScheduledQuery:
    """A query waiting to be scheduled."""

    name: str
    profile: AccessProfile
    cuid: CacheUsage

    def __post_init__(self) -> None:
        if self.cuid is CacheUsage.ADAPTIVE:
            raise WorkloadError(
                f"query {self.name!r}: resolve ADAPTIVE to "
                "POLLUTING/SENSITIVE before scheduling"
            )


@dataclass
class Phase:
    """One co-run phase: queries executed concurrently."""

    queries: list[ScheduledQuery]
    partitioned: bool = True
    duration_s: float = 0.0
    throughputs: dict[str, float] = field(default_factory=dict)


@dataclass
class ScheduleOutcome:
    """Evaluated schedule."""

    strategy: str
    phases: list[Phase]
    makespan_s: float


class CacheAwareScheduler:
    """Builds and evaluates co-run schedules."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        max_corun: int = 2,
    ) -> None:
        if max_corun < 1:
            raise WorkloadError(f"max_corun must be >= 1: {max_corun}")
        self.spec = spec if spec is not None else SystemSpec()
        self.simulator = WorkloadSimulator(self.spec, calibration)
        self.max_corun = max_corun
        self._policy = CuidPolicy.paper_default(self.spec)

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------

    def naive_schedule(
        self, queries: list[ScheduledQuery]
    ) -> list[Phase]:
        """FCFS batching, no cache awareness, no partitioning."""
        phases = []
        for start in range(0, len(queries), self.max_corun):
            phases.append(
                Phase(
                    queries=list(queries[start:start + self.max_corun]),
                    partitioned=False,
                )
            )
        return phases

    def cache_aware_schedule(
        self, queries: list[ScheduledQuery]
    ) -> list[Phase]:
        """Pair polluters together; protect sensitive queries.

        Order of preference (paper Sec. VIII):
        1. polluter + polluter (they cannot hurt each other's caches),
        2. sensitive + sensitive (graceful LLC sharing),
        3. sensitive + restricted polluter (CAT partitioning on),
        4. singletons for the remainder.
        """
        polluters = [q for q in queries
                     if q.cuid is CacheUsage.POLLUTING]
        sensitive = [q for q in queries
                     if q.cuid is CacheUsage.SENSITIVE]
        phases: list[Phase] = []

        while len(polluters) >= 2 and self.max_corun >= 2:
            batch = [polluters.pop(0)
                     for _ in range(min(self.max_corun, len(polluters)))]
            phases.append(Phase(queries=batch, partitioned=False))

        while len(sensitive) >= 2 and self.max_corun >= 2:
            batch = [sensitive.pop(0)
                     for _ in range(min(self.max_corun, len(sensitive)))]
            phases.append(Phase(queries=batch, partitioned=True))

        if sensitive and polluters and self.max_corun >= 2:
            phases.append(
                Phase(queries=[sensitive.pop(0), polluters.pop(0)],
                      partitioned=True)
            )
        for leftover in sensitive + polluters:
            phases.append(Phase(queries=[leftover], partitioned=False))
        return phases

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _mask_for(self, query: ScheduledQuery, partitioned: bool) -> int:
        if not partitioned:
            return self.spec.full_mask
        if query.cuid is CacheUsage.POLLUTING:
            return self._policy.polluting_mask
        return self._policy.sensitive_mask

    def evaluate(self, strategy: str,
                 phases: list[Phase]) -> ScheduleOutcome:
        """Simulate every phase; compute the batch makespan.

        A phase lasts until its *slowest* member finishes its work
        (``profile.tuples`` items at the simulated throughput); faster
        members idle, which is what penalises bad pairings.
        """
        makespan = 0.0
        for phase in phases:
            if not phase.queries:
                raise WorkloadError("empty phase in schedule")
            specs = [
                QuerySpec(
                    query.name,
                    query.profile,
                    cores=self.spec.cores,
                    mask=self._mask_for(query, phase.partitioned),
                )
                for query in phase.queries
            ]
            results = self.simulator.simulate(specs)
            phase.throughputs = {
                name: result.throughput_tuples_per_s
                for name, result in results.items()
            }
            phase.duration_s = max(
                query.profile.tuples
                / results[query.name].throughput_tuples_per_s
                for query in phase.queries
            )
            makespan += phase.duration_s
        return ScheduleOutcome(strategy, phases, makespan)

    def compare(
        self, queries: list[ScheduledQuery]
    ) -> dict[str, ScheduleOutcome]:
        """Evaluate both strategies on the same batch."""
        if not queries:
            raise WorkloadError("cannot schedule an empty batch")
        return {
            "naive": self.evaluate(
                "naive", self.naive_schedule(queries)
            ),
            "cache_aware": self.evaluate(
                "cache_aware", self.cache_aware_schedule(queries)
            ),
        }
