"""Deriving a partitioning scheme from micro-benchmark sweeps.

The paper derives its scheme manually from Figs. 4-6: "give the column
scan the smallest amount of cache without reducing performance" and
"the join degrades below 35 MiB, so give it 60 %".  This module
automates that reasoning: given (cache fraction -> normalized
throughput) sweep points for an operator, it finds the smallest cache
fraction that keeps throughput within a tolerance of the full-cache
throughput, classifies the operator, and assembles a
:class:`~repro.core.policy.PartitioningScheme`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import WorkloadError
from .policy import PartitioningScheme


class CacheSensitivity(enum.Enum):
    """Operator classification derived from its sweep."""

    INSENSITIVE = "insensitive"       # flat curve: a polluter candidate
    SENSITIVE = "sensitive"           # needs a large fraction
    PARTIALLY_SENSITIVE = "partially_sensitive"  # needs a mid fraction


@dataclass(frozen=True)
class SensitivityReport:
    """Outcome of analysing one operator's cache-size sweep."""

    operator: str
    sensitivity: CacheSensitivity
    min_safe_fraction: float
    worst_degradation: float

    @property
    def recommended_fraction(self) -> float:
        """Cache fraction the scheme should grant this operator."""
        return self.min_safe_fraction


def analyze_sweep(
    operator: str,
    sweep: list[tuple[float, float]],
    tolerance: float = 0.03,
) -> SensitivityReport:
    """Classify an operator from (fraction, normalized throughput) points.

    ``sweep`` must include the full-cache point (fraction 1.0, by
    definition throughput 1.0).  ``tolerance`` is the accepted
    throughput loss: the minimum safe fraction is the smallest fraction
    whose throughput is at least ``1 - tolerance``.
    """
    if not sweep:
        raise WorkloadError(f"empty sweep for operator {operator!r}")
    points = sorted(sweep)
    fractions = [fraction for fraction, _ in points]
    if not any(abs(fraction - 1.0) < 1e-9 for fraction in fractions):
        raise WorkloadError(
            f"sweep for {operator!r} must include the full-cache point"
        )
    for fraction, throughput in points:
        if not 0.0 < fraction <= 1.0:
            raise WorkloadError(
                f"sweep fraction out of (0, 1]: {fraction}"
            )
        if throughput < 0.0:
            raise WorkloadError(
                f"normalized throughput must be >= 0: {throughput}"
            )

    floor = 1.0 - tolerance
    min_safe = 1.0
    # Walk from the largest fraction down while throughput stays safe.
    for fraction, throughput in reversed(points):
        if throughput >= floor:
            min_safe = fraction
        else:
            break
    worst = 1.0 - min(throughput for _, throughput in points)

    if min_safe <= 0.15:
        sensitivity = CacheSensitivity.INSENSITIVE
    elif min_safe >= 0.75:
        sensitivity = CacheSensitivity.SENSITIVE
    else:
        sensitivity = CacheSensitivity.PARTIALLY_SENSITIVE
    return SensitivityReport(operator, sensitivity, min_safe, worst)


def derive_policy(
    reports: list[SensitivityReport],
    name: str = "derived",
) -> PartitioningScheme:
    """Assemble a scheme from per-operator sensitivity reports.

    * insensitive operators define the polluter fraction (their largest
      safe minimum, floored at 10 % — one way below that thrashes, see
      paper Sec. V-B),
    * sensitive operators keep 100 %,
    * partially sensitive operators define the adaptive fraction.
    """
    if not reports:
        raise WorkloadError("derive_policy needs at least one report")
    polluter_candidates = [
        r.min_safe_fraction
        for r in reports
        if r.sensitivity is CacheSensitivity.INSENSITIVE
    ]
    adaptive_candidates = [
        r.min_safe_fraction
        for r in reports
        if r.sensitivity is CacheSensitivity.PARTIALLY_SENSITIVE
    ]
    polluting = max([0.10] + polluter_candidates) if polluter_candidates else 0.10
    adaptive = max(adaptive_candidates) if adaptive_candidates else 0.60
    return PartitioningScheme(
        name=name,
        polluting_fraction=polluting,
        sensitive_fraction=1.0,
        adaptive_sensitive_fraction=adaptive,
    )
