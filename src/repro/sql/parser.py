"""Recursive-descent parser for the supported SQL dialect.

Covers exactly the statement shapes the paper's experiments use
(Figs. 2 and 3) plus the OLTP point-select projection of Sec. VI-E:

* ``CREATE COLUMN TABLE t (c INT, ..., PRIMARY KEY(c))``
* ``SELECT COUNT(*) FROM t WHERE t.c > ?``
* ``SELECT MAX(t.v), t.g FROM t GROUP BY t.g``
* ``SELECT COUNT(*) FROM r, s WHERE r.p = s.f``
* ``SELECT c1, c2 FROM t WHERE k1 = ? AND k2 = ?``
"""

from __future__ import annotations

from typing import Union

from ..errors import SqlParseError
from .ast import (
    Aggregate,
    ColumnDef,
    ColumnRef,
    Comparison,
    CountStar,
    CreateTable,
    Literal,
    Parameter,
    Select,
    SelectItem,
)
from .lexer import Token, tokenize

_AGG_KEYWORDS = {"MAX", "MIN", "SUM", "AVG"}
_TYPE_KEYWORDS = {"INT", "BIGINT", "DECIMAL", "NVARCHAR"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of statement")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise SqlParseError(
                f"expected {expected!r} but found {token.value!r} at "
                f"position {token.position}"
            )
        return token

    def _accept(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if (
            token is not None
            and token.kind == kind
            and (value is None or token.value == value)
        ):
            self._pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------

    def parse_statement(self) -> Union[Select, CreateTable]:
        token = self._peek()
        if token is None:
            raise SqlParseError("empty statement")
        if token.kind == "keyword" and token.value == "SELECT":
            statement = self._select()
        elif token.kind == "keyword" and token.value == "CREATE":
            statement = self._create_table()
        else:
            raise SqlParseError(
                f"statement must start with SELECT or CREATE, found "
                f"{token.value!r}"
            )
        self._accept("symbol", ";")
        trailing = self._peek()
        if trailing is not None:
            raise SqlParseError(
                f"unexpected trailing token {trailing.value!r} at position "
                f"{trailing.position}"
            )
        return statement

    def _create_table(self) -> CreateTable:
        self._expect("keyword", "CREATE")
        self._expect("keyword", "COLUMN")
        self._expect("keyword", "TABLE")
        name = self._expect("ident").value
        self._expect("symbol", "(")
        columns: list[ColumnDef] = []
        primary_key: str | None = None
        while True:
            if self._accept("keyword", "PRIMARY"):
                self._expect("keyword", "KEY")
                self._expect("symbol", "(")
                pk_column = self._expect("ident").value
                self._expect("symbol", ")")
                if primary_key is not None:
                    raise SqlParseError("duplicate PRIMARY KEY clause")
                primary_key = pk_column
            else:
                column_name = self._expect("ident").value
                type_token = self._next()
                if (
                    type_token.kind != "keyword"
                    or type_token.value not in _TYPE_KEYWORDS
                ):
                    raise SqlParseError(
                        f"unknown column type {type_token.value!r}"
                    )
                is_pk = False
                if self._accept("keyword", "PRIMARY"):
                    self._expect("keyword", "KEY")
                    is_pk = True
                columns.append(
                    ColumnDef(column_name, type_token.value, is_pk)
                )
            if self._accept("symbol", ","):
                continue
            self._expect("symbol", ")")
            break
        inline_pks = [c.name for c in columns if c.primary_key]
        if inline_pks and primary_key:
            raise SqlParseError("PRIMARY KEY declared twice")
        if inline_pks:
            primary_key = inline_pks[0]
        if primary_key is not None and primary_key not in {
            c.name for c in columns
        }:
            raise SqlParseError(
                f"PRIMARY KEY references unknown column {primary_key!r}"
            )
        return CreateTable(name, tuple(columns), primary_key)

    def _select(self) -> Select:
        self._expect("keyword", "SELECT")
        items = [self._select_item()]
        while self._accept("symbol", ","):
            items.append(self._select_item())
        self._expect("keyword", "FROM")
        tables = [self._expect("ident").value]
        while self._accept("symbol", ","):
            tables.append(self._expect("ident").value)
        where: list[Comparison] = []
        if self._accept("keyword", "WHERE"):
            where.append(self._comparison())
            while self._accept("keyword", "AND"):
                where.append(self._comparison())
        group_by: list[ColumnRef] = []
        if self._accept("keyword", "GROUP"):
            self._expect("keyword", "BY")
            group_by.append(self._column_ref())
            while self._accept("symbol", ","):
                group_by.append(self._column_ref())
        return Select(tuple(items), tuple(tables), tuple(where),
                      tuple(group_by))

    def _select_item(self) -> SelectItem:
        token = self._peek()
        if token is not None and token.kind == "keyword":
            if token.value == "COUNT":
                self._next()
                self._expect("symbol", "(")
                self._expect("symbol", "*")
                self._expect("symbol", ")")
                return CountStar()
            if token.value in _AGG_KEYWORDS:
                self._next()
                self._expect("symbol", "(")
                column = self._column_ref()
                self._expect("symbol", ")")
                return Aggregate(token.value, column)
        return self._column_ref()

    def _column_ref(self) -> ColumnRef:
        first = self._expect("ident").value
        if self._accept("symbol", "."):
            second = self._expect("ident").value
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def _operand(self):
        token = self._peek()
        if token is None:
            raise SqlParseError("expected an operand")
        if token.kind == "param":
            self._next()
            parameter = Parameter(self._param_count)
            self._param_count += 1
            return parameter
        if token.kind == "number":
            self._next()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        return self._column_ref()

    def _comparison(self) -> Comparison:
        left = self._operand()
        op_token = self._next()
        if op_token.kind != "op":
            raise SqlParseError(
                f"expected a comparison operator, found {op_token.value!r}"
            )
        right = self._operand()
        return Comparison(left, op_token.value, right)


def parse(text: str) -> Union[Select, CreateTable]:
    """Parse one SQL statement."""
    return _Parser(tokenize(text)).parse_statement()
