"""SQL front end.

A small, real SQL layer covering the statement shapes of the paper's
experiments (Figs. 2 and 3): ``CREATE COLUMN TABLE`` DDL, counting
scans with range predicates, grouped aggregation, foreign-key joins and
OLTP point-select projections.  Statements are lexed, parsed into an
AST and planned onto the physical operators of :mod:`repro.operators`.
"""

from .ast import (
    Aggregate,
    ColumnDef,
    ColumnRef,
    Comparison,
    CountStar,
    CreateTable,
    Literal,
    Parameter,
    Select,
)
from .lexer import Token, tokenize
from .parser import parse
from .planner import Planner, PlannedQuery

__all__ = [
    "Aggregate",
    "ColumnDef",
    "ColumnRef",
    "Comparison",
    "CountStar",
    "CreateTable",
    "Literal",
    "Parameter",
    "PlannedQuery",
    "Planner",
    "Select",
    "Token",
    "parse",
    "tokenize",
]
