"""Query planner: AST -> physical operator.

Recognises the plan shapes of the paper's workload:

* counting scan with a single range/equality predicate -> ``ColumnScan``,
* aggregate + GROUP BY -> ``GroupedAggregation``,
* two-table COUNT(*) with a PK = FK equality -> ``ForeignKeyJoin``,
* plain column projection with equality predicates -> ``PointSelect``.

The planner resolves positional ``?`` parameters against the supplied
argument list and validates column/table references against the loaded
schema, raising :class:`~repro.errors.SqlPlanError` with a precise
message otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..config import SystemSpec
from ..errors import SqlPlanError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..operators import (
    ColumnScan,
    ForeignKeyJoin,
    GroupedAggregation,
    PhysicalOperator,
    PointSelect,
)
from ..storage.table import ColumnTable
from .ast import (
    Aggregate,
    ColumnRef,
    CountStar,
    Literal,
    Parameter,
    Select,
)


@dataclass
class PlannedQuery:
    """A physical plan: the root operator plus plan metadata."""

    kind: str
    root: PhysicalOperator
    description: str

    def execute(self):
        return self.root.execute()


class Planner:
    """Plans SELECT statements against a table registry."""

    def __init__(
        self,
        tables: dict[str, ColumnTable],
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        default_workers: int = 4,
    ) -> None:
        self._tables = tables
        self._spec = spec if spec is not None else SystemSpec()
        self._calibration = calibration
        self._default_workers = default_workers

    # ------------------------------------------------------------------

    def plan(
        self, select: Select, params: Sequence[object] = ()
    ) -> PlannedQuery:
        """Map a SELECT AST onto a physical operator."""
        resolve = self._make_resolver(params, select)
        if len(select.tables) == 2:
            return self._plan_join(select)
        if len(select.tables) != 1:
            raise SqlPlanError(
                f"queries over {len(select.tables)} tables are not supported"
            )
        table = self._table(select.tables[0])
        if select.group_by:
            return self._plan_aggregation(select, table)
        if len(select.items) == 1 and isinstance(select.items[0], CountStar):
            return self._plan_scan(select, table, resolve)
        if all(isinstance(item, ColumnRef) for item in select.items):
            return self._plan_point_select(select, table, resolve)
        raise SqlPlanError(
            "unsupported SELECT shape: expected COUNT(*), GROUP BY "
            "aggregation, or a plain projection"
        )

    # ------------------------------------------------------------------

    def _table(self, name: str) -> ColumnTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlPlanError(f"unknown table {name!r}") from None

    def _make_resolver(
        self, params: Sequence[object], select: Select
    ) -> Callable[[object], object]:
        needed = sum(
            isinstance(operand, Parameter)
            for comparison in select.where
            for operand in (comparison.left, comparison.right)
        )
        if needed != len(params):
            raise SqlPlanError(
                f"statement has {needed} parameter(s) but {len(params)} "
                "value(s) were supplied"
            )

        def resolve(operand):
            if isinstance(operand, Parameter):
                return params[operand.index]
            if isinstance(operand, Literal):
                return operand.value
            raise SqlPlanError(
                f"expected a literal or parameter, found {operand}"
            )

        return resolve

    def _check_column(self, table: ColumnTable, ref: ColumnRef) -> str:
        if ref.table is not None and ref.table != table.name:
            raise SqlPlanError(
                f"column {ref} does not belong to table {table.name!r}"
            )
        table.schema.column(ref.column)  # raises StorageError if missing
        return ref.column

    # ------------------------------------------------------------------

    def _plan_scan(self, select: Select, table, resolve) -> PlannedQuery:
        if len(select.where) != 1:
            raise SqlPlanError(
                "counting scan expects exactly one WHERE predicate"
            )
        predicate = select.where[0]
        if not isinstance(predicate.left, ColumnRef):
            raise SqlPlanError("scan predicate must compare a column")
        column = self._check_column(table, predicate.left)
        bound = resolve(predicate.right)
        operator = ColumnScan(
            table, column, predicate.op, bound, self._calibration
        )
        return PlannedQuery(
            kind="column_scan",
            root=operator,
            description=(
                f"ColumnScan({table.name}.{column} {predicate.op} {bound})"
            ),
        )

    def _plan_aggregation(self, select: Select, table) -> PlannedQuery:
        aggregates = [i for i in select.items if isinstance(i, Aggregate)]
        if len(aggregates) != 1:
            raise SqlPlanError(
                "grouped aggregation expects exactly one aggregate function"
            )
        if len(select.group_by) != 1:
            raise SqlPlanError("exactly one GROUP BY column is supported")
        if select.where:
            raise SqlPlanError(
                "WHERE on grouped aggregation is not supported"
            )
        value_column = self._check_column(table, aggregates[0].column)
        group_column = self._check_column(table, select.group_by[0])
        non_agg = [i for i in select.items if isinstance(i, ColumnRef)]
        for item in non_agg:
            if self._check_column(table, item) != group_column:
                raise SqlPlanError(
                    f"projected column {item} must be the GROUP BY column"
                )
        operator = GroupedAggregation(
            table,
            value_column,
            group_column,
            aggregates[0].function,
            workers=self._default_workers,
            calibration=self._calibration,
        )
        return PlannedQuery(
            kind="grouped_aggregation",
            root=operator,
            description=(
                f"GroupedAggregation({aggregates[0].function}"
                f"({table.name}.{value_column}) BY {group_column})"
            ),
        )

    def _plan_join(self, select: Select) -> PlannedQuery:
        if len(select.items) != 1 or not isinstance(
            select.items[0], CountStar
        ):
            raise SqlPlanError("joins support COUNT(*) only")
        if len(select.where) != 1 or select.where[0].op != "=":
            raise SqlPlanError(
                "join expects exactly one equality WHERE predicate"
            )
        predicate = select.where[0]
        if not isinstance(predicate.left, ColumnRef) or not isinstance(
            predicate.right, ColumnRef
        ):
            raise SqlPlanError("join predicate must compare two columns")

        left_table = self._table(select.tables[0])
        right_table = self._table(select.tables[1])
        sides = {}
        for ref in (predicate.left, predicate.right):
            if ref.table == left_table.name:
                sides[left_table.name] = self._check_column(left_table, ref)
            elif ref.table == right_table.name:
                sides[right_table.name] = self._check_column(right_table, ref)
            else:
                raise SqlPlanError(
                    f"join column {ref} must be table-qualified with one of "
                    f"{select.tables}"
                )
        if len(sides) != 2:
            raise SqlPlanError("join predicate must reference both tables")

        # Identify the primary-key side.
        if left_table.schema.primary_key == sides[left_table.name]:
            pk_table, fk_table = left_table, right_table
        elif right_table.schema.primary_key == sides[right_table.name]:
            pk_table, fk_table = right_table, left_table
        else:
            raise SqlPlanError(
                "foreign-key join requires one side to be a primary key"
            )
        operator = ForeignKeyJoin(
            pk_table,
            sides[pk_table.name],
            fk_table,
            sides[fk_table.name],
            spec=self._spec,
            calibration=self._calibration,
        )
        return PlannedQuery(
            kind="foreign_key_join",
            root=operator,
            description=(
                f"ForeignKeyJoin({pk_table.name}.{sides[pk_table.name]} = "
                f"{fk_table.name}.{sides[fk_table.name]})"
            ),
        )

    def _plan_point_select(self, select, table, resolve) -> PlannedQuery:
        if not select.where:
            raise SqlPlanError("point select requires WHERE predicates")
        predicates: dict[str, object] = {}
        for comparison in select.where:
            if comparison.op != "=" or not isinstance(
                comparison.left, ColumnRef
            ):
                raise SqlPlanError(
                    "point select supports equality predicates on columns"
                )
            column = self._check_column(table, comparison.left)
            predicates[column] = resolve(comparison.right)
        projected = [
            self._check_column(table, item) for item in select.items
        ]
        operator = PointSelect(
            table, projected, predicates, self._calibration
        )
        return PlannedQuery(
            kind="point_select",
            root=operator,
            description=(
                f"PointSelect({table.name}: {projected} WHERE "
                f"{sorted(predicates)})"
            ),
        )
