"""Abstract syntax tree for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal:
    """A numeric literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class Parameter:
    """A positional ``?`` placeholder (0-based index)."""

    index: int


@dataclass(frozen=True)
class CountStar:
    """``COUNT(*)``."""


@dataclass(frozen=True)
class Aggregate:
    """``MAX(col)`` / ``MIN(col)`` / ``SUM(col)`` / ``AVG(col)``."""

    function: str
    column: ColumnRef


SelectItem = Union[CountStar, Aggregate, ColumnRef]
Operand = Union[ColumnRef, Literal, Parameter]


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` in a WHERE conjunction."""

    left: Operand
    op: str
    right: Operand


@dataclass(frozen=True)
class Select:
    """A SELECT statement (single conjunctive WHERE, optional GROUP BY)."""

    items: tuple[SelectItem, ...]
    tables: tuple[str, ...]
    where: tuple[Comparison, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()


@dataclass(frozen=True)
class ColumnDef:
    """A column declaration in CREATE COLUMN TABLE."""

    name: str
    data_type: str
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    """``CREATE COLUMN TABLE`` statement."""

    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: Optional[str] = None
