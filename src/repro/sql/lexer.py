"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND",
    "CREATE", "COLUMN", "TABLE", "PRIMARY", "KEY",
    "COUNT", "MAX", "MIN", "SUM", "AVG",
    "INT", "BIGINT", "DECIMAL", "NVARCHAR",
}

_SYMBOLS = {"(", ")", ",", "*", ".", ";", "?"}
_OPERATORS = {">", "<", "=", ">=", "<=", "<>"}


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'keyword', 'ident', 'number', 'op',
    'symbol' or 'param'."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; raises :class:`SqlParseError`."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # Line comment.
            end = text.find("\n", i)
            i = length if end < 0 else end + 1
            continue
        if ch in "<>=":
            two = text[i : i + 2]
            if two in _OPERATORS:
                tokens.append(Token("op", two, i))
                i += 2
            else:
                tokens.append(Token("op", ch, i))
                i += 1
            continue
        if ch == "?":
            tokens.append(Token("param", "?", i))
            i += 1
            continue
        if ch in _SYMBOLS:
            tokens.append(Token("symbol", ch, i))
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < length and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.upper() in KEYWORDS else "ident"
            value = word.upper() if kind == "keyword" else word
            tokens.append(Token(kind, value, i))
            i = j
            continue
        raise SqlParseError(f"unexpected character {ch!r} at position {i}")
    return tokens
