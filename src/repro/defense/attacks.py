"""Seeded adversarial tenant workloads (contention attacks).

Three hostile profiles modeled on the Shadow-Hunting contention
primitives, expressed in the same :class:`~repro.model.streams.
AccessProfile` vocabulary every legitimate tenant uses — the fleet
admits, routes and simulates them like any other request class:

* **thrash** — an LLC thrasher: a random sweep over a footprint ~4x
  the LLC with near-zero reuse plus a streaming flood.  Evicts every
  co-resident line while gaining nothing from the cache itself.
* **saturate** — a memory-bus saturator: pure sequential streaming
  with almost no compute, maximising DRAM bytes per instruction.
* **probe** — an occupancy probe: bursty prime-style sweeps over a
  buffer just under the LLC size with high reuse.  It *occupies* the
  cache rather than streaming past it, so it classifies SENSITIVE —
  detection must catch it by occupancy x duty, not by CUID.

An :class:`AttackSpec` schedules one attack stream (start/stop/rate),
mirroring :class:`~repro.cluster.faults.FaultSpec`; schedules are
either explicit or drawn from a seeded generator
(:func:`seeded_attacks`) whose stream derives from the cluster seed via
``derive_from(seed, "attacks")`` so attack timing never perturbs any
node's arrival stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import seeding
from ..config import SystemSpec
from ..errors import DefenseError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion, SequentialStream
from ..operators.base import CacheUsage
from ..serve.arrivals import RequestClass

#: Schema version for serialized AttackSpec dictionaries.
ATTACK_SCHEMA_VERSION = 1

#: The recognised hostile profiles, in canonical order.
ATTACK_PROFILES = ("thrash", "saturate", "probe")

#: Default attack request rate (requests/s) for seeded schedules.
DEFAULT_ATTACK_RATE = 20.0

#: Work per attack request, in model tuples.  Sized so one request
#: runs ~50-120 ms of simulated service time at full cache —
#: long enough to dominate a node, short enough that streams at tens
#: of requests/s keep the pressure continuous.  The probe is the
#: heaviest: squatting works by *duty* (offered service seconds per
#: wall second), and the detector's duty gate sits at multiples of a
#: node's capacity, so probe requests must be long for default attack
#: rates to clear it (see docs/DEFENSE.md).
THRASH_REQUEST_TUPLES = 2.0e7
SATURATE_REQUEST_TUPLES = 2.0e7
PROBE_REQUEST_TUPLES = 1.2e8


@dataclass(frozen=True)
class AttackSpec:
    """One scheduled hostile tenant stream."""

    profile: str
    start_s: float = 0.0
    stop_s: float | None = None
    rate_per_s: float = DEFAULT_ATTACK_RATE

    def __post_init__(self) -> None:
        if self.profile not in ATTACK_PROFILES:
            raise DefenseError(
                f"unknown attack profile {self.profile!r}; expected "
                f"one of {ATTACK_PROFILES}"
            )
        if self.start_s < 0.0:
            raise DefenseError(
                f"attack start must be >= 0: {self.start_s}"
            )
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise DefenseError(
                "attack stop must follow the start: "
                f"{self.stop_s} <= {self.start_s}"
            )
        if self.rate_per_s <= 0.0:
            raise DefenseError(
                f"attack rate must be > 0: {self.rate_per_s}"
            )

    def to_dict(self) -> dict:
        return {
            "schema_version": ATTACK_SCHEMA_VERSION,
            "profile": self.profile,
            "start_s": round(self.start_s, 9),
            "stop_s": (
                None if self.stop_s is None else round(self.stop_s, 9)
            ),
            "rate_per_s": round(self.rate_per_s, 9),
        }


def attack_from_dict(payload: dict) -> AttackSpec:
    """Round-trip loader with explicit schema-version checks."""
    if "schema_version" not in payload:
        raise DefenseError(
            "attack spec carries no 'schema_version' key — refusing "
            "to guess its layout"
        )
    version = payload["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise DefenseError(
            f"invalid attack spec schema_version: {version!r}"
        )
    if version > ATTACK_SCHEMA_VERSION:
        raise DefenseError(
            f"attack spec schema_version {version} is newer than this "
            f"build understands (<= {ATTACK_SCHEMA_VERSION})"
        )
    try:
        return AttackSpec(
            profile=payload["profile"],
            start_s=float(payload["start_s"]),
            stop_s=(
                None if payload.get("stop_s") is None
                else float(payload["stop_s"])
            ),
            rate_per_s=float(payload["rate_per_s"]),
        )
    except KeyError as exc:
        raise DefenseError(
            f"attack spec is missing required key: {exc}"
        ) from None


def validate_attacks(
    attacks: tuple[AttackSpec, ...],
) -> tuple[AttackSpec, ...]:
    """Canonicalise a schedule: time-sorted, stable across input order.

    Stream indices (and therefore tenant ids and per-stream seed
    labels) are positions in this canonical order, so two ways of
    writing the same schedule produce byte-identical fleets.
    """
    return tuple(sorted(
        attacks,
        key=lambda a: (
            a.start_s,
            ATTACK_PROFILES.index(a.profile),
            a.rate_per_s,
            a.stop_s if a.stop_s is not None else float("inf"),
        ),
    ))


def seeded_attacks(
    count: int,
    duration_s: float,
    seed: int,
) -> tuple[AttackSpec, ...]:
    """Draw a random attack schedule from the cluster seed.

    Profiles uniform over :data:`ATTACK_PROFILES`, starts uniform in
    the first half of the run (after 10 %), each attack active for
    30-50 % of the horizon (clipped to the run end).
    """
    if count < 0:
        raise DefenseError(f"attack count must be >= 0: {count}")
    if count == 0:
        return ()
    if duration_s <= 0.0:
        raise DefenseError(
            f"attack horizon must be > 0: {duration_s}"
        )
    rng = np.random.default_rng(seeding.derive_from(seed, "attacks"))
    attacks = []
    for _ in range(count):
        profile = ATTACK_PROFILES[int(rng.integers(
            len(ATTACK_PROFILES)
        ))]
        start = float(rng.uniform(0.1 * duration_s, 0.5 * duration_s))
        length = float(rng.uniform(0.3 * duration_s, 0.5 * duration_s))
        stop = min(start + length, duration_s)
        if stop <= start:
            stop = None
        attacks.append(AttackSpec(
            profile=profile, start_s=start, stop_s=stop,
            rate_per_s=DEFAULT_ATTACK_RATE,
        ))
    return validate_attacks(tuple(attacks))


def attack_classes(
    workers: int = 22,
    calibration: Calibration = DEFAULT_CALIBRATION,
    spec: SystemSpec | None = None,
) -> dict[str, RequestClass]:
    """The hostile request classes, keyed by profile name.

    Each class is tenanted into its *own* group named after the
    profile (``thrash``, ``saturate``, ``probe``) — those group names
    are the ground-truth attack labels the report's false-positive
    accounting compares detector convictions against.
    """
    system = spec if spec is not None else SystemSpec()
    llc_bytes = float(system.llc.size_bytes)
    thrash = AccessProfile(
        name="atk_thrash",
        tuples=1.0e6,
        compute_cycles_per_tuple=1.0,
        instructions_per_tuple=2.0,
        regions=(RandomRegion(
            "sweep", 16.0 * llc_bytes, accesses_per_tuple=2.0,
        ),),
        streams=(SequentialStream("flood", 64.0),),
    )
    saturate = AccessProfile(
        name="atk_saturate",
        tuples=1.0e6,
        compute_cycles_per_tuple=0.5,
        instructions_per_tuple=1.0,
        streams=(SequentialStream("burst", 256.0),),
    )
    probe = AccessProfile(
        name="atk_probe",
        tuples=1.0e6,
        compute_cycles_per_tuple=1.0,
        instructions_per_tuple=2.0,
        regions=(RandomRegion(
            "prime", 0.95 * llc_bytes, accesses_per_tuple=8.0,
        ),),
    )
    return {
        "thrash": RequestClass(
            name="atk_thrash",
            tenant="thrash",
            profile=thrash,
            work_tuples=THRASH_REQUEST_TUPLES,
            static_cuid=CacheUsage.POLLUTING,
        ),
        "saturate": RequestClass(
            name="atk_saturate",
            tenant="saturate",
            profile=saturate,
            work_tuples=SATURATE_REQUEST_TUPLES,
            static_cuid=CacheUsage.POLLUTING,
        ),
        "probe": RequestClass(
            name="atk_probe",
            tenant="probe",
            profile=probe,
            work_tuples=PROBE_REQUEST_TUPLES,
            static_cuid=CacheUsage.SENSITIVE,
        ),
    }
