"""Online contention detection with hysteresis.

The detector consumes only counters the stack already records — the
per-window arrival counts the fleet keeps for planner training, the
online CUID classification (shared, memoized, through the adaptive
controller's :func:`~repro.serve.controller.classify_cached`), and the
model's bandwidth/occupancy estimates per request class.  From those
it derives three per-tenant-group signals per sampled window:

* **bandwidth share** — offered DRAM traffic (arrivals x modeled
  bytes/request) as a fraction of *one node's* bus bandwidth — an
  attack stream is a single tenant id, so consistent hashing lands
  all of it on one node, while a legitimate group's many tenants
  spread fleet-wide (the per-node normalisation is conservative
  toward aggressors, not victims),
* **duty** — offered service seconds per wall second (> 1 means the
  group alone can saturate a node),
* **occupancy** — the largest modeled LLC-resident fraction among the
  group's classes.

A group is *suspect* in a window when it is classified
polluting/unknown and claims more than ``bandwidth_share`` of the bus
(thrashers, saturators), or when it offers ``duty_threshold`` node-
seconds of service per wall second over a near-full LLC footprint
(occupancy probes, which classify SENSITIVE and must be caught by
occupancy x duty instead).  Hysteresis
turns window verdicts into convictions: ``convict_windows``
consecutive suspect windows convict, ``release_windows`` consecutive
clean windows release (windows with no arrivals count clean, so a
stopped attack reforms on schedule).

Everything is a pure function of the run configuration — the detector
never reads simulation state that depends on execution interleaving —
so defended fleets stay byte-identical across repeats and
``--fleet-jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..core.online import OnlineClassifier
from ..errors import DefenseError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import QuerySpec
from ..obs import runtime
from ..serve.arrivals import RequestClass
from ..serve.controller import classify_cached

#: Schema version for serialized detector state.
DETECTOR_SCHEMA_VERSION = 1

#: Recognised defense modes: monitoring only happens under jail/evict.
DEFENSE_MODES = ("off", "jail", "evict")

#: Oldest fleet report version whose defense block we can synthesise.
_MIN_FLEET_REPORT = 4

#: Newest fleet report version this build understands.
_MAX_FLEET_REPORT = 6


@dataclass(frozen=True)
class DefenseConfig:
    """Detector and quarantine knobs (CLI: ``--defense*``)."""

    mode: str = "off"
    interval_s: float = 1.0
    convict_windows: int = 2
    release_windows: int = 3
    bandwidth_share: float = 0.50
    occupancy_share: float = 0.85
    #: An occupancy probe must offer this many node-seconds of service
    #: per wall second to be suspect.  Legitimate interactive groups
    #: run near or just above 1.0 at healthy fleet loads, so the
    #: threshold sits well clear of them — only a tenant squatting on
    #: the LLC with *multiples* of a node's service capacity trips it.
    duty_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in DEFENSE_MODES:
            raise DefenseError(
                f"unknown defense mode {self.mode!r}; expected one "
                f"of {DEFENSE_MODES}"
            )
        if self.interval_s <= 0.0:
            raise DefenseError(
                f"defense interval must be > 0: {self.interval_s}"
            )
        if self.convict_windows < 1:
            raise DefenseError(
                "convict_windows must be >= 1: "
                f"{self.convict_windows}"
            )
        if self.release_windows < 1:
            raise DefenseError(
                "release_windows must be >= 1: "
                f"{self.release_windows}"
            )
        if not 0.0 < self.bandwidth_share <= 1.0:
            raise DefenseError(
                "bandwidth_share must be in (0, 1]: "
                f"{self.bandwidth_share}"
            )
        if not 0.0 < self.occupancy_share <= 1.0:
            raise DefenseError(
                "occupancy_share must be in (0, 1]: "
                f"{self.occupancy_share}"
            )
        if self.duty_threshold <= 0.0:
            raise DefenseError(
                f"duty_threshold must be > 0: {self.duty_threshold}"
            )

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "interval_s": round(self.interval_s, 9),
            "convict_windows": self.convict_windows,
            "release_windows": self.release_windows,
            "bandwidth_share": round(self.bandwidth_share, 9),
            "occupancy_share": round(self.occupancy_share, 9),
            "duty_threshold": round(self.duty_threshold, 9),
        }


def config_from_dict(payload: dict) -> DefenseConfig:
    try:
        return DefenseConfig(
            mode=payload["mode"],
            interval_s=float(payload["interval_s"]),
            convict_windows=int(payload["convict_windows"]),
            release_windows=int(payload["release_windows"]),
            bandwidth_share=float(payload["bandwidth_share"]),
            occupancy_share=float(payload["occupancy_share"]),
            duty_threshold=float(payload["duty_threshold"]),
        )
    except KeyError as exc:
        raise DefenseError(
            f"defense config is missing required key: {exc}"
        ) from None


class ContentionDetector:
    """Windowed aggressor detection over modeled per-class signals."""

    def __init__(
        self,
        spec: SystemSpec,
        config: DefenseConfig,
        classes: dict[str, RequestClass],
        nodes: int,
        window_s: float = 1.0,
        calibration: Calibration = DEFAULT_CALIBRATION,
        shared_cuids: dict[str, str] | None = None,
    ) -> None:
        if nodes < 1:
            raise DefenseError(f"detector needs >= 1 node: {nodes}")
        if window_s <= 0.0:
            raise DefenseError(
                f"detector window must be > 0: {window_s}"
            )
        self.spec = spec
        self.config = config
        self.nodes = nodes
        self.window_s = float(window_s)
        self._classes = dict(classes)
        self._classifier = OnlineClassifier(spec, calibration)
        self._cuids = (
            shared_cuids if shared_cuids is not None else {}
        )
        self._signals: dict[str, dict] = {}
        self._next_window = 0
        self._suspect_streak: dict[str, int] = {}
        self._clean_streak: dict[str, int] = {}
        self._convicted: set[str] = set()
        self.convictions: list[dict] = []
        self.releases: list[dict] = []

    # -- per-class signals (memoized model probes) ---------------------

    def _signal_for(self, cls: RequestClass) -> dict:
        signal = self._signals.get(cls.name)
        if signal is None:
            result = self._classifier.simulator.simulate(
                [QuerySpec(cls.profile.name, cls.profile,
                           self.spec.cores, self.spec.full_mask)]
            )[cls.profile.name]
            throughput = result.throughput_tuples_per_s
            cuid = classify_cached(
                self._classifier, cls, self._cuids
            )
            if throughput <= 0.0:
                # No throughput signal (starved probe): the class can
                # never be convicted on model evidence alone.
                signal = {
                    "cuid": cuid,
                    "dram_bytes_per_request": 0.0,
                    "occupancy_fraction": 0.0,
                    "request_s": 0.0,
                }
            else:
                request_s = cls.work_tuples / throughput
                occupancy = (
                    self._classifier._occupancy_estimate(result)
                    / self.spec.llc.size_bytes
                )
                signal = {
                    "cuid": cuid,
                    "dram_bytes_per_request": round(
                        result.dram_bytes_per_s * request_s, 6
                    ),
                    "occupancy_fraction": round(occupancy, 9),
                    "request_s": round(request_s, 9),
                }
            self._signals[cls.name] = signal
            runtime.metrics.counter("defense.probes").inc()
        return signal

    # -- window evaluation ---------------------------------------------

    def _window_verdicts(self, counts: dict[str, int]) -> set[str]:
        """The suspect groups of one arrival window."""
        by_group: dict[str, list[tuple[RequestClass, int]]] = {}
        for name in sorted(counts):
            cls = self._classes.get(name)
            if cls is None or counts[name] <= 0:
                continue
            by_group.setdefault(cls.tenant, []).append(
                (cls, counts[name])
            )
        bus = self.spec.dram.bandwidth_bytes_per_s * self.window_s
        suspects = set()
        for group, members in by_group.items():
            signals = [
                (self._signal_for(cls), count)
                for cls, count in members
            ]
            bw_share = sum(
                s["dram_bytes_per_request"] * count
                for s, count in signals
            ) / bus
            duty = sum(
                s["request_s"] * count for s, count in signals
            ) / self.window_s
            occupancy = max(
                s["occupancy_fraction"] for s, _ in signals
            )
            polluting = all(
                s["cuid"] in ("polluting", "unknown")
                for s, _ in signals
            )
            if polluting and bw_share >= self.config.bandwidth_share:
                suspects.add(group)
            elif (
                duty >= self.config.duty_threshold
                and occupancy >= self.config.occupancy_share
            ):
                suspects.add(group)
        return suspects

    def tick(
        self, now: float, class_windows: list[dict[str, int]]
    ) -> list[dict]:
        """Process every window fully elapsed by ``now``.

        Returns the convict/release actions in window order; the fleet
        applies them (jail masks, quarantine routing) as they return.
        """
        actions = []
        while (
            self._next_window < len(class_windows)
            and (self._next_window + 1) * self.window_s
            <= now + 1e-9
        ):
            window = self._next_window
            self._next_window += 1
            suspects = self._window_verdicts(class_windows[window])
            tracked = sorted(
                suspects | self._convicted
                | set(self._suspect_streak)
                | set(self._clean_streak)
            )
            for group in tracked:
                if group in suspects:
                    self._suspect_streak[group] = (
                        self._suspect_streak.get(group, 0) + 1
                    )
                    self._clean_streak[group] = 0
                else:
                    self._clean_streak[group] = (
                        self._clean_streak.get(group, 0) + 1
                    )
                    self._suspect_streak[group] = 0
                if (
                    group not in self._convicted
                    and self._suspect_streak[group]
                    >= self.config.convict_windows
                ):
                    self._convicted.add(group)
                    action = {
                        "action": "convict",
                        "group": group,
                        "window": window,
                        "time_s": round(
                            (window + 1) * self.window_s, 9
                        ),
                    }
                    self.convictions.append(action)
                    actions.append(action)
                    runtime.metrics.counter(
                        "defense.convictions"
                    ).inc()
                elif (
                    group in self._convicted
                    and self._clean_streak[group]
                    >= self.config.release_windows
                ):
                    self._convicted.discard(group)
                    del self._suspect_streak[group]
                    del self._clean_streak[group]
                    action = {
                        "action": "release",
                        "group": group,
                        "window": window,
                        "time_s": round(
                            (window + 1) * self.window_s, 9
                        ),
                    }
                    self.releases.append(action)
                    actions.append(action)
                    runtime.metrics.counter(
                        "defense.releases"
                    ).inc()
            runtime.metrics.counter("defense.windows").inc()
        return actions

    @property
    def convicted_groups(self) -> tuple[str, ...]:
        return tuple(sorted(self._convicted))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Byte-stable detector state (fleet report ``detector`` key)."""
        return {
            "schema_version": DETECTOR_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "window_s": round(self.window_s, 9),
            "nodes": self.nodes,
            "next_window": self._next_window,
            "convicted": sorted(self._convicted),
            "suspect_streaks": dict(
                sorted(self._suspect_streak.items())
            ),
            "clean_streaks": dict(
                sorted(self._clean_streak.items())
            ),
            "signals": {
                name: dict(sorted(signal.items()))
                for name, signal in sorted(self._signals.items())
            },
            "convictions": list(self.convictions),
            "releases": list(self.releases),
        }


def detector_from_dict(
    payload: dict,
    spec: SystemSpec | None = None,
    classes: dict[str, RequestClass] | None = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    shared_cuids: dict[str, str] | None = None,
) -> ContentionDetector:
    """Rebuild a detector from serialized state (round-trip loader).

    Cached signals restore verbatim (they are pure model probes, so
    the serialized values equal what a fresh probe would compute);
    ``to_dict`` of the result is byte-identical to the input.
    """
    if "schema_version" not in payload:
        raise DefenseError(
            "detector state carries no 'schema_version' key — "
            "refusing to guess its layout"
        )
    version = payload["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise DefenseError(
            f"invalid detector schema_version: {version!r}"
        )
    if version > DETECTOR_SCHEMA_VERSION:
        raise DefenseError(
            f"detector schema_version {version} is newer than this "
            f"build understands (<= {DETECTOR_SCHEMA_VERSION})"
        )
    try:
        detector = ContentionDetector(
            spec=spec if spec is not None else SystemSpec(),
            config=config_from_dict(payload["config"]),
            classes=classes if classes is not None else {},
            nodes=int(payload["nodes"]),
            window_s=float(payload["window_s"]),
            calibration=calibration,
            shared_cuids=shared_cuids,
        )
        detector._next_window = int(payload["next_window"])
        detector._convicted = set(payload["convicted"])
        detector._suspect_streak = dict(payload["suspect_streaks"])
        detector._clean_streak = dict(payload["clean_streaks"])
        detector._signals = {
            name: dict(signal)
            for name, signal in payload["signals"].items()
        }
        detector.convictions = [
            dict(c) for c in payload["convictions"]
        ]
        detector.releases = [dict(r) for r in payload["releases"]]
    except KeyError as exc:
        raise DefenseError(
            f"detector state is missing required key: {exc}"
        ) from None
    return detector


def load_defense(report: dict) -> dict:
    """Extract the ``defense`` block from a fleet report payload.

    Mirrors ``serve/replay.py``'s versioning contract: unversioned
    payloads are rejected outright, newer-than-build versions are
    rejected with the build's ceiling, and older versions that predate
    the block (fleet reports v4/v5) load as an explicit disabled
    block so downstream consumers need no version switch.
    """
    if "fleet_report_version" not in report:
        raise DefenseError(
            "fleet report carries no 'fleet_report_version' key — "
            "refusing to guess its layout; re-record it with this "
            "build"
        )
    version = report["fleet_report_version"]
    if not isinstance(version, int) or version < 1:
        raise DefenseError(
            f"invalid fleet_report_version: {version!r}"
        )
    if version > _MAX_FLEET_REPORT:
        raise DefenseError(
            f"fleet report v{version} is newer than this build "
            f"understands (<= {_MAX_FLEET_REPORT})"
        )
    if version < _MIN_FLEET_REPORT:
        raise DefenseError(
            f"fleet report v{version} predates the training-data "
            f"blocks (>= {_MIN_FLEET_REPORT}); re-record it with "
            "this build"
        )
    if version < _MAX_FLEET_REPORT or "defense" not in report:
        return {
            "enabled": False,
            "mode": "off",
            "attacks": [],
            "attack_arrivals": {},
            "ground_truth": [],
        }
    return report["defense"]
