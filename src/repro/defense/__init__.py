"""Adversarial tenants and online contention defense.

The paper's CAT partitioning story assumes tenants are merely *noisy*;
shared platforms face *hostile* ones.  This package models the
Shadow-Hunting contention primitives as schedulable fleet tenants
(:mod:`repro.defense.attacks`), detects them online from counters the
stack already records (:mod:`repro.defense.detector`), and lets the
fleet quarantine convicted aggressors behind a minimal CAT "jail" mask
and sacrificial-node routing (``--defense {off,jail,evict}``).
"""

from __future__ import annotations

from .attacks import (
    ATTACK_PROFILES,
    ATTACK_SCHEMA_VERSION,
    DEFAULT_ATTACK_RATE,
    AttackSpec,
    attack_classes,
    attack_from_dict,
    seeded_attacks,
    validate_attacks,
)
from .detector import (
    DEFENSE_MODES,
    DETECTOR_SCHEMA_VERSION,
    ContentionDetector,
    DefenseConfig,
    detector_from_dict,
    load_defense,
)

__all__ = [
    "ATTACK_PROFILES",
    "ATTACK_SCHEMA_VERSION",
    "DEFAULT_ATTACK_RATE",
    "AttackSpec",
    "attack_classes",
    "attack_from_dict",
    "seeded_attacks",
    "validate_attacks",
    "DEFENSE_MODES",
    "DETECTOR_SCHEMA_VERSION",
    "ContentionDetector",
    "DefenseConfig",
    "detector_from_dict",
    "load_defense",
]
