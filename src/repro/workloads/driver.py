"""Functional mixed-workload driver.

The paper measures concurrent workloads by executing every query
"repeatedly for 90 seconds" (Sec. VI-A).  This driver is the
functional analogue for the real engine: statements execute in an
interleaved repeat loop against a :class:`~repro.engine.database.Database`,
and the driver reports per-statement execution counts, result
checksums (to prove partitioning never changes results) and the
engine's CAT bookkeeping.

It is used by the HTAP example, the integration tests and the
functional benchmarks; performance *numbers* for the paper's figures
come from the analytic model, not from here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..engine.database import Database
from ..errors import WorkloadError


@dataclass(frozen=True)
class Statement:
    """One statement of the mixed workload."""

    name: str
    sql: str
    params: tuple = ()


def _checksum(result) -> int:
    """Stable checksum over any supported result object."""
    if hasattr(result, "matches"):
        return int(result.matches)
    if hasattr(result, "aggregates"):
        return int(np.sum(result.aggregates)) + int(
            np.sum(result.groups)
        )
    if isinstance(result, dict):
        return int(
            sum(int(np.sum(column)) for column in result.values())
        )
    raise WorkloadError(f"cannot checksum result {type(result)!r}")


@dataclass
class StatementOutcome:
    """Aggregated outcome of one statement across the loop."""

    name: str
    executions: int = 0
    checksum: int | None = None

    def record(self, result) -> None:
        checksum = _checksum(result)
        if self.checksum is None:
            self.checksum = checksum
        elif self.checksum != checksum:
            raise WorkloadError(
                f"statement {self.name!r} returned different results "
                "across iterations"
            )
        self.executions += 1


@dataclass
class DriverReport:
    """Everything a driver run observed."""

    outcomes: dict[str, StatementOutcome]
    iterations: int
    elapsed_seconds: float
    kernel_calls: int
    elided_calls: int
    masks_seen: dict[str, set[int]] = field(default_factory=dict)

    def checksum(self, name: str) -> int:
        outcome = self.outcomes[name]
        if outcome.checksum is None:
            raise WorkloadError(f"statement {name!r} never executed")
        return outcome.checksum


class MixedWorkloadDriver:
    """Interleaves statements against a database in a repeat loop.

    ``clock`` is any zero-argument callable returning seconds
    (``time.perf_counter``-shaped).  The default is the real wall
    clock; tests and the service inject a deterministic clock (e.g.
    :class:`repro.serve.clock.TickingClock`) so duration-bounded runs
    execute a reproducible number of iterations.
    """

    def __init__(
        self,
        database: Database,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.database = database
        self._clock = clock

    def run(
        self,
        statements: Sequence[Statement],
        iterations: int = 10,
    ) -> DriverReport:
        """Round-robin the statements ``iterations`` times."""
        self._validate(statements)
        if iterations <= 0:
            raise WorkloadError(f"iterations must be > 0: {iterations}")
        return self._loop(statements, rounds=iterations)

    def run_for(
        self,
        statements: Sequence[Statement],
        duration_s: float,
    ) -> DriverReport:
        """Round-robin whole rounds until ``duration_s`` has elapsed.

        This is the paper's "repeatedly for 90 seconds" loop shape
        (Sec. VI-A).  At least one round always executes; the round in
        flight when the deadline passes completes, so every statement
        has the same execution count.
        """
        self._validate(statements)
        if duration_s <= 0:
            raise WorkloadError(
                f"duration_s must be > 0: {duration_s}"
            )
        return self._loop(statements, duration_s=duration_s)

    @staticmethod
    def _validate(statements: Sequence[Statement]) -> None:
        if not statements:
            raise WorkloadError("driver needs at least one statement")
        names = [statement.name for statement in statements]
        if len(names) != len(set(names)):
            raise WorkloadError(f"duplicate statement names: {names}")

    def _loop(
        self,
        statements: Sequence[Statement],
        rounds: int | None = None,
        duration_s: float | None = None,
    ) -> DriverReport:
        controller_stats = self.database.controller.stats
        kernel_before = controller_stats.kernel_calls
        requested_before = controller_stats.associations_requested
        log_start = len(self.database.scheduler.dispatch_log)

        outcomes = {
            statement.name: StatementOutcome(statement.name)
            for statement in statements
        }
        started = self._clock()
        iterations = 0
        while True:
            for statement in statements:
                result = self.database.execute(
                    statement.sql, list(statement.params)
                )
                outcomes[statement.name].record(result)
            iterations += 1
            if rounds is not None and iterations >= rounds:
                break
            if duration_s is not None and (
                self._clock() - started >= duration_s
            ):
                break
        elapsed = self._clock() - started

        masks_seen: dict[str, set[int]] = {}
        dispatch_slice = self.database.scheduler.dispatch_log[log_start:]
        for record in dispatch_slice:
            masks_seen.setdefault(record.job_name, set()).add(
                record.mask
            )
        return DriverReport(
            outcomes=outcomes,
            iterations=iterations,
            elapsed_seconds=elapsed,
            kernel_calls=(
                controller_stats.kernel_calls - kernel_before
            ),
            elided_calls=(
                (controller_stats.associations_requested
                 - requested_before)
                - (controller_stats.kernel_calls - kernel_before)
            ),
            masks_seen=masks_seen,
        )
