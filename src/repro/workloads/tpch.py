"""TPC-H SF 100 workload catalog (Fig. 11).

The paper runs every TPC-H query (SF 100) concurrently with the
column-scan Query 1 on SAP HANA.  We cannot (and need not) materialise
a 100 GB data set: the figure's shape is determined by each query's
*working-set statistics* — how many rows stream by, how often large
dictionaries are probed, how many groups the aggregation keeps.  This
module encodes those statistics per query, derived from the TPC-H
specification:

* row counts at SF 100: lineitem 600 M, orders 150 M, partsupp 80 M,
  part 20 M, customer 15 M, supplier 1 M;
* ``L_EXTENDEDPRICE`` has ~7.6 M distinct values -> a 29 MiB dictionary,
  the one the paper singles out (Sec. VI-D) as the reason Q1/Q7/Q8/Q9
  profit from cache partitioning;
* ``O_TOTALPRICE`` is near-unique -> a dictionary far larger than the
  LLC (relevant for Q18);
* date, flag, quantity, discount and tax columns have tiny dictionaries
  that always fit in the private L2 caches.

``dict_accesses_per_tuple`` reflects each query's *selectivity* on its
driving table: a query that filters lineitem down to 2 % before
aggregating revenue probes the price dictionary 50x less often per
scanned tuple than TPC-H Q1, which aggregates (almost) every row.
This is why only the low-selectivity, price-aggregating queries are
cache-sensitive, matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion, SequentialStream
from ..units import KiB, MiB

# Row counts at scale factor 100.
LINEITEM_ROWS = 600_000_000
ORDERS_ROWS = 150_000_000
PARTSUPP_ROWS = 80_000_000
PART_ROWS = 20_000_000
CUSTOMER_ROWS = 15_000_000
SUPPLIER_ROWS = 1_000_000

# Dictionary sizes (bytes) of the columns that matter for cache usage.
EXTENDEDPRICE_DICT = 29 * MiB       # paper Sec. VI-D
TOTALPRICE_DICT = 150 * MiB         # near-unique order totals
SUPPLYCOST_DICT = 400 * KiB
RETAILPRICE_DICT = 480 * KiB
DATE_DICT = 12 * KiB                # ~2500 distinct dates
SMALL_DICT = 4 * KiB                # flags, modes, quantities, ...


@dataclass(frozen=True)
class DictAccess:
    """One dictionary probed during a query."""

    name: str
    size_bytes: int
    accesses_per_tuple: float


@dataclass(frozen=True)
class TpchQuery:
    """Statistical profile of one TPC-H query.

    ``driving_rows`` is the dominant scanned table's cardinality;
    ``stream_bytes_per_tuple`` the packed column data streamed per
    driving row; ``groups`` sizes the aggregation hash tables.
    """

    number: int
    driving_rows: int
    stream_bytes_per_tuple: float
    dict_accesses: tuple[DictAccess, ...] = ()
    groups: int = 16
    hash_accesses_per_tuple: float = 1.0
    compute_cycles_per_tuple: float = 6.0

    def __post_init__(self) -> None:
        if not 1 <= self.number <= 22:
            raise WorkloadError(f"TPC-H query number out of range: "
                                f"{self.number}")
        if self.driving_rows <= 0:
            raise WorkloadError("driving_rows must be > 0")
        if self.stream_bytes_per_tuple < 0:
            raise WorkloadError("stream_bytes_per_tuple must be >= 0")

    @property
    def name(self) -> str:
        return f"TPCH_Q{self.number:02d}"

    def profile(
        self,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> AccessProfile:
        """Lower the statistics to a model profile."""
        regions = [
            RandomRegion(
                access.name, access.size_bytes, access.accesses_per_tuple,
                shared=True,
            )
            for access in self.dict_accesses
        ]
        regions.append(
            RandomRegion(
                "hash_table",
                calibration.hash_table_bytes(self.groups, workers),
                accesses_per_tuple=self.hash_accesses_per_tuple,
                shared=False,
            )
        )
        # Decompression/staging buffers: TPC-H plans filter early and
        # materialise far narrower intermediates than the synthetic
        # full-decode aggregation of Query 2, so the per-worker staging
        # state stays L2-sized; its accesses scale with how much of the
        # driving table reaches value-at-a-time processing.
        buffer_accesses = min(
            calibration.agg_buffer_accesses_per_tuple,
            calibration.agg_buffer_accesses_per_tuple
            * self.hash_accesses_per_tuple,
        )
        regions.append(
            RandomRegion(
                "intermediates",
                256 * KiB * workers,
                accesses_per_tuple=buffer_accesses,
                shared=False,
            )
        )
        return AccessProfile(
            name=self.name,
            tuples=self.driving_rows,
            compute_cycles_per_tuple=self.compute_cycles_per_tuple,
            instructions_per_tuple=2.0 * self.compute_cycles_per_tuple,
            regions=tuple(regions),
            streams=(
                SequentialStream("scan", self.stream_bytes_per_tuple),
            ),
            mlp=calibration.default_mlp,
        )


def _price(apt: float) -> DictAccess:
    return DictAccess("dict_l_extendedprice", EXTENDEDPRICE_DICT, apt)


# One entry per TPC-H query.  ``stream_bytes_per_tuple`` approximates the
# packed widths of the scanned columns; ``dict_accesses`` the decoding
# work per driving tuple after filtering.  Q1/Q7/Q8/Q9 probe the 29 MiB
# price dictionary at high rates -> cache-sensitive (paper Sec. VI-D);
# the remaining queries are dominated by streaming, joins on small bit
# vectors, or high-selectivity filters.
TPCH_QUERIES: tuple[TpchQuery, ...] = (
    # Q1: full-table aggregation of lineitem; the revenue expressions
    # decode prices through the 29 MiB dictionary for (almost) every
    # row — the paper's prime cache-partitioning beneficiary.
    TpchQuery(1, LINEITEM_ROWS, 7.0, (_price(0.35),), groups=4,
              compute_cycles_per_tuple=14.0),
    # Q2: part/partsupp lookup, tiny driving set, compute-heavy.
    TpchQuery(2, PARTSUPP_ROWS, 4.0,
              (DictAccess("dict_ps_supplycost", SUPPLYCOST_DICT, 0.1),),
              groups=1_000, hash_accesses_per_tuple=0.1,
              compute_cycles_per_tuple=8.0),
    # Q3: shipping priority: the order/date filters and the top-k cut
    # leave few rows that decode prices; the per-order hash table is
    # far larger than the LLC (compulsory misses).
    TpchQuery(3, LINEITEM_ROWS, 6.0, (_price(0.03),), groups=1_000_000,
              hash_accesses_per_tuple=0.3, compute_cycles_per_tuple=7.0),
    # Q4: order priority checking: semi-join, no price decoding.
    TpchQuery(4, LINEITEM_ROWS, 4.0, (), groups=5),
    # Q5: local supplier volume: one nation/year survives the joins.
    TpchQuery(5, LINEITEM_ROWS, 6.5, (_price(0.03),), groups=25,
              hash_accesses_per_tuple=0.15),
    # Q6: forecasting revenue change: ~2 % selectivity, scan+filter.
    TpchQuery(6, LINEITEM_ROWS, 5.0, (_price(0.02),), groups=1,
              hash_accesses_per_tuple=0.02),
    # Q7: volume shipping: revenue decoding for the two-nation pairs
    # across two years — sustained traffic into the price dictionary.
    TpchQuery(7, LINEITEM_ROWS, 6.5, (_price(0.22),), groups=4,
              hash_accesses_per_tuple=0.22, compute_cycles_per_tuple=9.0),
    # Q8: national market share: price decoding for all orders of the
    # part type in scope, two order years.
    TpchQuery(8, LINEITEM_ROWS, 6.5, (_price(0.20),), groups=2,
              hash_accesses_per_tuple=0.20, compute_cycles_per_tuple=9.0),
    # Q9: product type profit: price *and* supply-cost decoding for
    # every lineitem of the matching parts.
    TpchQuery(9, LINEITEM_ROWS, 7.0,
              (_price(0.25),
               DictAccess("dict_ps_supplycost", SUPPLYCOST_DICT, 0.25)),
              groups=175, hash_accesses_per_tuple=0.25,
              compute_cycles_per_tuple=10.0),
    # Q10: returned items: one quarter and returnflag = 'R'.
    TpchQuery(10, LINEITEM_ROWS, 6.0, (_price(0.03),),
              groups=1_000_000, hash_accesses_per_tuple=0.1),
    # Q11: important stock: groups by partkey — hash tables far beyond
    # the LLC, compulsory misses.
    TpchQuery(11, PARTSUPP_ROWS, 5.0,
              (DictAccess("dict_ps_supplycost", SUPPLYCOST_DICT, 0.2),),
              groups=2_000_000, hash_accesses_per_tuple=0.5),
    # Q12: shipping modes: semi-join lineitem/orders, tiny dicts.
    TpchQuery(12, LINEITEM_ROWS, 5.0, (), groups=2),
    # Q13: customer distribution: customer x orders, no lineitem.
    TpchQuery(13, ORDERS_ROWS, 4.0, (), groups=50,
              compute_cycles_per_tuple=12.0),
    # Q14: promotion effect: one month of lineitem.
    TpchQuery(14, LINEITEM_ROWS, 5.5, (_price(0.012),), groups=1,
              hash_accesses_per_tuple=0.012),
    # Q15: top supplier: one quarter grouped by supplier; the 1 M-entry
    # per-worker tables exceed the LLC.
    TpchQuery(15, LINEITEM_ROWS, 5.5, (_price(0.02),),
              groups=1_000_000, hash_accesses_per_tuple=0.25),
    # Q16: parts/supplier relationship: partsupp + part, no prices.
    TpchQuery(16, PARTSUPP_ROWS, 4.5, (), groups=20_000,
              hash_accesses_per_tuple=0.3, compute_cycles_per_tuple=10.0),
    # Q17: small-quantity-order revenue: 0.1 % of parts.
    TpchQuery(17, LINEITEM_ROWS, 4.5, (_price(0.002),), groups=200,
              hash_accesses_per_tuple=0.02),
    # Q18: large-volume customers: per-order grouping over the whole
    # lineitem table; order totals live in a dictionary bigger than
    # the LLC, so its misses are compulsory.
    TpchQuery(18, LINEITEM_ROWS, 5.0,
              (DictAccess("dict_o_totalprice", TOTALPRICE_DICT, 0.05),),
              groups=1_000_000, hash_accesses_per_tuple=0.25,
              compute_cycles_per_tuple=8.0),
    # Q19: discounted revenue: complex disjunctive predicate, tiny
    # qualifying set.
    TpchQuery(19, LINEITEM_ROWS, 5.5, (_price(0.002),), groups=1,
              hash_accesses_per_tuple=0.002,
              compute_cycles_per_tuple=12.0),
    # Q20: potential part promotion: partsupp-driven semi-joins.
    TpchQuery(20, PARTSUPP_ROWS, 4.5, (), groups=10_000),
    # Q21: suppliers who kept orders waiting: lineitem self-joins.
    TpchQuery(21, LINEITEM_ROWS, 5.0, (), groups=1_000,
              compute_cycles_per_tuple=9.0),
    # Q22: global sales opportunity: customer-only, tiny working set.
    TpchQuery(22, CUSTOMER_ROWS, 4.0, (), groups=25,
              compute_cycles_per_tuple=10.0),
)


def tpch_query(number: int) -> TpchQuery:
    """Catalog entry for one TPC-H query."""
    for query in TPCH_QUERIES:
        if query.number == number:
            return query
    raise WorkloadError(f"no TPC-H query {number}")


def all_queries() -> tuple[TpchQuery, ...]:
    return TPCH_QUERIES
