"""The paper's micro-benchmark queries and data sets (Sec. III).

Each config captures one of the three queries of Fig. 2 with the data
parameters of Sec. III-B, and produces

* a **model profile** at full paper scale (10^9 rows) for the analytic
  simulator, and
* a **functional data set** at reduced scale for actually executing the
  operators (examples and tests).

Paper data-parameter summary:

* Query 1 (scan): 10^9 rows, values uniform in [1, 10^6] -> 20-bit codes.
* Query 2 (aggregation): 10^9 rows; B.V distinct in {10^6, 10^7, 10^8}
  (dictionaries of 4/40/400 MiB), B.G distinct in {10^2 .. 10^6}.
* Query 3 (join): R.P distinct keys 1..N with N in {10^6 .. 10^9}
  (bit vectors of 0.125/1.25/12.5/125 MB), S.F 10^9 rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile
from ..operators.aggregate import GroupedAggregation
from ..operators.join import ForeignKeyJoin
from ..operators.scan import ColumnScan
from ..storage.datagen import DataGenerator

# Dictionary-size configurations of Sec. IV-B (distinct values of B.V).
DICT_4_MIB = 10**6
DICT_40_MIB = 10**7
DICT_400_MIB = 10**8

# Group counts swept in Figs. 5 and 9.
GROUP_SIZES = (10**2, 10**3, 10**4, 10**5, 10**6)

# Primary-key counts swept in Figs. 6 and 10.
PRIMARY_KEY_SIZES = (10**6, 10**7, 10**8, 10**9)

PAPER_ROWS = 10**9


@dataclass(frozen=True)
class ScanConfig:
    """Query 1: ``SELECT COUNT(*) FROM A WHERE A.X > ?``."""

    rows: int = PAPER_ROWS
    distinct: int = 10**6

    def profile(
        self, calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "Q1_scan",
    ) -> AccessProfile:
        return ColumnScan.profile_from_stats(
            rows=self.rows,
            distinct=self.distinct,
            calibration=calibration,
            name=name,
        )

    def generate(
        self, generator: DataGenerator, scale_rows: int
    ) -> dict[str, np.ndarray]:
        """Functional data set with ``scale_rows`` rows."""
        if scale_rows <= 0:
            raise WorkloadError(f"scale_rows must be > 0: {scale_rows}")
        distinct = min(self.distinct, max(2, scale_rows // 10))
        return {"X": generator.scan_table(scale_rows, distinct)}


@dataclass(frozen=True)
class AggregationConfig:
    """Query 2: ``SELECT MAX(B.V), B.G FROM B GROUP BY B.G``."""

    value_distinct: int
    group_distinct: int
    rows: int = PAPER_ROWS

    def __post_init__(self) -> None:
        if self.value_distinct <= 0 or self.group_distinct <= 0:
            raise WorkloadError("distinct counts must be > 0")

    def profile(
        self,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "Q2_aggregation",
    ) -> AccessProfile:
        return GroupedAggregation.profile_from_stats(
            rows=self.rows,
            value_distinct=self.value_distinct,
            group_distinct=self.group_distinct,
            workers=workers,
            calibration=calibration,
            name=name,
        )

    def generate(
        self, generator: DataGenerator, scale_rows: int
    ) -> dict[str, np.ndarray]:
        if scale_rows <= 0:
            raise WorkloadError(f"scale_rows must be > 0: {scale_rows}")
        return generator.aggregation_table(
            scale_rows,
            min(self.value_distinct, max(2, scale_rows // 10)),
            min(self.group_distinct, max(2, scale_rows // 100)),
        )


@dataclass(frozen=True)
class JoinConfig:
    """Query 3: ``SELECT COUNT(*) FROM R, S WHERE R.P = S.F``."""

    pk_rows: int
    fk_rows: int = PAPER_ROWS

    def __post_init__(self) -> None:
        if self.pk_rows <= 0 or self.fk_rows <= 0:
            raise WorkloadError("row counts must be > 0")

    def profile(
        self,
        workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        name: str = "Q3_join",
    ) -> AccessProfile:
        return ForeignKeyJoin.profile_from_stats(
            pk_rows=self.pk_rows,
            fk_rows=self.fk_rows,
            workers=workers,
            calibration=calibration,
            name=name,
        )

    def bit_vector_bytes(
        self, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> int:
        return calibration.bit_vector_bytes(self.pk_rows)

    def generate(
        self, generator: DataGenerator, scale_pk_rows: int,
        scale_fk_rows: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        if scale_pk_rows <= 0 or scale_fk_rows <= 0:
            raise WorkloadError("scaled row counts must be > 0")
        return generator.join_tables(scale_pk_rows, scale_fk_rows)


def query1() -> ScanConfig:
    """The paper's Query 1 configuration."""
    return ScanConfig()


def query2(value_distinct: int, group_distinct: int) -> AggregationConfig:
    """The paper's Query 2 with a chosen dictionary/group configuration."""
    return AggregationConfig(value_distinct, group_distinct)


def query3(pk_rows: int) -> JoinConfig:
    """The paper's Query 3 with a chosen primary-key cardinality."""
    return JoinConfig(pk_rows)
