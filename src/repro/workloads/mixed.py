"""Concurrent-workload harness.

Implements the paper's measurement method (Sec. VI-A): queries run
repeatedly and concurrently; each query's throughput is reported
*normalized to its isolated throughput* (same query alone on the
machine with the full LLC).  Concurrency is modelled as steady-state
co-residency: each query keeps its full physical-core concurrency limit
(the queries time-share cores as SMT siblings) while the LLC and DRAM
bandwidth contention models do the heavy lifting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SystemSpec
from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import (
    CounterRates,
    QueryResult,
    QuerySpec,
    WorkloadSimulator,
    system_counters,
)
from ..model.streams import AccessProfile
from ..obs import runtime
from ..parallel import executor as parallel_executor
from ..parallel.simcache import SimulationRequest, evaluate


@dataclass(frozen=True)
class WorkloadQuery:
    """One participant in a concurrent workload."""

    name: str
    profile: AccessProfile
    mask: int | None = None  # None = full LLC access
    cores: int | None = None  # None = all physical cores


@dataclass
class ConcurrentResult:
    """Per-query results plus workload-level counters."""

    results: dict[str, QueryResult]
    normalized: dict[str, float]
    counters: CounterRates

    def throughput(self, name: str) -> float:
        return self.results[name].throughput_tuples_per_s


class ConcurrencyExperiment:
    """Runs isolated baselines and concurrent workloads on the model."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        self.simulator = WorkloadSimulator(self.spec, calibration)
        self._isolated_cache: dict[str, float] = {}
        # Content-addressed simulate() cache, configured by the active
        # parallel context.  A fresh in-memory layer per experiment
        # keeps the hit/miss pattern of a figure identical whether it
        # runs inline or on a pool worker; the optional disk layer is
        # shared across runs.
        self.sim_cache = parallel_executor.current().new_cache()

    # ------------------------------------------------------------------

    def _request(self, specs: list[QuerySpec]) -> SimulationRequest:
        return SimulationRequest(
            spec=self.spec,
            calibration=self.calibration,
            queries=tuple(specs),
            max_iterations=self.simulator.max_iterations,
            damping=self.simulator.damping,
            tolerance=self.simulator.tolerance,
        )

    def _evaluate(
        self, batches: list[list[QuerySpec]], fan_out: bool = False
    ) -> list[dict[str, QueryResult]]:
        """Evaluate simulate() batches through the cache.

        ``fan_out=True`` additionally ships cache misses to the active
        process pool (when one is installed); the batch APIs use it for
        independent sweep points.  Results always come back in batch
        order, decoded to fresh objects.
        """
        pool = parallel_executor.current_pool() if fan_out else None
        return evaluate(
            [self._request(specs) for specs in batches],
            cache=self.sim_cache,
            pool=pool,
        )

    def isolated(
        self,
        profile: AccessProfile,
        mask: int | None = None,
        cores: int | None = None,
    ) -> QueryResult:
        """Run one query alone (full machine unless overridden)."""
        spec = self._isolated_spec(profile, mask, cores)
        with runtime.tracer.span("isolated", query=profile.name):
            return self._evaluate([[spec]])[0][profile.name]

    def _isolated_spec(
        self,
        profile: AccessProfile,
        mask: int | None = None,
        cores: int | None = None,
    ) -> QuerySpec:
        return QuerySpec(
            name=profile.name,
            profile=profile,
            cores=cores if cores is not None else self.spec.cores,
            mask=mask if mask is not None else self.spec.full_mask,
        )

    def isolated_batch(
        self,
        requests: list[tuple[AccessProfile, int | None, int | None]],
    ) -> list[QueryResult]:
        """Evaluate many isolated (profile, mask, cores) points.

        Sequentially this is exactly ``[self.isolated(*r) for r in
        requests]``; with a process pool installed, cache misses fan
        out across workers.  Results preserve request order.
        """
        pool = parallel_executor.current_pool()
        if pool is None:
            return [
                self.isolated(profile, mask, cores)
                for profile, mask, cores in requests
            ]
        batches = [
            [self._isolated_spec(profile, mask, cores)]
            for profile, mask, cores in requests
        ]
        outcomes = self._evaluate(batches, fan_out=True)
        results = []
        for (profile, _, _), outcome in zip(requests, outcomes):
            with runtime.tracer.span("isolated", query=profile.name):
                results.append(outcome[profile.name])
        return results

    @staticmethod
    def _baseline_key(profile: AccessProfile, cores: int | None) -> str:
        return f"{profile.name}/{cores}/{hash(profile)}"

    def isolated_throughput(
        self, profile: AccessProfile, cores: int | None = None
    ) -> float:
        """Cached isolated full-cache throughput (the paper's baseline)."""
        key = self._baseline_key(profile, cores)
        if key not in self._isolated_cache:
            self._isolated_cache[key] = self.isolated(
                profile, cores=cores
            ).throughput_tuples_per_s
        return self._isolated_cache[key]

    # ------------------------------------------------------------------

    def llc_sweep(
        self,
        profile: AccessProfile,
        ways_list: list[int] | None = None,
    ) -> list[tuple[float, float]]:
        """(cache fraction, normalized throughput) sweep for one query.

        This is the paper's Sec. IV methodology: restrict the whole
        instance to ``k`` ways via CAT and measure throughput relative
        to the full cache.
        """
        total_ways = self.spec.llc.ways
        if ways_list is None:
            ways_list = list(range(1, total_ways + 1))
        if any(not 1 <= w <= total_ways for w in ways_list):
            raise WorkloadError(
                f"ways must lie in [1, {total_ways}]: {ways_list}"
            )
        baseline = self.isolated_throughput(profile)
        ways_sequence = sorted(set(ways_list))
        results = self.isolated_batch(
            [(profile, (1 << ways) - 1, None) for ways in ways_sequence]
        )
        return [
            (ways / total_ways,
             result.throughput_tuples_per_s / baseline)
            for ways, result in zip(ways_sequence, results)
        ]

    # ------------------------------------------------------------------

    def concurrent(self, queries: list[WorkloadQuery]) -> ConcurrentResult:
        """Run queries concurrently; normalize each to its isolated run."""
        specs = self._concurrent_specs(queries)
        with runtime.tracer.span("concurrent"):
            results = self._evaluate([specs])[0]
            return self._assemble(queries, specs, results)

    def concurrent_batch(
        self, batches: list[list[WorkloadQuery]]
    ) -> list[ConcurrentResult]:
        """Evaluate many independent concurrent workloads.

        Sequentially this is exactly ``[self.concurrent(b) for b in
        batches]``.  With a process pool installed, the concurrent
        solves *and* the isolated-baseline solves needed for
        normalization are all submitted in one wave; assembly then
        runs in batch order, so results — and every downstream figure
        row — are identical to the sequential schedule.
        """
        pool = parallel_executor.current_pool()
        if pool is None:
            return [self.concurrent(batch) for batch in batches]

        spec_lists = [self._concurrent_specs(batch) for batch in batches]
        # Baselines not yet memoized, deduplicated in first-use order
        # (the same order the sequential loop would solve them in).
        baseline_batches: list[list[QuerySpec]] = []
        baseline_keys: list[str] = []
        seen: set[str] = set()
        for batch, specs in zip(batches, spec_lists):
            for query, spec in zip(batch, specs):
                key = self._baseline_key(spec.profile, query.cores)
                if key in self._isolated_cache or key in seen:
                    continue
                seen.add(key)
                baseline_keys.append(key)
                baseline_batches.append(
                    [self._isolated_spec(spec.profile, cores=query.cores)]
                )
        outcomes = self._evaluate(
            spec_lists + baseline_batches, fan_out=True
        )
        for key, batch_specs, outcome in zip(
            baseline_keys,
            baseline_batches,
            outcomes[len(spec_lists):],
        ):
            name = batch_specs[0].name
            self._isolated_cache[key] = outcome[
                name
            ].throughput_tuples_per_s
        results = []
        for batch, specs, outcome in zip(
            batches, spec_lists, outcomes[: len(spec_lists)]
        ):
            with runtime.tracer.span("concurrent"):
                results.append(self._assemble(batch, specs, outcome))
        return results

    def _concurrent_specs(
        self, queries: list[WorkloadQuery]
    ) -> list[QuerySpec]:
        if len(queries) < 2:
            raise WorkloadError(
                "a concurrent workload needs at least two queries"
            )
        specs = []
        for query in queries:
            profile = query.profile
            if profile.name != query.name:
                profile = replace(profile, name=query.name)
            specs.append(
                QuerySpec(
                    name=query.name,
                    profile=profile,
                    cores=(
                        query.cores
                        if query.cores is not None
                        else self.spec.cores
                    ),
                    mask=(
                        query.mask
                        if query.mask is not None
                        else self.spec.full_mask
                    ),
                )
            )
        return specs

    def _assemble(
        self,
        queries: list[WorkloadQuery],
        specs: list[QuerySpec],
        results: dict[str, QueryResult],
    ) -> ConcurrentResult:
        normalized = {}
        for query, spec in zip(queries, specs):
            baseline = self.isolated_throughput(
                spec.profile, cores=query.cores
            )
            normalized[query.name] = (
                results[query.name].throughput_tuples_per_s / baseline
            )
        return ConcurrentResult(
            results=results,
            normalized=normalized,
            counters=system_counters(results),
        )
