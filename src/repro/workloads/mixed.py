"""Concurrent-workload harness.

Implements the paper's measurement method (Sec. VI-A): queries run
repeatedly and concurrently; each query's throughput is reported
*normalized to its isolated throughput* (same query alone on the
machine with the full LLC).  Concurrency is modelled as steady-state
co-residency: each query keeps its full physical-core concurrency limit
(the queries time-share cores as SMT siblings) while the LLC and DRAM
bandwidth contention models do the heavy lifting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SystemSpec
from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import (
    CounterRates,
    QueryResult,
    QuerySpec,
    WorkloadSimulator,
    system_counters,
)
from ..model.streams import AccessProfile
from ..obs import runtime


@dataclass(frozen=True)
class WorkloadQuery:
    """One participant in a concurrent workload."""

    name: str
    profile: AccessProfile
    mask: int | None = None  # None = full LLC access
    cores: int | None = None  # None = all physical cores


@dataclass
class ConcurrentResult:
    """Per-query results plus workload-level counters."""

    results: dict[str, QueryResult]
    normalized: dict[str, float]
    counters: CounterRates

    def throughput(self, name: str) -> float:
        return self.results[name].throughput_tuples_per_s


class ConcurrencyExperiment:
    """Runs isolated baselines and concurrent workloads on the model."""

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        self.simulator = WorkloadSimulator(self.spec, calibration)
        self._isolated_cache: dict[str, float] = {}

    # ------------------------------------------------------------------

    def isolated(
        self,
        profile: AccessProfile,
        mask: int | None = None,
        cores: int | None = None,
    ) -> QueryResult:
        """Run one query alone (full machine unless overridden)."""
        spec = QuerySpec(
            name=profile.name,
            profile=profile,
            cores=cores if cores is not None else self.spec.cores,
            mask=mask if mask is not None else self.spec.full_mask,
        )
        with runtime.tracer.span("isolated", query=profile.name):
            return self.simulator.simulate([spec])[profile.name]

    def isolated_throughput(
        self, profile: AccessProfile, cores: int | None = None
    ) -> float:
        """Cached isolated full-cache throughput (the paper's baseline)."""
        key = f"{profile.name}/{cores}/{hash(profile)}"
        if key not in self._isolated_cache:
            self._isolated_cache[key] = self.isolated(
                profile, cores=cores
            ).throughput_tuples_per_s
        return self._isolated_cache[key]

    # ------------------------------------------------------------------

    def llc_sweep(
        self,
        profile: AccessProfile,
        ways_list: list[int] | None = None,
    ) -> list[tuple[float, float]]:
        """(cache fraction, normalized throughput) sweep for one query.

        This is the paper's Sec. IV methodology: restrict the whole
        instance to ``k`` ways via CAT and measure throughput relative
        to the full cache.
        """
        total_ways = self.spec.llc.ways
        if ways_list is None:
            ways_list = list(range(1, total_ways + 1))
        if any(not 1 <= w <= total_ways for w in ways_list):
            raise WorkloadError(
                f"ways must lie in [1, {total_ways}]: {ways_list}"
            )
        baseline = self.isolated_throughput(profile)
        points = []
        for ways in sorted(set(ways_list)):
            mask = (1 << ways) - 1
            result = self.isolated(profile, mask=mask)
            points.append(
                (ways / total_ways,
                 result.throughput_tuples_per_s / baseline)
            )
        return points

    # ------------------------------------------------------------------

    def concurrent(self, queries: list[WorkloadQuery]) -> ConcurrentResult:
        """Run queries concurrently; normalize each to its isolated run."""
        if len(queries) < 2:
            raise WorkloadError(
                "a concurrent workload needs at least two queries"
            )
        with runtime.tracer.span("concurrent"):
            return self._concurrent(queries)

    def _concurrent(self, queries: list[WorkloadQuery]) -> ConcurrentResult:
        specs = []
        for query in queries:
            profile = query.profile
            if profile.name != query.name:
                profile = replace(profile, name=query.name)
            specs.append(
                QuerySpec(
                    name=query.name,
                    profile=profile,
                    cores=(
                        query.cores
                        if query.cores is not None
                        else self.spec.cores
                    ),
                    mask=(
                        query.mask
                        if query.mask is not None
                        else self.spec.full_mask
                    ),
                )
            )
        results = self.simulator.simulate(specs)
        normalized = {}
        for query, spec in zip(queries, specs):
            baseline = self.isolated_throughput(
                spec.profile, cores=query.cores
            )
            normalized[query.name] = (
                results[query.name].throughput_tuples_per_s / baseline
            )
        return ConcurrentResult(
            results=results,
            normalized=normalized,
            counters=system_counters(results),
        )
