"""Reduced-scale functional TPC-H data and queries.

The Fig. 11 experiments run on the *statistical* TPC-H catalog
(:mod:`repro.workloads.tpch`).  This module grounds that catalog: it
generates a miniature LINEITEM/ORDERS pair with the schema's key
relationships and value distributions, loads them into the functional
engine, and provides simplified query shapes the SQL layer supports —
so the same operators the model reasons about also *run* on TPC-H-like
data (and are checked against numpy ground truth in the tests).

Scale: ``scale_rows`` lineitem rows with ``scale_rows / 4`` orders,
mirroring TPC-H's 4 lineitems/order average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.database import Database
from ..errors import WorkloadError
from ..storage.datagen import DataGenerator


@dataclass(frozen=True)
class FunctionalTpch:
    """Handle to the loaded mini TPC-H database."""

    database: Database
    lineitem_rows: int
    orders_rows: int
    data: dict[str, dict[str, np.ndarray]]

    def scan_quantity(self, bound: int):
        """Q6-flavoured counting scan over L_QUANTITY."""
        return self.database.execute(
            "SELECT COUNT(*) FROM LINEITEM WHERE LINEITEM.L_QUANTITY > ?",
            [bound],
        )

    def pricing_summary(self):
        """Q1-flavoured aggregation: MAX price per return flag."""
        return self.database.execute(
            "SELECT MAX(LINEITEM.L_EXTENDEDPRICE), LINEITEM.L_RETURNFLAG "
            "FROM LINEITEM GROUP BY LINEITEM.L_RETURNFLAG"
        )

    def order_lineitem_join(self):
        """FK join: every lineitem references an order."""
        return self.database.execute(
            "SELECT COUNT(*) FROM ORDERS, LINEITEM "
            "WHERE ORDERS.O_ORDERKEY = LINEITEM.L_ORDERKEY"
        )


def build_functional_tpch(
    scale_rows: int = 40_000, seed: int = 1992
) -> FunctionalTpch:
    """Generate and load the miniature TPC-H pair."""
    if scale_rows < 8:
        raise WorkloadError(f"scale_rows too small: {scale_rows}")
    generator = DataGenerator(seed)
    rng = generator.rng
    orders_rows = max(2, scale_rows // 4)

    # ORDERS: dense order keys 1..N (the FK join's primary-key side).
    order_keys = rng.permutation(np.arange(1, orders_rows + 1))
    order_dates = generator.uniform_ints(orders_rows, 2406)

    # LINEITEM: each row references a random order; prices are drawn
    # from a large domain (the high-cardinality dictionary of Fig. 11),
    # quantities from 1..50, flags from a 3-value domain.
    lineitem = {
        "L_ORDERKEY": rng.integers(1, orders_rows + 1,
                                   size=scale_rows, dtype=np.int64),
        "L_QUANTITY": generator.uniform_ints(scale_rows, 50),
        "L_EXTENDEDPRICE": generator.uniform_ints(
            scale_rows, max(100, scale_rows // 2), low=900
        ),
        "L_RETURNFLAG": generator.uniform_ints(scale_rows, 3),
    }

    db = Database()
    db.execute(
        "CREATE COLUMN TABLE ORDERS ( O_ORDERKEY INT, O_ORDERDATE INT, "
        "PRIMARY KEY(O_ORDERKEY) )"
    )
    db.load("ORDERS", {
        "O_ORDERKEY": order_keys, "O_ORDERDATE": order_dates,
    })
    db.execute(
        "CREATE COLUMN TABLE LINEITEM ( L_ORDERKEY INT, "
        "L_QUANTITY INT, L_EXTENDEDPRICE INT, L_RETURNFLAG INT )"
    )
    db.load("LINEITEM", lineitem)

    return FunctionalTpch(
        database=db,
        lineitem_rows=scale_rows,
        orders_rows=orders_rows,
        data={
            "ORDERS": {
                "O_ORDERKEY": order_keys,
                "O_ORDERDATE": order_dates,
            },
            "LINEITEM": lineitem,
        },
    )
