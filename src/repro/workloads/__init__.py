"""Workload definitions.

* :mod:`repro.workloads.microbench` — the paper's Queries 1-3 and data
  sets (Sec. III), at paper scale for the model and at reduced scale
  for functional execution,
* :mod:`repro.workloads.tpch` — TPC-H SF 100 statistical catalog and
  per-query profiles (Fig. 11),
* :mod:`repro.workloads.s4hana` — the ACDOCA-based OLTP workload
  (Figs. 1 and 12),
* :mod:`repro.workloads.mixed` — the concurrent-execution harness that
  mirrors the paper's 90-second repeat-loop measurement method.
"""

from .microbench import (
    AggregationConfig,
    JoinConfig,
    ScanConfig,
    DICT_4_MIB,
    DICT_40_MIB,
    DICT_400_MIB,
    GROUP_SIZES,
    PRIMARY_KEY_SIZES,
    query1,
    query2,
    query3,
)
from .mixed import ConcurrencyExperiment, WorkloadQuery

__all__ = [
    "AggregationConfig",
    "ConcurrencyExperiment",
    "DICT_400_MIB",
    "DICT_40_MIB",
    "DICT_4_MIB",
    "GROUP_SIZES",
    "JoinConfig",
    "PRIMARY_KEY_SIZES",
    "ScanConfig",
    "WorkloadQuery",
    "query1",
    "query2",
    "query3",
]
