"""S/4HANA ACDOCA workload (Figs. 1 and 12).

The paper's HTAP experiment runs the most frequent OLTP query of a real
customer system against the "Universal Journal Entry Line Items" table
ACDOCA (336 columns, 151 M rows) while the column-scan Query 1 pollutes
the cache.  The customer data set is proprietary; following the
substitution rule we model an ACDOCA-like catalog with the properties
the paper reports:

* a wide table (285 NVARCHAR + 51 DECIMAL columns, 151 M rows),
* the OLTP query touches the inverted indexes of five primary-key
  columns, then projects either 13 columns with the *largest*
  dictionaries (modified query, Fig. 12a) or 6 columns with smaller
  dictionaries (original query, Fig. 12b),
* the hot working set — indexes plus projected dictionaries — is
  LLC-sized, which is exactly why the OLAP scan's pollution hurts.

Dictionary sizes are synthetic but ordered and LLC-calibrated;
:func:`acdoca_catalog` documents them.  A reduced-scale functional
table for really executing the OLTP query is provided by
:func:`build_functional_acdoca`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile, RandomRegion
from ..storage.datagen import DataGenerator
from ..storage.table import ColumnTable, Schema, SchemaColumn
from ..units import MiB

ACDOCA_ROWS = 151_000_000
ACDOCA_COLUMNS = 336

# Hot-portion sizes of the five primary-key inverted indexes (bytes).
# Point lookups touch the index search structures and posting heads;
# the hot fraction of each index is a few MiB.
INDEX_HOT_BYTES = 15 * MiB

# The 13 largest dictionaries of the table (modified query, Fig. 12a),
# descending, in bytes.  NVARCHAR dictionaries dominate.
LARGE_DICTIONARIES = tuple(
    int(size * MiB)
    for size in (6.0, 5.0, 4.5, 4.0, 3.5, 3.0, 2.8, 2.5, 2.2, 2.0, 1.8,
                 1.5, 1.2)
)

# The 6 (smaller-dictionary) columns of the unmodified query, Fig. 12b.
SMALL_DICTIONARIES = tuple(
    int(size * MiB) for size in (1.2, 1.0, 0.9, 0.8, 0.7, 0.6)
)

# Rows a single OLTP execution returns and projects.
ROWS_PER_QUERY = 16
INDEX_ACCESSES_PER_LOOKUP = 4
KEY_COLUMNS = 5


@dataclass(frozen=True)
class OltpQueryConfig:
    """One OLTP query variant: which dictionaries it projects through."""

    name: str
    dictionary_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dictionary_sizes:
            raise WorkloadError("OLTP query must project >= 1 column")

    @property
    def projected_columns(self) -> int:
        return len(self.dictionary_sizes)

    @property
    def working_set_bytes(self) -> int:
        return INDEX_HOT_BYTES + sum(self.dictionary_sizes)

    def profile(
        self, calibration: Calibration = DEFAULT_CALIBRATION
    ) -> AccessProfile:
        """Model profile: one tuple == one OLTP query execution."""
        regions = [
            RandomRegion(
                "pk_indexes",
                INDEX_HOT_BYTES,
                accesses_per_tuple=(
                    KEY_COLUMNS * INDEX_ACCESSES_PER_LOOKUP
                ),
                shared=True,
            )
        ]
        for position, size in enumerate(self.dictionary_sizes):
            regions.append(
                RandomRegion(
                    f"dict_col{position:02d}",
                    size,
                    accesses_per_tuple=float(ROWS_PER_QUERY),
                    shared=True,
                )
            )
        return AccessProfile(
            name=self.name,
            tuples=1.0,
            compute_cycles_per_tuple=calibration.oltp_compute_cycles,
            instructions_per_tuple=(
                calibration.oltp_instructions_per_query
            ),
            regions=tuple(regions),
            streams=(),
            mlp=calibration.default_mlp,
        )


def oltp_query_13_columns() -> OltpQueryConfig:
    """Modified OLTP query: 13 biggest dictionaries (Fig. 12a)."""
    return OltpQueryConfig("OLTP_13col", LARGE_DICTIONARIES)


def oltp_query_6_columns() -> OltpQueryConfig:
    """Unmodified OLTP query: 6 smaller dictionaries (Fig. 12b)."""
    return OltpQueryConfig("OLTP_6col", SMALL_DICTIONARIES)


def oltp_query_n_columns(num_columns: int) -> OltpQueryConfig:
    """Projection of the ``num_columns`` biggest dictionaries.

    Used for the paper's additional experiment (Sec. VI-E): sweeping
    the projected-column count from 2 to 13.
    """
    if not 1 <= num_columns <= len(LARGE_DICTIONARIES):
        raise WorkloadError(
            f"num_columns must be in [1, {len(LARGE_DICTIONARIES)}]: "
            f"{num_columns}"
        )
    return OltpQueryConfig(
        f"OLTP_{num_columns}col", LARGE_DICTIONARIES[:num_columns]
    )


def acdoca_catalog() -> dict[str, int]:
    """Summary statistics of the modelled ACDOCA table."""
    return {
        "rows": ACDOCA_ROWS,
        "columns": ACDOCA_COLUMNS,
        "key_columns": KEY_COLUMNS,
        "index_hot_bytes": INDEX_HOT_BYTES,
        "largest_dictionary_bytes": LARGE_DICTIONARIES[0],
        "large_projection_working_set": (
            oltp_query_13_columns().working_set_bytes
        ),
        "small_projection_working_set": (
            oltp_query_6_columns().working_set_bytes
        ),
    }


def build_functional_acdoca(
    rows: int = 50_000,
    key_columns: int = KEY_COLUMNS,
    payload_columns: int = 13,
    seed: int = 2024,
) -> tuple[ColumnTable, dict[str, np.ndarray]]:
    """A reduced-scale ACDOCA-like table for functional execution.

    Returns the loaded table and the raw data (for ground truth).  Key
    columns get high cardinality (point lookups select few rows);
    payload columns get varying dictionary sizes.
    """
    if rows <= 0:
        raise WorkloadError(f"rows must be > 0: {rows}")
    generator = DataGenerator(seed)
    column_specs: dict[str, int] = {}
    for key in range(key_columns):
        column_specs[f"K{key}"] = max(2, rows // 8)
    for payload in range(payload_columns):
        column_specs[f"C{payload:02d}"] = max(2, rows // (2 + payload))
    data = generator.wide_table(rows, column_specs)
    schema = Schema(
        "ACDOCA",
        tuple(SchemaColumn(name) for name in column_specs),
    )
    table = ColumnTable(schema)
    table.load(data)
    for key in range(key_columns):
        table.create_index(f"K{key}")
    return table, data
