"""Observability layer: tracing spans, metrics, JSON run artifacts.

See ``docs/OBSERVABILITY.md`` for naming conventions and the artifact
schema.  Quick tour::

    from repro.obs import observing, write_artifact, RunArtifact

    with observing() as (tracer, metrics):
        with tracer.span("fig9"):
            result = fig09_scan_agg.run(fast=True)
    artifact = RunArtifact(
        experiment="fig9",
        figures=[result.to_dict()],
        spans=tracer.to_dict(),
        metrics=metrics.snapshot(),
    )
    write_artifact(artifact)          # -> runs/fig9-<timestamp>.json
"""

from .artifacts import (
    DEFAULT_RUNS_DIR,
    SCHEMA_VERSION,
    RunArtifact,
    artifact_filename,
    load_artifact,
    write_artifact,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .runtime import install, observing, reset
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_RUNS_DIR",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RunArtifact",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "artifact_filename",
    "format_spans",
    "install",
    "load_artifact",
    "observing",
    "reset",
    "write_artifact",
]
