"""Process-wide observability state: the current tracer and registry.

Instrumented code never holds a tracer reference; it reads the module
attributes at the call site::

    from ..obs import runtime

    with runtime.tracer.span("solve_segment"):
        ...
    runtime.metrics.counter("che.iterations").inc(steps)

Both default to the no-op implementations, so the library is silent
(and near-free) unless an observer is installed.  The
:func:`observing` context manager installs a real tracer/registry for
one run and always restores the previous state — experiments, tests
and the CLI all use it, so nested observation scopes compose.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .tracing import NULL_TRACER, NullTracer, Tracer

tracer: Tracer | NullTracer = NULL_TRACER
metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def install(
    new_tracer: Tracer | NullTracer | None = None,
    new_metrics: MetricsRegistry | NullMetrics | None = None,
) -> None:
    """Replace the current tracer and/or metrics registry."""
    global tracer, metrics
    if new_tracer is not None:
        tracer = new_tracer
    if new_metrics is not None:
        metrics = new_metrics


def reset() -> None:
    """Back to the silent defaults."""
    global tracer, metrics
    tracer = NULL_TRACER
    metrics = NULL_METRICS


@contextmanager
def observing(
    new_tracer: Tracer | NullTracer | None = None,
    new_metrics: MetricsRegistry | NullMetrics | None = None,
) -> Iterator[tuple[Tracer | NullTracer, MetricsRegistry | NullMetrics]]:
    """Install a tracer/registry for the duration of a ``with`` block.

    Omitted arguments default to fresh real instances, so
    ``with observing() as (tracer, metrics):`` is the common one-liner.
    """
    global tracer, metrics
    installed_tracer = new_tracer if new_tracer is not None else Tracer()
    installed_metrics = (
        new_metrics if new_metrics is not None else MetricsRegistry()
    )
    previous = (tracer, metrics)
    tracer, metrics = installed_tracer, installed_metrics
    try:
        yield installed_tracer, installed_metrics
    finally:
        tracer, metrics = previous
