"""Structured JSON run artifacts.

One experiment run produces one timestamped JSON file under ``runs/``
(or a caller-chosen directory) holding everything the run measured:

* every figure's rows (the exact data behind the printed tables),
* the span tree recorded by the tracer,
* the metrics registry snapshot (solver iterations, elision counts,
  dispatch totals, ...).

Benchmarks and regression tooling consume these files instead of
scraping stdout; ``load_artifact`` round-trips what ``write_artifact``
stored, so ``BENCH_*.json`` trajectories can be populated from
artifacts directly.  The schema is documented in
``docs/OBSERVABILITY.md`` and versioned via ``SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from ..errors import ObservabilityError

#: Version 2 adds the parallel-execution fields: ``jobs`` (the
#: ``--jobs`` value the run was launched with) and ``worker`` (per-
#: worker timing — ``{"pid": ..., "wall_seconds": ...}`` — when the
#: experiment ran on a pool worker).  Version 3 adds ``seed``: the
#: run-level ``--seed`` every stochastic component derived its stream
#: from (``null`` when the run used the historical per-component
#: defaults).  Older files remain loadable; missing fields take the
#: pre-existing behaviour's values.
SCHEMA_VERSION = 3

_LOADABLE_VERSIONS = (1, 2, 3)

DEFAULT_RUNS_DIR = "runs"


@dataclass
class RunArtifact:
    """Everything one experiment run measured, JSON-serializable."""

    experiment: str
    figures: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    spans: dict | None = None
    fast: bool = False
    jobs: int = 1
    worker: dict | None = None
    seed: int | None = None
    created_at: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ObservabilityError("artifact needs an experiment id")
        if not self.created_at:
            self.created_at = (
                datetime.now(timezone.utc).isoformat(timespec="microseconds")
            )

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "created_at": self.created_at,
            "fast": self.fast,
            "jobs": self.jobs,
            "worker": self.worker,
            "seed": self.seed,
            "figures": self.figures,
            "spans": self.spans,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunArtifact":
        version = payload.get("schema_version")
        if version not in _LOADABLE_VERSIONS:
            raise ObservabilityError(
                f"unsupported artifact schema version: {version!r}"
            )
        return cls(
            experiment=payload["experiment"],
            figures=list(payload.get("figures", [])),
            metrics=dict(payload.get("metrics", {})),
            spans=payload.get("spans"),
            fast=bool(payload.get("fast", False)),
            jobs=int(payload.get("jobs", 1)),
            worker=payload.get("worker"),
            seed=payload.get("seed"),
            created_at=payload["created_at"],
            schema_version=version,
        )


def artifact_filename(artifact: RunArtifact) -> str:
    """Timestamped, filesystem-safe name for an artifact."""
    stamp = (
        artifact.created_at.replace(":", "")
        .replace("-", "")
        .replace("+0000", "Z")
        .replace(".", "-")
    )
    return f"{artifact.experiment}-{stamp}.json"


def write_artifact(
    artifact: RunArtifact, out_dir: str | Path = DEFAULT_RUNS_DIR
) -> Path:
    """Serialize an artifact under ``out_dir``; returns the file path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact_filename(artifact)
    suffix = 0
    while path.exists():  # same experiment within one microsecond
        suffix += 1
        path = directory / (
            f"{path.stem.rsplit('.', 1)[0]}.{suffix}.json"
        )
    path.write_text(
        json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path: str | Path) -> RunArtifact:
    """Read an artifact previously written by :func:`write_artifact`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ObservabilityError(
            f"cannot load artifact {path}: {error}"
        ) from None
    return RunArtifact.from_dict(payload)
