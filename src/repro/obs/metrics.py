"""Named counters, gauges and histograms for run-level statistics.

Producers across the codebase publish into the *current* registry (see
:mod:`repro.obs.runtime`): the Che fixed-point solver counts iterations
and bracket expansions, the bandwidth model counts arbitration rounds,
the cache controller reports association/elision totals, the scheduler
per-CUID job counts.  The default registry is :data:`NULL_METRICS`,
whose instruments are shared no-ops, so disabled observability costs a
method call per event and nothing else.

Merge semantics (used when combining artifacts or sub-runs):

* counters add,
* gauges take the *other* registry's value (last writer wins),
* histograms pool counts, sums and extrema.
"""

from __future__ import annotations

import math

from ..errors import ObservabilityError


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r}: increment must be >= 0, "
                f"got {amount}"
            )
        self.value += amount


class Gauge:
    """Last-written value of a quantity (e.g. a convergence flag)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations: count, sum, min, max."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store of named instruments."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see module docstring)."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name)
            mine.count += histogram.count
            mine.total += histogram.total
            mine.minimum = min(mine.minimum, histogram.minimum)
            mine.maximum = max(mine.maximum, histogram.maximum)

    def snapshot(self) -> dict:
        """JSON-serializable view of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
                if gauge.value is not None
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, stats in payload.get("histograms", {}).items():
            histogram = registry.histogram(name)
            histogram.count = stats["count"]
            histogram.total = stats["total"]
            histogram.minimum = (
                stats["min"] if stats["min"] is not None else math.inf
            )
            histogram.maximum = (
                stats["max"] if stats["max"] is not None else -math.inf
            )
        return registry


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry lookalike that records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
