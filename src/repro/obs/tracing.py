"""Nested tracing spans with an injectable clock.

The paper's argument rests on *measured* evidence (hit ratios, MPI,
< 100 us association overhead), so every experiment needs to explain
where its time went.  A :class:`Tracer` records a tree of named spans:
entering ``span("fig9")`` and, inside it, ``span("solve_segment")``
produces nested nodes carrying wall time, call counts and custom
attributes.

Two properties keep the hot path honest:

* spans with the same name under the same parent are *aggregated* (one
  node, ``count`` incremented, durations summed), so a solver called
  thousands of times yields a bounded tree,
* the module-wide default is :data:`NULL_TRACER`, whose ``span()``
  returns a shared no-op context manager — tracing disabled costs one
  method call and nothing else (quantified by
  ``benchmarks/bench_obs_overhead.py``).

The clock is injectable (``Tracer(clock=...)``) so tests can assert
exact durations deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

from ..errors import ObservabilityError


class Span:
    """One node of the span tree: aggregated timings for a name."""

    __slots__ = ("name", "count", "total_seconds", "attributes",
                 "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.attributes: dict[str, object] = {}
        self.children: dict[str, "Span"] = {}

    def child(self, name: str) -> "Span":
        """Get or create the aggregated child span called ``name``."""
        node = self.children.get(name)
        if node is None:
            node = Span(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        """JSON-serializable form of this subtree."""
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "attributes": dict(self.attributes),
            "children": [
                child.to_dict() for child in self.children.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        span = cls(payload["name"])
        span.count = payload["count"]
        span.total_seconds = payload["total_seconds"]
        span.attributes = dict(payload.get("attributes", {}))
        for child in payload.get("children", ()):
            node = cls.from_dict(child)
            span.children[node.name] = node
        return span

    def depth(self) -> int:
        """Nesting levels of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def merge(self, other: "Span") -> None:
        """Fold another subtree into this one.

        The span analogue of ``MetricsRegistry.merge``: counts and
        durations add, attributes take the incoming value (last writer
        wins), children merge recursively by name.  Used to ship span
        trees recorded by worker processes back into the parent run's
        tracer.
        """
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.attributes.update(other.attributes)
        for child in other.children.values():
            self.child(child.name).merge(child)


class _ActiveSpan:
    """Context manager for one entry into an aggregated span."""

    __slots__ = ("_tracer", "_node", "_started")

    def __init__(self, tracer: "Tracer", node: Span) -> None:
        self._tracer = tracer
        self._node = node
        self._started = 0.0

    def set(self, **attributes) -> "_ActiveSpan":
        """Attach attributes to the span (last write wins)."""
        self._node.attributes.update(attributes)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack.append(self._node)
        self._started = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = self._tracer._clock() - self._started
        self._node.count += 1
        self._node.total_seconds += elapsed
        popped = self._tracer._stack.pop()
        if popped is not self._node:  # pragma: no cover - defensive
            raise ObservabilityError(
                f"span stack corrupted: closed {self._node.name!r} "
                f"but {popped.name!r} was on top"
            )
        return False


class Tracer:
    """Records a tree of nested, name-aggregated spans."""

    enabled = True

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self.root = Span("root")
        self._stack: list[Span] = [self.root]

    def span(self, name: str, **attributes) -> _ActiveSpan:
        """Open a span nested under the innermost active span."""
        node = self._stack[-1].child(name)
        if attributes:
            node.attributes.update(attributes)
        return _ActiveSpan(self, node)

    @property
    def current(self) -> Span:
        """The innermost active span (the root when idle)."""
        return self._stack[-1]

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def merge_span_dict(self, payload: dict) -> None:
        """Merge a serialized span tree under the current span.

        ``payload`` is a ``Tracer.to_dict()`` from another tracer
        (typically a worker process); its root node is discarded and
        its children are merged into the innermost active span, as if
        the work had happened inline.
        """
        incoming = Span.from_dict(payload)
        for child in incoming.children.values():
            self.current.child(child.name).merge(child)


class _NullSpan:
    """Shared no-op span handle: the disabled-tracing fast path."""

    __slots__ = ()

    def set(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer lookalike that records nothing."""

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return NULL_SPAN

    def merge_span_dict(self, payload: dict) -> None:
        pass


NULL_TRACER = NullTracer()


def format_spans(span: Span, indent: str = "") -> str:
    """Render a span subtree as an indented text outline."""
    lines = []
    if span.name != "root" or span.count:
        label = (
            f"{indent}{span.name}  x{span.count}  "
            f"{span.total_seconds * 1e3:.3f} ms"
        )
        if span.attributes:
            pairs = ", ".join(
                f"{key}={value}"
                for key, value in sorted(span.attributes.items())
            )
            label += f"  [{pairs}]"
        lines.append(label)
        indent += "  "
    for child in span.children.values():
        lines.append(format_spans(child, indent))
    return "\n".join(line for line in lines if line)
