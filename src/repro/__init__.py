"""repro — reproduction of "Accelerating Concurrent Workloads with CPU
Cache Partitioning" (Noll, Teubner, May, Böhm; ICDE 2018).

The package provides, from bottom to top:

* :mod:`repro.hardware` — simulated CPU substrate: set-associative
  caches with Intel CAT way masks, DRAM bandwidth arbitration, stream
  prefetcher, PCM-style counters,
* :mod:`repro.resctrl` — emulated Linux resctrl interface,
* :mod:`repro.storage` / :mod:`repro.operators` — a functional
  dictionary-encoded column store with the paper's operators,
* :mod:`repro.sql` / :mod:`repro.engine` — SQL front end and the
  CAT-integrated execution engine (jobs, CUIDs, worker pools),
* :mod:`repro.core` — the paper's contribution: partitioning schemes,
  the micro-benchmark-driven advisor, and database integration,
* :mod:`repro.model` — the analytic performance model used to
  regenerate the paper's figures,
* :mod:`repro.workloads` / :mod:`repro.experiments` — workload
  catalogs (micro-benchmarks, TPC-H, S/4HANA) and one experiment
  module per paper figure.

Quickstart::

    import numpy as np
    from repro import Database, CachePartitioning

    db = Database()
    db.execute("CREATE COLUMN TABLE A ( X INT )")
    db.load("A", {"X": np.random.randint(1, 10**6, size=100_000)})
    with CachePartitioning(db):
        result = db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?",
                            [500_000])
"""

from .config import CacheSpec, DramSpec, SystemSpec, xeon_e5_2699_v4
from .core import (
    CachePartitioning,
    PartitioningScheme,
    analyze_sweep,
    derive_policy,
    join_restricted_scheme,
    paper_scheme,
    unpartitioned_scheme,
)
from .engine import Database
from .errors import ReproError
from .obs import (
    MetricsRegistry,
    RunArtifact,
    Tracer,
    load_artifact,
    observing,
    write_artifact,
)
from .model import (
    AccessProfile,
    QueryResult,
    QuerySpec,
    RandomRegion,
    SequentialStream,
    WorkloadSimulator,
)
from .operators import CacheUsage
from .workloads import ConcurrencyExperiment, WorkloadQuery

__version__ = "1.0.0"

__all__ = [
    "AccessProfile",
    "CachePartitioning",
    "CacheSpec",
    "CacheUsage",
    "ConcurrencyExperiment",
    "Database",
    "DramSpec",
    "MetricsRegistry",
    "PartitioningScheme",
    "QueryResult",
    "QuerySpec",
    "RandomRegion",
    "ReproError",
    "RunArtifact",
    "SequentialStream",
    "SystemSpec",
    "Tracer",
    "WorkloadQuery",
    "WorkloadSimulator",
    "analyze_sweep",
    "derive_policy",
    "join_restricted_scheme",
    "load_artifact",
    "observing",
    "paper_scheme",
    "unpartitioned_scheme",
    "write_artifact",
    "xeon_e5_2699_v4",
]
