"""Fig. 10 — Query 2 (aggregation) concurrent with Query 3 (join).

The aggregation uses the 40 MiB dictionary; the join's primary-key
count is 10^6 (panel a) or 10^8 (panel b).  Three configurations per
point: no partitioning, join restricted to 10 %, join restricted to
60 % (aggregation always keeps 100 %).  Paper findings:

* 10^6 keys (125 KB bit vector: the join is a pure polluter):
  restricting it to 10 % improves the aggregation by up to 38 % and
  even the join by up to ~7 %; hit ratio 0.55 -> 0.67 and MPI
  2.26e-3 -> 1.93e-3 at 10^3 groups,
* 10^8 keys (12.5 MB bit vector: the join is cache-sensitive):
  the 10 % scheme *regresses* the join by 15-31 % — a net loss — while
  the 60 % scheme improves the aggregation up to ~9 % at a join cost
  of only ~2 %.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import DICT_40_MIB, GROUP_SIZES, query2, query3
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest

PANELS = (("10a", 10**6), ("10b", 10**8))


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    result = FigureResult(
        figure_id="fig10",
        title=(
            "Fig. 10: Query 2 (aggregation, 40 MiB dict) || Query 3 "
            "(join), schemes off / join->10% / join->60%"
        ),
        headers=(
            "panel", "primary_keys", "groups", "scheme",
            "agg_normalized", "join_normalized",
            "system_llc_hit_ratio", "system_mpi",
        ),
    )
    group_sizes = GROUP_SIZES if not fast else (
        GROUP_SIZES[1], GROUP_SIZES[4]
    )
    # Phase 1: describe every (panel, groups, scheme) measurement.
    points = []
    requests = []
    for panel, pk_rows in PANELS:
        join_profile = query3(pk_rows).profile(
            runner.workers, runner.calibration
        )
        for groups in group_sizes:
            agg_profile = query2(DICT_40_MIB, groups).profile(
                runner.workers, runner.calibration
            )
            schemes = (
                ("off", None),
                ("join_10pct", runner.polluting_mask()),
                ("join_60pct", runner.adaptive_mask()),
            )
            for label, join_mask in schemes:
                points.append(
                    (panel, pk_rows, groups, label,
                     agg_profile, join_profile)
                )
                requests.append(
                    PairRequest(
                        agg_profile, join_profile, second_mask=join_mask
                    )
                )

    # Phase 2: evaluate and assemble in order.
    outcomes = runner.pair_batch(requests)
    for point, outcome in zip(points, outcomes):
        panel, pk_rows, groups, label, agg_profile, join_profile = point
        result.add(
            panel,
            pk_rows,
            groups,
            label,
            round(outcome.normalized[agg_profile.name], 3),
            round(outcome.normalized[join_profile.name], 3),
            round(outcome.counters.llc_hit_ratio, 3),
            round(outcome.counters.misses_per_instruction, 5),
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
