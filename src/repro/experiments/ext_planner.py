"""Extension experiment: forecast-driven planning vs reactive control.

The fleet extension so far *reacts*: the adaptive per-node controller
waits for a CAT scheme to stop paying off before it reprograms, so a
predictable load change (here a diurnal OLAP day flipping into an OLTP
evening at mid-run) is absorbed with a lag — every node rediscovers
the same shift independently, and every rediscovery is a
reconfiguration with a settling cost.

The planner (:mod:`repro.planner`) replaces the per-node feedback
loops with one fleet-level decision cycle:

1. a **training pass** records the per-window per-tenant arrival
   counts of the scenario (any schema-v4 report carries them),
2. seasonal forecasters are warm-started from that recording,
3. the live ``planned`` run replans on a timer — forecast the next
   horizon, enumerate bounded CAT/placement blueprints, score them
   against the paper's analytic model, and switch only when the best
   candidate clears a hysteresis margin over the incumbent.

The comparison holds arrivals byte-identical across policies (same
seed, same streams) and asks two questions the notes assert on:

* does the planned fleet meet or beat the reactive adaptive fleet on
  fleet-wide OLAP p99, and
* does it get there with *fewer* reconfigurations (planner blueprint
  switches vs the sum of per-node controller reconfigurations)?

A ``static`` hash fleet (paper scheme pinned at boot, never changed)
anchors the comparison: zero reconfigurations, but also zero ability
to adapt placement or masks to the mix it actually receives.
"""

from __future__ import annotations

from ..cluster import Cluster, ClusterConfig, ClusterReport
from ..planner import training_from_report
from .reporting import format_table
from .runner import FigureResult

SEED = 0xA11CE
NODES = 4
RATE_PER_S = 16.0
DURATION_S = 10.0
FAST_DURATION_S = 6.0
PROFILE = "diurnal"
MIX = "shift"


def _reconfigurations(report: ClusterReport) -> int:
    """Reconfiguration count on whichever layer owns adaptation."""
    if report.planner.get("enabled"):
        return report.planner["reconfigurations"]
    return sum(
        node.controller.get("reconfigurations", 0)
        for node in report.node_reports
    )


def _row(label: str, report: ClusterReport) -> tuple:
    olap = report.fleet_verdict_for("olap")
    oltp = report.fleet_verdict_for("oltp")
    planner = report.planner
    return (
        label,
        report.config.policy,
        report.config.router,
        report.completed,
        report.shed_admission + report.shed_failure
        + report.shed_no_node,
        _reconfigurations(report),
        planner.get("migrated_tenants", 0),
        planner.get("deferred_requests", 0),
        round(olap.p99_s, 4),
        round(oltp.p99_s, 4),
        round(report.aggregate["p99_s"], 4),
        report.slo_ok,
    )


def _config(duration: float, **overrides) -> ClusterConfig:
    base = dict(
        nodes=NODES,
        router="hash",
        profile=PROFILE,
        policy="adaptive",
        mix=MIX,
        duration_s=duration,
        rate_per_s=RATE_PER_S,
        seed=SEED,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def run(fast: bool = False) -> FigureResult:
    duration = FAST_DURATION_S if fast else DURATION_S

    result = FigureResult(
        figure_id="ext_planner",
        title=(
            "Extension (Sec. VIII): forecast-driven blueprint "
            "planning vs reactive adaptive control under a diurnal "
            "OLAP->OLTP mix shift"
        ),
        headers=(
            "fleet", "policy", "router", "completed", "shed",
            "reconfigs", "migrated", "deferred",
            "fleet_p99_olap_s", "fleet_p99_oltp_s", "agg_p99_s",
            "slo_ok",
        ),
    )

    # Training pass: record the scenario's arrival seasonality with
    # partitioning off.  Same seed and streams as the live runs, so
    # the forecasters see exactly the pattern they will be asked to
    # predict.
    training_report = Cluster(
        _config(duration, policy="none")
    ).run()
    result.add(*_row("training", training_report))
    training = training_from_report(training_report.to_dict())

    planned_report = Cluster(
        _config(
            duration,
            router="planned",
            policy="planned",
            plan_training=training,
        )
    ).run()
    result.add(*_row("planned", planned_report))

    # Search-quality row: the same planned run with the beam search
    # over the 100x larger placement space.  Offered arrivals — and
    # therefore forecasts — are byte-identical to the enum run, and
    # the beam's frontier is seeded by the full enumerated family, so
    # per tick its best modeled score can never be worse.
    beam_report = Cluster(
        _config(
            duration,
            router="planned",
            policy="planned",
            plan_training=training,
            plan_search="beam",
        )
    ).run()
    result.add(*_row("planned-beam", beam_report))

    adaptive_report = Cluster(_config(duration)).run()
    result.add(*_row("reactive", adaptive_report))

    static_report = Cluster(_config(duration, policy="static")).run()
    result.add(*_row("static", static_report))

    # Migration demonstrator: warm-start the forecaster with
    # batch-dominated windows so the first planning tick predicts a
    # scan-heavy day.  The planner switches from the boot spread to a
    # batch-isolation blueprint, re-homes the moved tenants through a
    # blackout, and the deferred arrivals carry their original
    # timestamps — the migration downtime lands in the SLO verdicts.
    batch_heavy = tuple(
        (("agg", 1), ("join", 1), ("oltp", 1), ("scan", 40))
        for _ in range(int(duration))
    )
    migration_report = Cluster(
        _config(
            duration,
            router="planned",
            policy="planned",
            profile="poisson",
            mix="olap",
            plan_training=batch_heavy,
        )
    ).run()
    result.add(*_row("migration", migration_report))

    planned_p99 = planned_report.fleet_verdict_for("olap").p99_s
    beam_p99 = beam_report.fleet_verdict_for("olap").p99_s
    adaptive_p99 = adaptive_report.fleet_verdict_for("olap").p99_s
    static_p99 = static_report.fleet_verdict_for("olap").p99_s
    planned_reconfigs = _reconfigurations(planned_report)
    adaptive_reconfigs = _reconfigurations(adaptive_report)
    result.notes.append(
        f"fleet OLAP p99: planned={planned_p99:.3f}s "
        f"planned-beam={beam_p99:.3f}s "
        f"reactive={adaptive_p99:.3f}s static={static_p99:.3f}s — "
        f"planned <= reactive: "
        f"{'yes' if planned_p99 <= adaptive_p99 else 'NO'}; "
        f"planned-beam <= reactive: "
        f"{'yes' if beam_p99 <= adaptive_p99 else 'NO'}"
    )
    enum_best = [
        d["best_score"]
        for d in planned_report.planner["decisions"]
    ]
    beam_best = [
        d["best_score"] for d in beam_report.planner["decisions"]
    ]
    beam_wins = all(
        beam <= enum + 1e-12
        for beam, enum in zip(beam_best, enum_best)
    )
    search = beam_report.planner["search"]
    result.notes.append(
        f"search quality: beam scored "
        f"{search['candidates_scored']} candidates over "
        f"{beam_report.planner['ticks']} ticks (enum family: "
        f"{planned_report.planner['candidates']} per tick) with "
        f"{search['frontier_improvements']} frontier improvements — "
        f"beam best modeled score <= enumerated best on every tick: "
        f"{'yes' if beam_wins else 'NO'}"
    )
    result.notes.append(
        f"reconfigurations: planned={planned_reconfigs} (fleet-level "
        f"blueprint switches) vs reactive={adaptive_reconfigs} (sum "
        f"of per-node controller changes) — fewer: "
        f"{'yes' if planned_reconfigs < adaptive_reconfigs else 'NO'}"
    )
    planner = planned_report.planner
    result.notes.append(
        f"planner: ticks={planner['ticks']} "
        f"candidates={planner['candidates']} "
        f"forecaster={planner['forecaster']} — the forecast keeps "
        f"the boot spread blueprint (already optimal for this "
        f"symmetric scenario), so the fleet pays zero transitions "
        f"where the reactive controller pays {adaptive_reconfigs}"
    )
    migration = migration_report.planner
    result.notes.append(
        f"migration demo (batch-heavy training): "
        f"reconfigurations={migration['reconfigurations']} "
        f"migrated={migration['migrated_tenants']} tenants through a "
        f"{migration['config']['downtime_s']:g}s blackout, "
        f"deferred={migration['deferred_requests']} arrivals kept "
        f"their original timestamps — migration downtime lands in "
        f"the SLO verdicts"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
