"""Reproduction report: every paper claim, checked in one run.

Runs all figure experiments and evaluates the paper's headline claims
against the measured rows, printing a PASS/FAIL verdict per claim —
the executable form of EXPERIMENTS.md.  Used by ``python -m repro run
report`` and asserted wholesale in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import SystemSpec
from ..obs import runtime
from . import (
    fig01_teaser,
    fig04_scan,
    fig05_aggregation,
    fig06_join,
    fig09_scan_agg,
    fig10_agg_join,
    fig11_tpch,
    fig12_oltp,
)
from .reporting import format_table
from .runner import FigureResult


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper's evaluation."""

    figure: str
    text: str
    check: Callable[[dict[str, FigureResult]], bool]


def _rows(results, figure, **conditions):
    return results[figure].select(**conditions)


CLAIMS: tuple[Claim, ...] = (
    Claim(
        "fig1",
        "partitioning recovers OLTP throughput lost to the OLAP scan",
        lambda r: (
            {row[0]: row[2] for row in r["fig1"].rows}[
                "concurrent_partitioned"
            ]
            > {row[0]: row[2] for row in r["fig1"].rows}["concurrent"]
            + 0.05
        ),
    ),
    Claim(
        "fig4",
        "column scan insensitive to LLC size (5.5..55 MiB)",
        lambda r: min(
            r["fig4"].column("normalized_throughput")
        ) > 0.97,
    ),
    Claim(
        "fig4",
        "scan LLC hit ratio < 0.08 and MPI ~ 1.9e-2",
        lambda r: max(r["fig4"].column("llc_hit_ratio")) < 0.08
        and abs(r["fig4"].column("mpi")[0] - 1.9e-2) < 2e-3,
    ),
    Claim(
        "fig5",
        "4 MiB dict: >46 % loss at ~5 MiB for 1e2..1e4 groups",
        lambda r: all(
            _rows(r, "fig5", panel="5a", groups=g, ways=2)[0][5] < 0.54
            for g in (100, 1000, 10000)
        ),
    ),
    Claim(
        "fig5",
        "1e5 groups is the most cache-sensitive configuration (5a)",
        lambda r: (
            _rows(r, "fig5", panel="5a", groups=100000, ways=2)[0][5]
            < _rows(r, "fig5", panel="5a", groups=100, ways=2)[0][5]
        ),
    ),
    Claim(
        "fig5",
        "400 MiB dict flattens the curves vs 40 MiB (compulsory misses)",
        lambda r: (
            _rows(r, "fig5", panel="5c", groups=100, ways=2)[0][5]
            > _rows(r, "fig5", panel="5b", groups=100, ways=2)[0][5]
        ),
    ),
    Claim(
        "fig6",
        "only the 12.5 MB bit vector (1e8 keys) is LLC-sensitive",
        lambda r: (
            _rows(r, "fig6", primary_keys=10**8, ways=2)[0][4] < 0.85
            and all(
                _rows(r, "fig6", primary_keys=pk, ways=2)[0][4] > 0.85
                for pk in (10**6, 10**7, 10**9)
            )
        ),
    ),
    Claim(
        "fig9",
        "partitioning recovers the aggregation without scan regression",
        lambda r: all(
            _rows(r, "fig9", panel="9b", groups=g,
                  partitioning="on")[0][5]
            > _rows(r, "fig9", panel="9b", groups=g,
                    partitioning="off")[0][5] + 0.1
            and _rows(r, "fig9", panel="9b", groups=g,
                      partitioning="on")[0][4]
            >= _rows(r, "fig9", panel="9b", groups=g,
                     partitioning="off")[0][4] - 0.02
            for g in (100, 10000, 100000)
        ),
    ),
    Claim(
        "fig9",
        "no configuration regresses under partitioning",
        lambda r: all(
            on[4] >= off[4] - 0.02 and on[5] >= off[5] - 0.02
            for off, on in zip(
                [row for row in r["fig9"].rows if row[3] == "off"],
                [row for row in r["fig9"].rows if row[3] == "on"],
            )
        ),
    ),
    Claim(
        "fig10",
        "restricting the LLC-sized join to 10 % is a net loss",
        lambda r: (
            (lambda off, p10: (p10[4] + p10[5]) < (off[4] + off[5]))(
                _rows(r, "fig10", panel="10b", groups=1000,
                      scheme="off")[0],
                _rows(r, "fig10", panel="10b", groups=1000,
                      scheme="join_10pct")[0],
            )
        ),
    ),
    Claim(
        "fig10",
        "the 60 % scheme keeps the join whole and helps the aggregation",
        lambda r: (
            (lambda off, p60: (
                p60[5] >= off[5] - 0.08 and p60[4] >= off[4] - 0.01
            ))(
                _rows(r, "fig10", panel="10b", groups=1000,
                      scheme="off")[0],
                _rows(r, "fig10", panel="10b", groups=1000,
                      scheme="join_60pct")[0],
            )
        ),
    ),
    Claim(
        "fig11",
        "Q1/Q7/Q8/Q9 are the top partitioning beneficiaries",
        lambda r: set(
            sorted(
                fig11_tpch.improvements(r["fig11"]),
                key=fig11_tpch.improvements(r["fig11"]).get,
                reverse=True,
            )[:4]
        ) == {"TPCH_Q01", "TPCH_Q07", "TPCH_Q08", "TPCH_Q09"},
    ),
    Claim(
        "fig11",
        "no TPC-H query regresses under partitioning",
        lambda r: min(
            fig11_tpch.improvements(r["fig11"]).values()
        ) >= -0.02,
    ),
    Claim(
        "fig12",
        "OLTP gains grow with the projected-column count",
        lambda r: (
            (lambda gains: gains == sorted(gains))(
                [
                    _rows(r, "fig12", panel="sweep",
                          projected_columns=c, partitioning="on")[0][3]
                    - _rows(r, "fig12", panel="sweep",
                            projected_columns=c,
                            partitioning="off")[0][3]
                    for c in (2, 7, 13)
                ]
            )
        ),
    ),
)


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    figures = {
        "fig1": fig01_teaser.run,
        "fig4": fig04_scan.run,
        "fig5": fig05_aggregation.run,
        "fig6": fig06_join.run,
        "fig9": fig09_scan_agg.run,
        "fig10": fig10_agg_join.run,
        "fig11": fig11_tpch.run,
        "fig12": fig12_oltp.run,
    }
    tracer = runtime.tracer
    results = {}
    for figure_id, figure_run in figures.items():
        with tracer.span(figure_id):
            results[figure_id] = figure_run(spec)
    report = FigureResult(
        figure_id="report",
        title="Reproduction report: the paper's claims, checked",
        headers=("figure", "claim", "verdict"),
    )
    for claim in CLAIMS:
        verdict = "PASS" if claim.check(results) else "FAIL"
        report.add(claim.figure, claim.text, verdict)
    passed = sum(1 for row in report.rows if row[2] == "PASS")
    report.notes.append(f"{passed}/{len(report.rows)} claims hold")
    metrics = runtime.metrics
    metrics.gauge("report.claims_passed").set(passed)
    metrics.gauge("report.claims_total").set(len(report.rows))
    return report


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
