"""Fig. 4 — normalized throughput of Query 1 (column scan) vs LLC size.

Paper finding: the scan is *hardly sensitive* to the cache size — its
normalized throughput stays ~1.0 from 55 MiB down to 5.5 MiB, with an
LLC hit ratio below 0.08 and ~1.9e-2 misses per instruction.  The paper
also notes (Sec. V-B) that the single-way mask ``0x1`` degrades even
the scan severely; we include that point as a note row.
"""

from __future__ import annotations

from ..config import SystemSpec
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult
from ..workloads.microbench import query1


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    profile = query1().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig4",
        title=(
            "Fig. 4: Query 1 (column scan) normalized throughput at "
            "varying LLC sizes"
        ),
        headers=("cache_mib", "ways", "normalized_throughput",
                 "llc_hit_ratio", "mpi"),
    )
    # Phase 1: every point of the sweep — plus the paper's single-way
    # observation — is independent, so they evaluate as one batch
    # (fanned out across the process pool when one is installed).
    ways_sequence = runner.sweep_ways(fast)
    baseline, points = runner.isolated_sweep(
        profile, ways_sequence + (1,)
    )
    *sweep_points, single_way = points

    # Phase 2: assemble rows in sweep order.
    for ways, point in zip(ways_sequence, sweep_points):
        result.add(
            round(runner.cache_mib(ways), 2),
            ways,
            round(
                point.throughput_tuples_per_s
                / baseline.throughput_tuples_per_s,
                3,
            ),
            round(point.counters.llc_hit_ratio, 3),
            round(point.counters.misses_per_instruction, 4),
        )

    # The paper's 0x1 observation: one way defeats the prefetcher.
    result.notes.append(
        "mask 0x1 (single way): normalized throughput "
        f"{single_way.throughput_tuples_per_s / baseline.throughput_tuples_per_s:.2f}"
        " — severe degradation, matching the paper's Sec. V-B note"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
