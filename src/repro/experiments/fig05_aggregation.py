"""Fig. 5 — Query 2 (aggregation with grouping) vs LLC size.

Three panels by dictionary size (4 / 40 / 400 MiB, i.e. 10^6 / 10^7 /
10^8 distinct values in B.V), each sweeping the group count 10^2..10^6
and the LLC allocation.  Paper findings reproduced here:

* 4 MiB dictionary: sensitive below ~20 MiB for small groups (>46 %
  loss at ~5 MiB); the 10^5-group curve breaks below 40 MiB with the
  strongest loss (67 %); 10^6 groups degrade less (hash tables exceed
  the LLC anyway),
* 40 MiB dictionary: throughput degrades steadily for all group sizes,
  by up to 62 % (up to 34 % for 10^6 groups),
* 400 MiB dictionary: compulsory dictionary misses dominate; the cache
  still matters through the hash tables (up to ~54 % at 10^5 groups).
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import (
    DICT_4_MIB,
    DICT_40_MIB,
    DICT_400_MIB,
    GROUP_SIZES,
    query2,
)
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult

PANELS = (
    ("5a", DICT_4_MIB, "4 MiB dictionary"),
    ("5b", DICT_40_MIB, "40 MiB dictionary"),
    ("5c", DICT_400_MIB, "400 MiB dictionary"),
)


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    result = FigureResult(
        figure_id="fig5",
        title=(
            "Fig. 5: Query 2 (aggregation with grouping) normalized "
            "throughput at varying LLC sizes"
        ),
        headers=("panel", "dict_mib", "groups", "cache_mib", "ways",
                 "normalized_throughput"),
    )
    group_sizes = GROUP_SIZES if not fast else (
        GROUP_SIZES[0], GROUP_SIZES[3], GROUP_SIZES[4]
    )
    ways_sequence = runner.sweep_ways(fast)

    # Phase 1: collect every (dictionary, groups) combination with its
    # baseline and sweep points into one batch, in the order the
    # sequential loops would solve them.
    combos = []
    requests: list[tuple] = []
    for panel, distinct, label in PANELS:
        dict_mib = round(
            runner.calibration.dictionary_bytes(distinct) / (1 << 20)
        )
        for groups in group_sizes:
            profile = query2(distinct, groups).profile(
                runner.workers, runner.calibration
            )
            combos.append((panel, dict_mib, groups))
            requests.append((profile, None, None))
            requests.extend(
                (profile, runner.mask_for_ways(ways), None)
                for ways in ways_sequence
            )
        result.notes.append(f"panel {panel}: {label}")

    # Phase 2: evaluate the batch (process-pool fan-out when active)
    # and assemble rows in the original nested-loop order.
    outcomes = iter(runner.experiment.isolated_batch(requests))
    for panel, dict_mib, groups in combos:
        baseline = next(outcomes)
        for ways in ways_sequence:
            point = next(outcomes)
            result.add(
                panel,
                dict_mib,
                groups,
                round(runner.cache_mib(ways), 2),
                ways,
                round(
                    point.throughput_tuples_per_s
                    / baseline.throughput_tuples_per_s,
                    3,
                ),
            )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
