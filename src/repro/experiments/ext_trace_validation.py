"""Extension experiment: end-to-end validation on the exact simulator.

Everything in Figs. 4-12 runs on the analytic model.  This experiment
replays the core mechanism — a hot random-access region polluted by a
sequential scan, with and without CAT way partitioning — on the
*trace-driven* set-associative LRU simulator, and compares the measured
hit ratios with the analytic prediction.

It is the figure-level counterpart of the unit-level cross-validation
in ``tests/test_model_cross_validation.py``: if these two substrates
disagreed, the reproduction's conclusions would be simulator artefacts.

Two geometries are validated:

* the historical scaled-down geometry (128 sets x 16 ways), and
* the **full LLC geometry** of the paper's machine (2048 sets x
  20 ways) — affordable since the vectorized trace engine
  (:mod:`repro.hardware.fastcache`) replays whole batches; the
  per-access reference engine remains selectable via ``--engine ref``
  (both produce bit-identical hit ratios, so the table does not depend
  on the choice — only the wall-clock does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cat import CatController
from repro.hardware.engine import make_cache
from repro.model.occupancy import (
    RegionActor,
    StreamActor,
    solve_characteristic_time,
)
from repro.units import KiB
from .reporting import format_table
from .runner import FigureResult

LINE = 64

#: The historical scaled-down geometry.
SETS = 128
WAYS = 16

#: The paper machine's full LLC geometry (Sec. III-C: 55 MiB, 20-way
#: would be 45056 sets; 2048 sets keeps the way structure and a
#: realistic set count while staying replayable in CI).
FULL_SETS = 2048
FULL_WAYS = 20


@dataclass(frozen=True)
class Geometry:
    sets: int
    ways: int
    #: Ways the polluting scan is confined to when partitioned.
    stream_ways: int = 2

    @property
    def label(self) -> str:
        return f"{self.sets}x{self.ways}"

    @property
    def full_mask(self) -> int:
        return (1 << self.ways) - 1

    @property
    def stream_mask(self) -> int:
        return (1 << self.stream_ways) - 1


TOY = Geometry(SETS, WAYS)
FULL = Geometry(FULL_SETS, FULL_WAYS)


def _scaled_spec(geometry: Geometry) -> SystemSpec:
    return SystemSpec(
        cores=2,
        llc=CacheSpec(geometry.sets * geometry.ways * LINE, geometry.ways),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
        cat_min_bits=1,
    )


def _schedule(
    region_lines: int,
    stream_rate: float,
    steps: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the full interleaved access schedule as arrays.

    Event layout matches the historical per-step loop: one random
    region access per step, followed by however many scan accesses the
    rate accumulator releases (``floor((i+1)r) - floor(i r)``).
    Returns (line addresses, region-event mask, region event positions).
    """
    step_index = np.arange(steps, dtype=np.int64)
    stream_counts = (
        np.floor((step_index + 1) * stream_rate)
        - np.floor(step_index * stream_rate)
    ).astype(np.int64)
    total = steps + int(stream_counts.sum())
    prefix = np.concatenate(([0], np.cumsum(stream_counts)[:-1]))
    region_pos = step_index + prefix
    is_region = np.zeros(total, dtype=bool)
    is_region[region_pos] = True
    lines = np.empty(total, dtype=np.int64)
    lines[region_pos] = rng.integers(0, region_lines, size=steps)
    stream_start = 1 << 24
    lines[~is_region] = stream_start + np.arange(total - steps)
    return lines, is_region, region_pos


def _measure(
    geometry: Geometry,
    region_lines: int,
    stream_rate: float,
    partitioned: bool,
    steps: int,
    rng: np.random.Generator,
    engine: str | None,
) -> float:
    """Steady-state hit ratio of the region on the exact simulator."""
    spec = _scaled_spec(geometry)
    cat = CatController(spec)
    cat.set_clos_mask(1, geometry.full_mask)
    cat.set_clos_mask(
        2, geometry.stream_mask if partitioned else geometry.full_mask
    )
    cache = make_cache(spec.llc, cat=cat, engine=engine)
    lines, is_region, region_pos = _schedule(
        region_lines, stream_rate, steps, rng
    )
    clos = np.where(is_region, 1, 2)
    streams = np.where(is_region, "region", "scan").tolist()
    hits = cache.access_batch(lines * LINE, clos=clos, stream=streams)
    warmup = steps // 2
    measured = hits[region_pos[warmup:]]
    return float(measured.sum()) / max(1, len(measured))


def _predict(
    geometry: Geometry,
    region_lines: int,
    stream_rate: float,
    stream_ways_shared: int,
) -> float:
    """Analytic prediction with the same way-mask segmentation."""
    way_lines = geometry.sets
    exclusive_ways = geometry.ways - stream_ways_shared
    # Greedy placement: the region prefers its exclusive ways.
    exclusive_lines = exclusive_ways * way_lines
    shared_lines = stream_ways_shared * way_lines
    placed_exclusive = min(region_lines, exclusive_lines)
    placed_shared = region_lines - placed_exclusive

    hit = 0.0
    if placed_exclusive:
        t = solve_characteristic_time(
            [RegionActor("q", "r", placed_exclusive, 1.0)],
            [],
            exclusive_lines,
        )
        hit += (placed_exclusive / region_lines) * RegionActor(
            "q", "r", placed_exclusive, 1.0
        ).hit_ratio(t)
    if placed_shared and shared_lines:
        region = RegionActor(
            "q", "r", placed_shared,
            placed_shared / region_lines,
        )
        t = solve_characteristic_time(
            [region],
            [StreamActor("p", "s", stream_rate)],
            shared_lines,
        )
        hit += (placed_shared / region_lines) * region.hit_ratio(t)
    return hit


CONFIGS = (
    # (geometry, region_lines, stream rate per region access, partitioned?)
    (TOY, 1024, 2.0, False),
    (TOY, 1024, 2.0, True),
    (TOY, 1536, 4.0, False),
    (TOY, 1536, 4.0, True),
    # Region larger than the 14 exclusive ways: spills into the
    # scan-churned shared ways even when partitioned.
    (TOY, 2048, 4.0, False),
    (TOY, 2048, 4.0, True),
    # Full LLC geometry (2048 sets, 20 ways): the validation point the
    # per-access engine could never afford.
    (FULL, 8192, 4.0, False),
    (FULL, 8192, 4.0, True),
)


def run(
    spec: SystemSpec | None = None,
    fast: bool = False,
    engine: str | None = None,
) -> FigureResult:
    rng = np.random.default_rng(0xBEEF)
    result = FigureResult(
        figure_id="ext_trace",
        title=(
            "Extension: analytic model vs exact LRU simulation — "
            "region hit ratio under scan pollution, CAT off/on"
        ),
        headers=("region_lines", "stream_rate", "partitioned",
                 "simulated_hit", "predicted_hit", "abs_error",
                 "geometry"),
    )
    for geometry, region_lines, stream_rate, partitioned in CONFIGS:
        if geometry is FULL:
            steps = 48_000 if fast else 96_000
        else:
            steps = 12_000 if fast else 40_000
        measured = _measure(
            geometry, region_lines, stream_rate, partitioned, steps,
            rng, engine,
        )
        predicted = _predict(
            geometry, region_lines, stream_rate,
            geometry.stream_ways if partitioned else geometry.ways,
        )
        result.add(
            region_lines,
            stream_rate,
            partitioned,
            round(measured, 3),
            round(predicted, 3),
            round(abs(measured - predicted), 3),
            geometry.label,
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
