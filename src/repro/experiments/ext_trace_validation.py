"""Extension experiment: end-to-end validation on the exact simulator.

Everything in Figs. 4-12 runs on the analytic model.  This experiment
replays the core mechanism — a hot random-access region polluted by a
sequential scan, with and without CAT way partitioning — on the
*trace-driven* set-associative LRU simulator at scaled-down geometry,
and compares the measured hit ratios with the analytic prediction.

It is the figure-level counterpart of the unit-level cross-validation
in ``tests/test_model_cross_validation.py``: if these two substrates
disagreed, the reproduction's conclusions would be simulator artefacts.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheSpec, SystemSpec
from repro.hardware.cache import SetAssociativeCache
from repro.hardware.cat import CatController
from repro.model.occupancy import (
    RegionActor,
    StreamActor,
    solve_characteristic_time,
)
from repro.units import KiB
from .reporting import format_table
from .runner import FigureResult

LINE = 64
SETS = 128
WAYS = 16


def _scaled_spec() -> SystemSpec:
    return SystemSpec(
        cores=2,
        llc=CacheSpec(SETS * WAYS * LINE, WAYS),
        l1d=CacheSpec(2 * KiB, 2),
        l2=CacheSpec(4 * KiB, 4),
        cat_min_bits=1,
    )


def _measure(
    region_lines: int,
    stream_rate: float,
    region_mask: int,
    stream_mask: int,
    steps: int,
    rng: np.random.Generator,
) -> float:
    """Steady-state hit ratio of the region on the exact simulator."""
    spec = _scaled_spec()
    cat = CatController(spec)
    cat.set_clos_mask(1, region_mask)
    cat.set_clos_mask(2, stream_mask)
    cache = SetAssociativeCache(spec.llc, cat=cat)
    stream_position = 1 << 24
    hits = demands = 0
    stream_accumulator = 0.0
    warmup = steps // 2
    for step in range(steps):
        line = int(rng.integers(0, region_lines))
        hit = cache.access(line * LINE, clos=1, stream="region")
        if step >= warmup:
            demands += 1
            hits += 1 if hit else 0
        stream_accumulator += stream_rate
        while stream_accumulator >= 1.0:
            stream_accumulator -= 1.0
            cache.access(stream_position * LINE, clos=2, stream="scan")
            stream_position += 1
    return hits / max(1, demands)


def _predict(
    region_lines: int,
    stream_rate: float,
    region_ways: int,
    stream_ways_shared: int,
) -> float:
    """Analytic prediction with the same way-mask segmentation."""
    way_lines = SETS
    exclusive_ways = region_ways - stream_ways_shared
    # Greedy placement: the region prefers its exclusive ways.
    exclusive_lines = exclusive_ways * way_lines
    shared_lines = stream_ways_shared * way_lines
    placed_exclusive = min(region_lines, exclusive_lines)
    placed_shared = region_lines - placed_exclusive

    hit = 0.0
    if placed_exclusive:
        t = solve_characteristic_time(
            [RegionActor("q", "r", placed_exclusive, 1.0)],
            [],
            exclusive_lines,
        )
        hit += (placed_exclusive / region_lines) * RegionActor(
            "q", "r", placed_exclusive, 1.0
        ).hit_ratio(t)
    if placed_shared and shared_lines:
        region = RegionActor(
            "q", "r", placed_shared,
            placed_shared / region_lines,
        )
        t = solve_characteristic_time(
            [region],
            [StreamActor("p", "s", stream_rate)],
            shared_lines,
        )
        hit += (placed_shared / region_lines) * region.hit_ratio(t)
    return hit


CONFIGS = (
    # (region_lines, stream rate per region access, partitioned?)
    (1024, 2.0, False),
    (1024, 2.0, True),
    (1536, 4.0, False),
    (1536, 4.0, True),
    # Region larger than the 14 exclusive ways: spills into the
    # scan-churned shared ways even when partitioned.
    (2048, 4.0, False),
    (2048, 4.0, True),
)


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    rng = np.random.default_rng(0xBEEF)
    steps = 12_000 if fast else 40_000
    result = FigureResult(
        figure_id="ext_trace",
        title=(
            "Extension: analytic model vs exact LRU simulation — "
            "region hit ratio under scan pollution, CAT off/on"
        ),
        headers=("region_lines", "stream_rate", "partitioned",
                 "simulated_hit", "predicted_hit", "abs_error"),
    )
    full = (1 << WAYS) - 1
    for region_lines, stream_rate, partitioned in CONFIGS:
        stream_mask = 0x3 if partitioned else full
        measured = _measure(
            region_lines, stream_rate, full, stream_mask, steps, rng
        )
        predicted = _predict(
            region_lines, stream_rate, WAYS,
            2 if partitioned else WAYS,
        )
        result.add(
            region_lines,
            stream_rate,
            partitioned,
            round(measured, 3),
            round(predicted, 3),
            round(abs(measured - predicted), 3),
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
