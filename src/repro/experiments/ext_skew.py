"""Extension experiment: data skew and cache sensitivity.

The paper generates all data *uniformly* (Sec. III-B); production
dictionaries and group distributions are usually Zipf-like.  Skew
concentrates accesses on a hot set that survives in a small cache, so
a skewed aggregation should be less LLC-sensitive and profit less from
partitioning — which also means the paper's uniform setup is the
*conservative* (hardest) case for its own mechanism.

This experiment compares the 40 MiB-dictionary aggregation with uniform
vs 80/20-skewed dictionary access, isolated (LLC sweep) and under scan
pollution with/without partitioning.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SystemSpec
from ..model.streams import AccessProfile, skewed_regions
from ..workloads.microbench import DICT_40_MIB, query1, query2
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest

GROUPS = 10**4


def _skewed(profile: AccessProfile) -> AccessProfile:
    """Replace the uniform dictionary region with a hot/cold pair."""
    dictionary = profile.region("dictionary")
    hot, cold = skewed_regions(
        "dictionary",
        dictionary.total_bytes,
        dictionary.accesses_per_tuple,
    )
    others = tuple(
        region for region in profile.regions
        if region.name != "dictionary"
    )
    return replace(
        profile, name=f"{profile.name}_skewed",
        regions=(hot, cold) + others,
    )


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    uniform = query2(DICT_40_MIB, GROUPS).profile(
        runner.workers, runner.calibration, name="agg_uniform"
    )
    skewed = _skewed(uniform)
    scan_profile = query1().profile(runner.calibration)

    result = FigureResult(
        figure_id="ext_skew",
        title=(
            "Extension: uniform vs Zipf(80/20) dictionary access — "
            "LLC sensitivity and partitioning gain"
        ),
        headers=("distribution", "configuration", "normalized"),
    )

    ways_list = [2, 8, 14, 20] if fast else [2, 6, 10, 14, 20]
    for profile in (uniform, skewed):
        label = "uniform" if profile is uniform else "zipf_80_20"
        for fraction, normalized in runner.experiment.llc_sweep(
            profile, ways_list=ways_list
        ):
            result.add(label, f"isolated_llc_{fraction:.0%}",
                       round(normalized, 3))
        off, on = runner.pair_batch(
            [
                PairRequest(scan_profile, profile),
                PairRequest(scan_profile, profile,
                            first_mask=runner.polluting_mask()),
            ]
        )
        result.add(label, "with_scan",
                   round(off.normalized[profile.name], 3))
        result.add(label, "with_scan_partitioned",
                   round(on.normalized[profile.name], 3))
    return result


def sensitivity(result: FigureResult, label: str) -> float:
    """Worst isolated degradation for one distribution."""
    values = [
        row[2] for row in result.rows
        if row[0] == label and row[1].startswith("isolated")
    ]
    return 1.0 - min(values)


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for label in ("uniform", "zipf_80_20"):
        print(f"note: worst isolated degradation ({label}): "
              f"{sensitivity(result, label):.0%}")
    return result


if __name__ == "__main__":
    main()
