"""Extension experiment: hash vs. sort aggregation under pollution.

The paper's related work (Sec. VII) observes that both cache-*aware*
(hash) and cache-*efficient* (sort-based) algorithms remain exposed to
cache pollution, and that its partitioning approach "benefits both
groups".  This experiment quantifies the trade-off on the model:

* isolated: the two algorithms are competitive (hash pays random
  hash-table traffic, sort pays extra merge passes),
* concurrent with a polluting scan, unpartitioned: hash suffers much
  more (its hash tables and dictionary get evicted) while sort's
  sequential passes shrug pollution off — an *algorithm choice* would
  be dictated by the co-runner,
* concurrent + cache partitioning: both recover to parity —
  partitioning removes the pollution pressure that would otherwise
  force a switch to the pollution-robust (but not otherwise better)
  algorithm.  "We expect our approach to benefit both groups of
  algorithms" (paper Sec. VII), quantified.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..operators.aggregate import GroupedAggregation
from ..operators.sort_aggregate import SortAggregation
from ..workloads.microbench import DICT_40_MIB, query1
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest

GROUPS = 10**5


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    hash_profile = GroupedAggregation.profile_from_stats(
        rows=1e9, value_distinct=DICT_40_MIB, group_distinct=GROUPS,
        workers=runner.workers, calibration=runner.calibration,
        name="hash_agg",
    )
    sort_profile = SortAggregation.profile_from_stats(
        rows=1e9, value_distinct=DICT_40_MIB, group_distinct=GROUPS,
        workers=runner.workers, calibration=runner.calibration,
        name="sort_agg",
    )

    result = FigureResult(
        figure_id="ext_sort",
        title=(
            "Extension (Sec. VII): hash vs sort aggregation under "
            "cache pollution (absolute Gtuples/s)"
        ),
        headers=("algorithm", "configuration", "gtuples_per_s",
                 "vs_isolated"),
    )

    for profile in (hash_profile, sort_profile):
        isolated = runner.experiment.isolated(profile)
        iso_tps = isolated.throughput_tuples_per_s
        result.add(profile.name, "isolated", round(iso_tps / 1e9, 3),
                   1.0)
        labels = ("with_scan", "with_scan_partitioned")
        outcomes = runner.pair_batch(
            [
                PairRequest(scan_profile, profile,
                            first_mask=scan_mask)
                for scan_mask in (None, runner.polluting_mask())
            ]
        )
        for label, outcome in zip(labels, outcomes):
            tps = outcome.results[profile.name].throughput_tuples_per_s
            result.add(
                profile.name, label, round(tps / 1e9, 3),
                round(tps / iso_tps, 3),
            )
    return result


def throughputs(result: FigureResult) -> dict[tuple[str, str], float]:
    """(algorithm, configuration) -> Gtuples/s, for assertions."""
    return {(row[0], row[1]): row[2] for row in result.rows}


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    table = throughputs(result)
    iso_edge = table[("hash_agg", "isolated")] / table[
        ("sort_agg", "isolated")
    ]
    polluted_edge = table[("hash_agg", "with_scan")] / table[
        ("sort_agg", "with_scan")
    ]
    partitioned_edge = table[
        ("hash_agg", "with_scan_partitioned")
    ] / table[("sort_agg", "with_scan_partitioned")]
    print(f"note: hash/sort throughput ratio — isolated {iso_edge:.2f}x, "
          f"polluted {polluted_edge:.2f}x, "
          f"partitioned {partitioned_edge:.2f}x")
    return result


if __name__ == "__main__":
    main()
