"""Extension experiment: CAT vs. page coloring under dynamic workloads.

The paper's Sec. V-A argues that page coloring is "less flexible
because re-partitioning the cache dynamically at runtime requires
copying the allocated data".  This experiment quantifies the claim:

a workload alternates between a scan-heavy phase (polluter should be
restricted) and an aggregation-heavy phase (restriction lifted); every
phase change re-partitions the cache.  Capacity-wise both mechanisms
grant the same fractions, so steady-state throughput matches — the
difference is pure re-partitioning cost, which for page coloring means
copying the resident working set.
"""

from __future__ import annotations

from ..baselines.page_coloring import (
    PageColoringPartitioner,
    coloring_capacity_bytes,
    num_colors,
)
from ..config import SystemSpec
from ..units import GiB
from .reporting import format_table
from .runner import FigureResult

RESIDENT_BYTES = 8 * GiB        # hot columns + dictionaries resident
PHASE_SECONDS = 30.0            # workload phase length
PHASE_CHANGES = (1, 10, 100)    # re-partitions during an experiment run


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    spec = spec if spec is not None else SystemSpec()
    result = FigureResult(
        figure_id="ext_base",
        title=(
            "Extension (Sec. V-A/VII): re-partitioning cost — CAT vs. "
            "page coloring (8 GiB resident working set)"
        ),
        headers=("phase_changes", "mechanism", "repartition_seconds",
                 "overhead_vs_workload"),
    )

    colors = num_colors(spec)
    restricted = max(1, colors // 10)
    for changes in PHASE_CHANGES:
        partitioner = PageColoringPartitioner(spec)
        partitioner.assign("olap", frozenset(range(colors)))
        for change in range(changes):
            # Alternate: restrict to 10 % of colors, then widen again.
            if change % 2 == 0:
                target = frozenset(range(restricted))
            else:
                target = frozenset(range(colors))
            partitioner.assign("olap", target,
                               resident_bytes=RESIDENT_BYTES)
            partitioner.cat_equivalent_cost()
        workload_seconds = changes * PHASE_SECONDS
        for mechanism in ("page_coloring", "cat"):
            cost = partitioner.total_repartition_seconds(mechanism)
            result.add(
                changes,
                mechanism,
                round(cost, 4),
                round(cost / workload_seconds, 6),
            )

    result.notes.append(
        f"page colors available: {colors}; 10% grant = "
        f"{coloring_capacity_bytes(spec, restricted) / 2**20:.1f} MiB "
        f"(CAT 10% = {spec.mask_bytes(0x3) / 2**20:.1f} MiB) — "
        "equal capacity, unequal re-partitioning cost"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
