"""Extension experiment: routing policy x fleet size x offered load.

The paper partitions the LLC *within* one machine; this extension asks
what its classification machinery buys a *fleet*.  Each scenario runs
the same per-node offered load through three routing policies:

* ``hash`` — tenant-affine consistent hashing: placement is blind to
  cache behaviour, so every node ends up with a proportional slice of
  the polluting batch scans,
* ``least-loaded`` — shortest-queue placement: load-aware but equally
  cache-blind,
* ``affinity`` — the extension under test: request classes are
  classified with the paper's online probe (full-LLC vs polluter-slice
  throughput) and polluting traffic is consolidated onto few nodes
  (bounded by a queue-slack guard) while cache-sensitive traffic is
  steered to clean ones.

Partitioning *inside* a node caps scan damage; placement *across*
nodes removes it from most of the fleet entirely.  With enough nodes
to give the router freedom (N >= 4 here), affinity beats hash on the
fleet-wide OLAP p99 — at high load by a wide margin, because blind
placement pushes polluted nodes into queueing and shedding that the
consolidated fleet never sees.  At N = 2 there is nowhere to hide the
batch tenant and the policies converge (visible in the table).

A final scenario injects seeded node kills under consistent hashing
and accounts for the losses: failovers reroute the dead node's tenants
to ring successors, evacuated in-flight work is counted as failure
shed, and fleet-wide conservation (generated == completed + all shed
classes) is checked by the report itself.
"""

from __future__ import annotations

from ..cluster import Cluster, ClusterConfig, ClusterReport, FaultSpec
from .reporting import format_table
from .runner import FigureResult

SEED = 0xA11CE
ROUTERS = ("hash", "least-loaded", "affinity")
NODE_COUNTS = (2, 4)
FAST_NODE_COUNTS = (4,)
LOAD_RATES = (12.0, 20.0)
FAST_LOAD_RATES = (20.0,)
DURATION_S = 10.0
FAST_DURATION_S = 6.0
#: The flagship comparison the notes (and tests) assert on.
FLAGSHIP_NODES = 4
FLAGSHIP_RATE = 20.0


def _row(table: str, report: ClusterReport) -> tuple:
    olap = report.fleet_verdict_for("olap")
    oltp = report.fleet_verdict_for("oltp")
    return (
        table,
        report.config.nodes,
        report.config.rate_per_s,
        report.config.router,
        report.completed,
        report.shed_admission + report.shed_failure
        + report.shed_no_node,
        report.forwarded,
        report.failovers,
        round(olap.p99_s, 4),
        round(oltp.p99_s, 4),
        round(report.aggregate["p99_s"], 4),
        report.slo_ok,
    )


def run(fast: bool = False) -> FigureResult:
    node_counts = FAST_NODE_COUNTS if fast else NODE_COUNTS
    rates = FAST_LOAD_RATES if fast else LOAD_RATES
    duration = FAST_DURATION_S if fast else DURATION_S

    result = FigureResult(
        figure_id="ext_cluster",
        title=(
            "Extension (Sec. VIII): sharded service fleet — "
            "cache-affinity routing vs hash and least-loaded "
            "placement, and failover under node faults"
        ),
        headers=(
            "table", "nodes", "rate_per_s", "router", "completed",
            "shed", "forwarded", "failovers", "fleet_p99_olap_s",
            "fleet_p99_oltp_s", "agg_p99_s", "slo_ok",
        ),
    )

    reports: dict[tuple[int, float, str], ClusterReport] = {}
    for nodes in node_counts:
        for rate in rates:
            for router in ROUTERS:
                config = ClusterConfig(
                    nodes=nodes,
                    router=router,
                    policy="adaptive",
                    mix="olap",
                    duration_s=duration,
                    rate_per_s=rate,
                    seed=SEED,
                )
                report = Cluster(config).run()
                reports[(nodes, rate, router)] = report
                result.add(*_row("grid", report))

    flagship_nodes = (
        FLAGSHIP_NODES if FLAGSHIP_NODES in node_counts
        else max(node_counts)
    )
    flagship_rate = (
        FLAGSHIP_RATE if FLAGSHIP_RATE in rates else max(rates)
    )
    hash_report = reports[(flagship_nodes, flagship_rate, "hash")]
    affinity_report = reports[
        (flagship_nodes, flagship_rate, "affinity")
    ]
    hash_p99 = hash_report.fleet_verdict_for("olap").p99_s
    affinity_p99 = affinity_report.fleet_verdict_for("olap").p99_s
    result.notes.append(
        f"N={flagship_nodes} @ {flagship_rate:g}/s/node: fleet OLAP "
        f"p99 hash={hash_p99:.3f}s affinity={affinity_p99:.3f}s "
        f"({hash_p99 / affinity_p99:.2f}x) — consolidating the "
        f"polluting batch tenant beats cache-blind placement"
    )

    # Failover scenario: two staggered kills under consistent hashing.
    fault_duration = duration
    fault_config = ClusterConfig(
        nodes=3,
        router="hash",
        policy="adaptive",
        mix="olap",
        duration_s=fault_duration,
        rate_per_s=max(rates),
        seed=SEED,
        faults=(
            FaultSpec(1, 0.25 * fault_duration,
                      0.60 * fault_duration),
            FaultSpec(2, 0.45 * fault_duration,
                      0.80 * fault_duration),
        ),
    )
    fault_report = Cluster(fault_config).run()
    result.add(*_row("faults", fault_report))
    result.notes.append(
        f"faults: 2 kills over {fault_duration:g}s rerouted "
        f"{fault_report.failovers} arrivals to ring successors and "
        f"lost {fault_report.shed_failure} in-flight requests; "
        f"conservation generated={fault_report.generated} == "
        f"completed={fault_report.completed} + shed="
        f"{fault_report.shed_admission + fault_report.shed_failure + fault_report.shed_no_node}"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
