"""Shared experiment infrastructure.

:class:`ExperimentRunner` bundles a hardware spec, the calibration, the
concurrency harness and the paper's partitioning scheme, and provides
the two measurement patterns every figure uses:

* isolated LLC-size sweeps (Figs. 4-6),
* concurrent pairs normalized to isolated baselines, with and without
  partitioning (Figs. 1, 9-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..core.policy import PartitioningScheme, paper_scheme
from ..errors import WorkloadError
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.streams import AccessProfile
from ..workloads.mixed import (
    ConcurrencyExperiment,
    ConcurrentResult,
    WorkloadQuery,
)


@dataclass
class FigureResult:
    """Rows of one reproduced figure."""

    figure_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise WorkloadError(
                f"row width {len(values)} != header width "
                f"{len(self.headers)}"
            )
        self.rows.append(tuple(values))

    def column(self, header: str) -> list:
        try:
            index = self.headers.index(header)
        except ValueError:
            raise WorkloadError(
                f"no column {header!r} in {self.figure_id}"
            ) from None
        return [row[index] for row in self.rows]

    def select(self, **conditions) -> list[tuple]:
        """Rows whose named columns equal the given values."""
        indexes = {
            key: self.headers.index(key) for key in conditions
        }
        return [
            row
            for row in self.rows
            if all(row[indexes[k]] == v for k, v in conditions.items())
        ]


class ExperimentRunner:
    """Common setup for all figure reproductions."""

    # LLC-way sweep used by the isolated micro-benchmarks; 2 ways =
    # 5.5 MiB ... 20 ways = 55 MiB, matching the paper's x axis.
    SWEEP_WAYS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
    FAST_SWEEP_WAYS = (2, 8, 14, 20)

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        scheme: PartitioningScheme | None = None,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        self.scheme = scheme if scheme is not None else paper_scheme()
        self.experiment = ConcurrencyExperiment(self.spec, calibration)

    @property
    def workers(self) -> int:
        """Concurrency limit: the physical core count (paper Sec. III-D)."""
        return self.spec.cores

    def sweep_ways(self, fast: bool) -> tuple[int, ...]:
        return self.FAST_SWEEP_WAYS if fast else self.SWEEP_WAYS

    def mask_for_ways(self, ways: int) -> int:
        if not 1 <= ways <= self.spec.llc.ways:
            raise WorkloadError(
                f"ways must be in [1, {self.spec.llc.ways}]: {ways}"
            )
        return (1 << ways) - 1

    def cache_mib(self, ways: int) -> float:
        """Cache size (MiB) granted by a ``ways``-way mask."""
        return ways * self.spec.llc.way_bytes / (1024 * 1024)

    # ------------------------------------------------------------------

    def polluting_mask(self) -> int:
        return self.scheme.to_cuid_policy(self.spec).polluting_mask

    def adaptive_mask(self) -> int:
        return self.scheme.to_cuid_policy(self.spec).adaptive_sensitive_mask

    def pair(
        self,
        first: AccessProfile,
        second: AccessProfile,
        first_mask: int | None = None,
        second_mask: int | None = None,
        first_cores: int | None = None,
        second_cores: int | None = None,
    ) -> ConcurrentResult:
        """Run two queries concurrently with optional CAT masks."""
        return self.experiment.concurrent(
            [
                WorkloadQuery(first.name, first, first_mask, first_cores),
                WorkloadQuery(
                    second.name, second, second_mask, second_cores
                ),
            ]
        )
