"""Shared experiment infrastructure.

:class:`ExperimentRunner` bundles a hardware spec, the calibration, the
concurrency harness and the paper's partitioning scheme, and provides
the two measurement patterns every figure uses:

* isolated LLC-size sweeps (Figs. 4-6),
* concurrent pairs normalized to isolated baselines, with and without
  partitioning (Figs. 1, 9-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemSpec
from ..core.policy import PartitioningScheme, paper_scheme
from ..engine.cache_control import CacheController, CuidPolicy
from ..errors import WorkloadError
from ..hardware.cat import CatController
from ..hardware.counters import PerfCounters
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..model.simulator import QueryResult
from ..model.streams import AccessProfile
from ..obs import runtime
from ..parallel import executor as parallel
from ..resctrl.filesystem import ResctrlFilesystem
from ..resctrl.interface import ResctrlInterface
from ..workloads.mixed import (
    ConcurrencyExperiment,
    ConcurrentResult,
    WorkloadQuery,
)


@dataclass
class FigureResult:
    """Rows of one reproduced figure."""

    figure_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise WorkloadError(
                f"row width {len(values)} != header width "
                f"{len(self.headers)} in {self.figure_id}"
            )
        self.rows.append(tuple(values))

    def column(self, header: str) -> list:
        try:
            index = self.headers.index(header)
        except ValueError:
            raise WorkloadError(
                f"no column {header!r} in {self.figure_id}"
            ) from None
        return [row[index] for row in self.rows]

    def select(self, **conditions) -> list[tuple]:
        """Rows whose named columns equal the given values."""
        indexes = {}
        for key in conditions:
            try:
                indexes[key] = self.headers.index(key)
            except ValueError:
                raise WorkloadError(
                    f"no column {key!r} in {self.figure_id}"
                ) from None
        return [
            row
            for row in self.rows
            if all(row[indexes[k]] == v for k, v in conditions.items())
        ]

    def to_dict(self) -> dict:
        """JSON-serializable form (see docs/OBSERVABILITY.md)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FigureResult":
        """Rebuild a figure from :meth:`to_dict` output (JSON round
        trip restores the exact rows, tuples included)."""
        return cls(
            figure_id=payload["figure_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=[tuple(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )


@dataclass(frozen=True)
class PairRequest:
    """One concurrent-pair measurement, described by value.

    The figure modules build lists of these (one per sweep point) and
    hand them to :meth:`ExperimentRunner.pair_batch`, which evaluates
    independent points on the active process pool while assembling
    rows in the sequential schedule order.
    """

    first: AccessProfile
    second: AccessProfile
    first_mask: int | None = None
    second_mask: int | None = None
    first_cores: int | None = None
    second_cores: int | None = None

    def queries(self) -> list[WorkloadQuery]:
        return [
            WorkloadQuery(
                self.first.name, self.first, self.first_mask,
                self.first_cores,
            ),
            WorkloadQuery(
                self.second.name, self.second, self.second_mask,
                self.second_cores,
            ),
        ]


class ExperimentRunner:
    """Common setup for all figure reproductions."""

    # LLC-way sweep used by the isolated micro-benchmarks; 2 ways =
    # 5.5 MiB ... 20 ways = 55 MiB, matching the paper's x axis.
    SWEEP_WAYS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
    FAST_SWEEP_WAYS = (2, 8, 14, 20)

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        scheme: PartitioningScheme | None = None,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        self.scheme = scheme if scheme is not None else paper_scheme()
        self.experiment = ConcurrencyExperiment(self.spec, calibration)
        # The engine-integration side of a measurement: every concurrent
        # wave associates the worker threads with its bitmasks through
        # the compare-before-set controller, so figure runs produce the
        # same association/elision statistics the real engine would.
        self.controller = CacheController(
            self.spec,
            ResctrlInterface(
                ResctrlFilesystem(CatController(self.spec))
            ),
            enabled=True,
        )
        # PCM analogue: per-query counter totals accumulated over every
        # concurrent measurement of this runner, published as gauges.
        self.perf = PerfCounters()
        # Lowering the scheme's fractions to bitmasks is pure in (spec,
        # scheme); memoize it so polluting_mask()/adaptive_mask() stay
        # free inside sweep loops.
        self._cuid_policy: CuidPolicy | None = None

    @property
    def workers(self) -> int:
        """Concurrency limit: the physical core count (paper Sec. III-D)."""
        return self.spec.cores

    def sweep_ways(self, fast: bool) -> tuple[int, ...]:
        return self.FAST_SWEEP_WAYS if fast else self.SWEEP_WAYS

    def mask_for_ways(self, ways: int) -> int:
        if not 1 <= ways <= self.spec.llc.ways:
            raise WorkloadError(
                f"ways must be in [1, {self.spec.llc.ways}]: {ways}"
            )
        return (1 << ways) - 1

    def cache_mib(self, ways: int) -> float:
        """Cache size (MiB) granted by a ``ways``-way mask."""
        return ways * self.spec.llc.way_bytes / (1024 * 1024)

    # ------------------------------------------------------------------

    def cuid_policy(self) -> CuidPolicy:
        """The scheme lowered to bitmasks, computed once per runner."""
        if self._cuid_policy is None:
            self._cuid_policy = self.scheme.to_cuid_policy(self.spec)
        return self._cuid_policy

    def polluting_mask(self) -> int:
        return self.cuid_policy().polluting_mask

    def adaptive_mask(self) -> int:
        return self.cuid_policy().adaptive_sensitive_mask

    def pair(
        self,
        first: AccessProfile,
        second: AccessProfile,
        first_mask: int | None = None,
        second_mask: int | None = None,
        first_cores: int | None = None,
        second_cores: int | None = None,
    ) -> ConcurrentResult:
        """Run two queries concurrently with optional CAT masks."""
        with runtime.tracer.span(
            "pair", first=first.name, second=second.name
        ):
            self._associate_workers(first_mask, second_mask)
            outcome = self.experiment.concurrent(
                [
                    WorkloadQuery(
                        first.name, first, first_mask, first_cores
                    ),
                    WorkloadQuery(
                        second.name, second, second_mask, second_cores
                    ),
                ]
            )
        self._record_counters(outcome)
        return outcome

    def pair_batch(
        self, requests: list[PairRequest]
    ) -> list[ConcurrentResult]:
        """Evaluate many independent pair measurements.

        Sequentially (no process pool installed) this is exactly
        ``[self.pair(...) for ...]`` — identical spans, counters and
        controller statistics.  With a pool, all simulations are
        fanned out first and the engine-integration side (worker
        association, PCM accumulation) then replays in request order,
        so the association sequence the compare-before-set controller
        sees — and therefore its elision statistics — match the
        sequential schedule.
        """
        if parallel.current_pool() is None:
            return [
                self.pair(
                    request.first,
                    request.second,
                    first_mask=request.first_mask,
                    second_mask=request.second_mask,
                    first_cores=request.first_cores,
                    second_cores=request.second_cores,
                )
                for request in requests
            ]
        outcomes = self.experiment.concurrent_batch(
            [request.queries() for request in requests]
        )
        for request, outcome in zip(requests, outcomes):
            with runtime.tracer.span(
                "pair",
                first=request.first.name,
                second=request.second.name,
            ):
                self._associate_workers(
                    request.first_mask, request.second_mask
                )
            self._record_counters(outcome)
        return outcomes

    def isolated_sweep(
        self, profile: AccessProfile, ways_sequence: tuple[int, ...]
    ) -> tuple[QueryResult, list[QueryResult]]:
        """Full-cache baseline plus one isolated point per way count.

        The common shape of Figs. 4-6: points are independent, so they
        fan out across the pool; the returned list preserves
        ``ways_sequence`` order.
        """
        baseline = self.experiment.isolated(profile)
        points = self.experiment.isolated_batch(
            [
                (profile, self.mask_for_ways(ways), None)
                for ways in ways_sequence
            ]
        )
        return baseline, points

    def _record_counters(self, outcome: ConcurrentResult) -> None:
        """Accumulate one second's worth of each query's counter rates
        into the PCM bank and publish the snapshots as gauges."""
        for name, result in outcome.results.items():
            rates = result.counters
            references = int(round(rates.llc_references_per_s))
            self.perf.record(
                name,
                instructions=int(round(rates.instructions_per_s)),
                llc_references=references,
                llc_hits=min(
                    int(round(rates.llc_hits_per_s)), references
                ),
            )
        if runtime.metrics.enabled:
            self.perf.publish(runtime.metrics)

    def _associate_workers(self, *masks: int | None) -> None:
        """Associate every worker thread with each wave's bitmask.

        Mirrors the engine's dispatch (paper Sec. V-C): before a
        query's job wave runs, the workers executing it are bound to
        the query's capacity bitmask.  Feeding the masks through the
        compare-before-set controller makes the figures produce real
        association/elision statistics.
        """
        full = self.spec.full_mask
        for mask in masks:
            effective = mask if mask is not None else full
            for tid in range(self.workers):
                self.controller.associate(tid, effective)
