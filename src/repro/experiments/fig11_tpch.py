"""Fig. 11 — Query 1 (scan) concurrent with each TPC-H query (SF 100).

Paper findings: unpartitioned, TPC-H queries degrade to 74-93 % and the
scan to 65-96 %; restricting the scan to 10 % of the LLC improves
TPC-H queries by up to ~5 %, with Q1, Q7, Q8 and Q9 profiting most
because they aggregate through the ~29 MiB ``L_EXTENDEDPRICE``
dictionary.  The scan itself also gains up to ~5 % with some co-runners
(e.g. Q18) because the partitioned co-runner consumes less bandwidth.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import query1
from ..workloads.tpch import all_queries
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig11",
        title=(
            "Fig. 11: Query 1 (scan) || TPC-H queries (SF 100), "
            "partitioning off/on (scan -> 10% LLC)"
        ),
        headers=(
            "tpch_query", "partitioning", "tpch_normalized",
            "scan_normalized",
        ),
    )
    queries = all_queries()
    if fast:
        queries = tuple(
            q for q in queries if q.number in (1, 6, 7, 9, 13, 18, 22)
        )
    # Phase 1: one pair request per (TPC-H query, partitioning) point.
    points = []
    requests = []
    for tpch in queries:
        tpch_profile = tpch.profile(runner.workers, runner.calibration)
        for label, scan_mask in (
            ("off", None),
            ("on", runner.polluting_mask()),
        ):
            points.append((tpch.name, label, tpch_profile))
            requests.append(
                PairRequest(
                    scan_profile, tpch_profile, first_mask=scan_mask
                )
            )

    # Phase 2: evaluate and assemble in order.
    outcomes = runner.pair_batch(requests)
    for (name, label, tpch_profile), outcome in zip(points, outcomes):
        result.add(
            name,
            label,
            round(outcome.normalized[tpch_profile.name], 3),
            round(outcome.normalized[scan_profile.name], 3),
        )
    return result


def improvements(result: FigureResult) -> dict[str, float]:
    """Per-query partitioning gain (percentage points of normalized
    throughput), for tests and reporting."""
    gains: dict[str, float] = {}
    for row in result.rows:
        name, label, tpch_norm, _ = row
        if label == "off":
            gains[name] = -tpch_norm
        else:
            gains[name] = gains.get(name, 0.0) + tpch_norm
    return gains


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    gains = improvements(result)
    best = sorted(gains, key=gains.get, reverse=True)[:4]
    print(f"note: largest partitioning gains: "
          + ", ".join(f"{name} (+{gains[name]:.3f})" for name in best))
    return result


if __name__ == "__main__":
    main()
