"""Extension experiment: the query service under open-loop load.

The paper evaluates its scheme on fixed 90-second closed loops
(Sec. VI); this extension asks what the same partitioning decisions
buy a *service* that faces offered load it does not control:

* **load table** — throughput, shedding and per-tenant p99 versus
  offered arrival rate, for no partitioning, the paper's static scheme,
  and the adaptive controller.  At low load all three coincide (the
  machine is never contended); at high load the unpartitioned baseline
  completes fewer requests per second and hands the OLTP tenant a
  worse tail, while the adaptive controller converges to the static
  scheme's behaviour without having been given the scheme.
* **shift table** — the adaptive controller across an OLAP-heavy ->
  OLTP-heavy mix shift at mid-run.  ``converge_ticks`` counts the
  control intervals from the shift to the controller's last
  reconfiguration; a small bound demonstrates the re-convergence the
  paper lists as future work (Sec. VIII).

Every run is seeded and the per-composition rate-solve cache is shared
across the whole experiment, so the comparison is deterministic and
cheap: identical compositions under different policies/rates are
solved once.
"""

from __future__ import annotations

from ..serve import QueryService, ServiceConfig
from ..serve.service import ServiceReport
from .reporting import format_table
from .runner import FigureResult

SEED = 7
LOAD_RATES = (8.0, 16.0, 32.0)
FAST_LOAD_RATES = (8.0, 32.0)
POLICIES = ("none", "static", "adaptive")
DURATION_S = 15.0
FAST_DURATION_S = 8.0
SHIFT_DURATION_S = 16.0
FAST_SHIFT_DURATION_S = 10.0


def _converge_ticks(report: ServiceReport, after_s: float = 0.0) -> int:
    """Control ticks from ``after_s`` to the last reconfiguration."""
    controller = report.controller
    if not controller.get("enabled"):
        return 0
    interval = report.config.control_interval_s
    changes = [
        t for t in controller["change_times_s"] if t >= after_s
    ]
    if not changes:
        return 0
    return int(round((changes[-1] - after_s) / interval))


def _row(
    table: str, report: ServiceReport, converge_after_s: float = 0.0
) -> tuple:
    olap = report.verdict_for("olap")
    oltp = report.verdict_for("oltp")
    controller = report.controller
    return (
        table,
        report.config.rate_per_s,
        report.config.policy,
        round(report.completed_per_s, 3),
        report.shed,
        round(olap.p99_s, 4),
        round(oltp.p99_s, 4),
        report.slo_ok,
        controller.get("reconfigurations", 0),
        _converge_ticks(report, converge_after_s),
    )


def run(fast: bool = False) -> FigureResult:
    rates = FAST_LOAD_RATES if fast else LOAD_RATES
    duration = FAST_DURATION_S if fast else DURATION_S
    shift_duration = (
        FAST_SHIFT_DURATION_S if fast else SHIFT_DURATION_S
    )
    rate_cache: dict = {}

    result = FigureResult(
        figure_id="ext_service",
        title=(
            "Extension (Sec. VIII): open-loop query service — "
            "throughput and tail latency vs offered load, and "
            "adaptive re-convergence across a mix shift"
        ),
        headers=(
            "table", "rate_per_s", "policy", "completed_per_s",
            "shed", "p99_olap_s", "p99_oltp_s", "slo_ok",
            "reconfigs", "converge_ticks",
        ),
    )

    reports: dict[tuple[float, str], ServiceReport] = {}
    for rate in rates:
        for policy in POLICIES:
            config = ServiceConfig(
                profile="poisson",
                policy=policy,
                mix="olap",
                duration_s=duration,
                rate_per_s=rate,
                seed=SEED,
            )
            report = QueryService(
                config, rate_cache=rate_cache
            ).run()
            reports[(rate, policy)] = report
            result.add(*_row("load", report))

    top = max(rates)
    none_tp = reports[(top, "none")].completed_per_s
    static_tp = reports[(top, "static")].completed_per_s
    adaptive_tp = reports[(top, "adaptive")].completed_per_s
    result.notes.append(
        f"rate {top:g}/s: completed/s none={none_tp:.2f} "
        f"static={static_tp:.2f} adaptive={adaptive_tp:.2f} "
        f"(static/none = {static_tp / none_tp:.3f}x)"
    )

    shift_at = shift_duration / 2.0
    shift_config = ServiceConfig(
        profile="poisson",
        policy="adaptive",
        mix="shift",
        duration_s=shift_duration,
        rate_per_s=max(rates),
        seed=SEED,
        shift_at_s=shift_at,
    )
    shift_report = QueryService(
        shift_config, rate_cache=rate_cache
    ).run()
    result.add(*_row("shift", shift_report, converge_after_s=shift_at))
    post_shift = _converge_ticks(shift_report, shift_at)
    result.notes.append(
        f"mix shift at {shift_at:g}s: controller re-converged "
        f"{post_shift} control tick(s) after the shift "
        f"({shift_report.controller['reconfigurations']} "
        f"reconfigurations total)"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
