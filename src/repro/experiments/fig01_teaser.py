"""Fig. 1 — the paper's teaser.

Throughput of an OLTP query (queries/s) running (i) isolated, (ii)
concurrently with an OLAP column scan, and (iii) concurrently with the
scan restricted to 10 % of the LLC.  The partitioned configuration
recovers a large part of the isolated throughput — the paper's
headline picture.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import query1
from ..workloads.s4hana import oltp_query_13_columns
from .fig12_oltp import OLTP_CORES
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    oltp_profile = oltp_query_13_columns().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig1",
        title=(
            "Fig. 1: OLTP throughput — isolated, concurrent with OLAP "
            "scan, and concurrent with cache partitioning (p)"
        ),
        headers=("configuration", "oltp_queries_per_s",
                 "normalized_to_isolated"),
    )
    isolated = runner.experiment.isolated(
        oltp_profile, cores=OLTP_CORES
    )
    result.add("isolated", round(isolated.queries_per_s, 1), 1.0)

    labels = ("concurrent", "concurrent_partitioned")
    outcomes = runner.pair_batch(
        [
            PairRequest(
                scan_profile,
                oltp_profile,
                first_mask=scan_mask,
                second_cores=OLTP_CORES,
            )
            for scan_mask in (None, runner.polluting_mask())
        ]
    )
    for label, outcome in zip(labels, outcomes):
        oltp_result = outcome.results[oltp_profile.name]
        result.add(
            label,
            round(oltp_result.queries_per_s, 1),
            round(outcome.normalized[oltp_profile.name], 3),
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
