"""Fig. 9 — Query 1 (scan) concurrent with Query 2 (aggregation).

Three panels by dictionary size; in each, the group count varies and
cache partitioning is toggled (scan restricted to 10 % of the LLC, the
aggregation keeps 100 %).  Paper findings:

* 4 MiB dictionary: partitioning helps most at 10^5 groups (+20 % for
  the aggregation, +3 % for the scan); system LLC hit ratio rises
  0.78 -> 0.82, MPI improves 2.86e-3 -> 2.32e-3,
* 40 MiB dictionary: aggregation below 60 % unpartitioned; partitioning
  recovers up to +21 % (and up to +6 % for the scan),
* 400 MiB dictionary: both queries are bandwidth-bound; partitioning
  only helps 3-9 %.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import (
    DICT_4_MIB,
    DICT_40_MIB,
    DICT_400_MIB,
    GROUP_SIZES,
    query1,
    query2,
)
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest

PANELS = (
    ("9a", DICT_4_MIB),
    ("9b", DICT_40_MIB),
    ("9c", DICT_400_MIB),
)


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig9",
        title=(
            "Fig. 9: Query 1 (scan) || Query 2 (aggregation), "
            "partitioning off/on (scan -> 10% LLC)"
        ),
        headers=(
            "panel", "dict_mib", "groups", "partitioning",
            "scan_normalized", "agg_normalized",
            "system_llc_hit_ratio", "system_mpi",
        ),
    )
    group_sizes = GROUP_SIZES if not fast else (
        GROUP_SIZES[0], GROUP_SIZES[3], GROUP_SIZES[4]
    )
    # Phase 1: describe every pair measurement in nested-loop order.
    points = []
    requests = []
    for panel, distinct in PANELS:
        dict_mib = round(
            runner.calibration.dictionary_bytes(distinct) / (1 << 20)
        )
        for groups in group_sizes:
            agg_profile = query2(distinct, groups).profile(
                runner.workers, runner.calibration
            )
            for label, scan_mask in (
                ("off", None),
                ("on", runner.polluting_mask()),
            ):
                points.append((panel, dict_mib, groups, label, agg_profile))
                requests.append(
                    PairRequest(
                        scan_profile, agg_profile, first_mask=scan_mask
                    )
                )

    # Phase 2: evaluate the batch (pool fan-out when active) and
    # assemble rows in the same order.
    outcomes = runner.pair_batch(requests)
    for (panel, dict_mib, groups, label, agg_profile), outcome in zip(
        points, outcomes
    ):
        result.add(
            panel,
            dict_mib,
            groups,
            label,
            round(outcome.normalized[scan_profile.name], 3),
            round(outcome.normalized[agg_profile.name], 3),
            round(outcome.counters.llc_hit_ratio, 3),
            round(outcome.counters.misses_per_instruction, 5),
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
