"""Extension experiment: adversarial tenants vs the contention defense.

The fleet extensions so far assume tenants are merely *greedy*: a
batch scan pollutes the LLC because that is what scans do, and the
partitioning policies price that in.  An **adversarial** tenant is
different — it shapes its traffic to defeat the shared cache on
purpose (an LLC thrasher sweeping many times the cache, a memory-bus
saturator, an occupancy probe that squats on the whole LLC).  Left
alone it collapses the victims' hit ratios fleet-wide.

The defense layer (:mod:`repro.defense`) answers with the same
counters the stack already records:

1. **detect** — per judgement window, classify every tenant group
   from its model-derived per-request signals (online cache-usage
   class, DRAM bytes, LLC occupancy, service demand) and convict a
   group after ``convict_windows`` consecutive suspect windows,
2. **jail** — reprogram CAT so the convicted group runs inside a
   minimal one-way partition on every node (``--defense jail``),
3. **evict** — additionally re-route the convicted group onto one
   sacrificial node so the rest of the fleet never sees it
   (``--defense evict``),
4. **release** — lift the jail after ``release_windows`` consecutive
   clean windows, so a reformed tenant regains the shared cache.

The experiment runs one hash fleet four ways with byte-identical
victim arrivals (same seed, same streams): a clean control with the
defense armed (any conviction is a false positive), the attack with
the defense off, and the attack under both defense modes.  The notes
assert the acceptance criteria: zero false positives on the control,
convictions matching the ground-truth attack labels, and victim fleet
p99 improving under jail vs off.
"""

from __future__ import annotations

from ..cluster import Cluster, ClusterConfig, ClusterReport
from ..defense import AttackSpec
from .reporting import format_table
from .runner import FigureResult

SEED = 0xDEF0
NODES = 4
RATE_PER_S = 10.0
DURATION_S = 10.0
FAST_DURATION_S = 6.0
ATTACK_START_S = 1.0
ATTACK_RATE_PER_S = 20.0


def _row(label: str, report: ClusterReport) -> tuple:
    defense = report.defense
    olap = report.fleet_verdict_for("olap")
    oltp = report.fleet_verdict_for("oltp")
    convictions = (
        len(defense["convictions"]) if defense["enabled"] else 0
    )
    false_positives = (
        len(defense["false_positives"]) if defense["enabled"] else 0
    )
    jail_s = (
        round(sum(defense["jail_seconds"].values()), 2)
        if defense["enabled"] else 0.0
    )
    return (
        label,
        defense["mode"],
        len(defense["attacks"]),
        sum(defense["attack_arrivals"].values()),
        report.completed,
        convictions,
        false_positives,
        jail_s,
        round(olap.p99_s, 4),
        round(oltp.p99_s, 4),
        report.slo_ok,
    )


def _config(duration: float, **overrides) -> ClusterConfig:
    base = dict(
        nodes=NODES,
        router="hash",
        profile="poisson",
        policy="none",
        mix="olap",
        duration_s=duration,
        rate_per_s=RATE_PER_S,
        seed=SEED,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def run(fast: bool = False) -> FigureResult:
    duration = FAST_DURATION_S if fast else DURATION_S
    attacks = (
        AttackSpec(
            profile="thrash",
            start_s=ATTACK_START_S,
            rate_per_s=ATTACK_RATE_PER_S,
        ),
    )

    result = FigureResult(
        figure_id="ext_defense",
        title=(
            "Extension (Sec. VIII): LLC-thrashing adversary vs "
            "online contention detection with CAT quarantine"
        ),
        headers=(
            "fleet", "defense", "attacks", "attack_arrivals",
            "completed", "convictions", "false_pos", "jail_s",
            "fleet_p99_olap_s", "fleet_p99_oltp_s", "slo_ok",
        ),
    )

    # Clean control: defense armed, nobody attacking.  Every
    # conviction here would be a false positive against an innocent
    # tenant group.
    control = Cluster(_config(duration, defense="jail")).run()
    result.add(*_row("control", control))

    undefended = Cluster(_config(duration, attacks=attacks)).run()
    result.add(*_row("undefended", undefended))

    jailed = Cluster(
        _config(duration, attacks=attacks, defense="jail")
    ).run()
    result.add(*_row("jail", jailed))

    evicted = Cluster(
        _config(duration, attacks=attacks, defense="evict")
    ).run()
    result.add(*_row("evict", evicted))

    control_convictions = len(control.defense["convictions"])
    result.notes.append(
        f"clean control: convictions={control_convictions} — zero "
        f"false positives on innocent tenant groups: "
        f"{'yes' if control_convictions == 0 else 'NO'}"
    )
    for label, report in (("jail", jailed), ("evict", evicted)):
        defense = report.defense
        exact = (
            tuple(defense["convicted_groups"])
            == tuple(defense["ground_truth"])
            and not defense["false_positives"]
            and not defense["missed"]
        )
        result.notes.append(
            f"{label}: convicted={list(defense['convicted_groups'])} "
            f"ground-truth={list(defense['ground_truth'])} "
            f"false-positives={len(defense['false_positives'])} "
            f"missed={len(defense['missed'])} — convictions match "
            f"the attack labels exactly: {'yes' if exact else 'NO'}"
        )
    off_p99 = undefended.fleet_verdict_for("olap").p99_s
    jail_p99 = jailed.fleet_verdict_for("olap").p99_s
    evict_p99 = evicted.fleet_verdict_for("olap").p99_s
    result.notes.append(
        f"victim fleet OLAP p99: undefended={off_p99:.3f}s "
        f"jail={jail_p99:.3f}s evict={evict_p99:.3f}s — defense "
        f"improves the victims: "
        f"{'yes' if jail_p99 < off_p99 else 'NO'}"
    )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
