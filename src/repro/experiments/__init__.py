"""Experiment harness: one module per paper figure.

Every module exposes ``run(spec=None, fast=False) -> FigureResult`` and
a ``main()`` that prints the figure's rows as an aligned text table.
``FigureResult`` rows are plain tuples so benchmarks and tests can
assert on them directly.
"""

from .runner import ExperimentRunner, FigureResult
from .reporting import format_table

__all__ = ["ExperimentRunner", "FigureResult", "format_table"]
