"""Extension experiment: cache-aware co-scheduling (paper Sec. VIII).

Evaluates the paper's closing proposal on a mixed batch: two polluting
scans, two cache-sensitive aggregations and two adaptive joins
(resolved per instance).  Reports the batch makespan under

* naive FCFS co-scheduling (arrival order pairs a scan with an
  aggregation twice — the worst case the paper warns about), and
* cache-aware co-scheduling (polluters co-run with polluters;
  sensitive queries are protected).
"""

from __future__ import annotations

from ..config import SystemSpec
from ..core.scheduling import CacheAwareScheduler, ScheduledQuery
from ..operators.base import CacheUsage
from ..operators.join import classify_join
from ..workloads.microbench import DICT_40_MIB, query1, query2, query3
from .reporting import format_table
from .runner import FigureResult


def _batch(spec: SystemSpec, workers: int) -> list[ScheduledQuery]:
    """An arrival-ordered mixed batch (scan, agg, scan, agg, join x2)."""
    join_small = query3(10**6)
    join_big = query3(10**8)
    return [
        ScheduledQuery("scan_1", query1().profile(name="scan_1"),
                       CacheUsage.POLLUTING),
        ScheduledQuery(
            "agg_1",
            query2(DICT_40_MIB, 10**4).profile(workers, name="agg_1"),
            CacheUsage.SENSITIVE,
        ),
        ScheduledQuery("scan_2", query1().profile(name="scan_2"),
                       CacheUsage.POLLUTING),
        ScheduledQuery(
            "agg_2",
            query2(DICT_40_MIB, 10**5).profile(workers, name="agg_2"),
            CacheUsage.SENSITIVE,
        ),
        ScheduledQuery(
            "join_small",
            join_small.profile(workers, name="join_small"),
            classify_join(join_small.bit_vector_bytes(), spec),
        ),
        ScheduledQuery(
            "join_big",
            join_big.profile(workers, name="join_big"),
            classify_join(join_big.bit_vector_bytes(), spec),
        ),
    ]


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    spec = spec if spec is not None else SystemSpec()
    scheduler = CacheAwareScheduler(spec)
    batch = _batch(spec, spec.cores)
    outcomes = scheduler.compare(batch)

    result = FigureResult(
        figure_id="ext_sched",
        title=(
            "Extension (Sec. VIII): naive vs cache-aware co-scheduling "
            "of a mixed batch (makespan, lower is better)"
        ),
        headers=("strategy", "phase", "queries", "partitioned",
                 "phase_seconds"),
    )
    for strategy, outcome in outcomes.items():
        for index, phase in enumerate(outcome.phases):
            result.add(
                strategy,
                index,
                "+".join(q.name for q in phase.queries),
                phase.partitioned,
                round(phase.duration_s, 4),
            )
    naive = outcomes["naive"].makespan_s
    aware = outcomes["cache_aware"].makespan_s
    result.notes.append(
        f"makespan: naive={naive:.3f}s cache_aware={aware:.3f}s "
        f"(speedup {naive / aware:.2f}x)"
    )
    return result


def makespans(result: FigureResult) -> dict[str, float]:
    """Total makespan per strategy (for tests/benchmarks)."""
    totals: dict[str, float] = {}
    for strategy, _, _, _, seconds in result.rows:
        totals[strategy] = totals.get(strategy, 0.0) + seconds
    return totals


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    for note in result.notes:
        print(f"note: {note}")
    return result


if __name__ == "__main__":
    main()
