"""Fig. 12 — Query 1 (scan) concurrent with the S/4HANA OLTP query.

Two variants: the modified OLTP query projecting the 13 largest-
dictionary columns (panel a) and the unmodified query projecting 6
smaller-dictionary columns (panel b).  Paper findings: concurrent
execution drops the OLTP query to 66 % / 68 % while the scan barely
suffers (95-96 %); restricting the scan to 10 % of the LLC recovers
+13 % / +9 % for the OLTP query.

Also reproduces the paper's additional experiment (Sec. VI-E): sweeping
the projected-column count from 2 to 13, partitioning gains grow from
~8 % to ~13 %.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import query1
from ..workloads.s4hana import (
    oltp_query_13_columns,
    oltp_query_6_columns,
    oltp_query_n_columns,
)
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult

OLTP_CORES = 2


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig12",
        title=(
            "Fig. 12: Query 1 (scan) || S/4HANA OLTP query, "
            "partitioning off/on (scan -> 10% LLC)"
        ),
        headers=(
            "panel", "projected_columns", "partitioning",
            "oltp_normalized", "scan_normalized",
        ),
    )
    panels = (
        ("12a", oltp_query_13_columns()),
        ("12b", oltp_query_6_columns()),
    )
    for panel, oltp in panels:
        oltp_profile = oltp.profile(runner.calibration)
        for label, scan_mask in (
            ("off", None),
            ("on", runner.polluting_mask()),
        ):
            outcome = runner.pair(
                scan_profile,
                oltp_profile,
                first_mask=scan_mask,
                second_cores=OLTP_CORES,
            )
            result.add(
                panel,
                oltp.projected_columns,
                label,
                round(outcome.normalized[oltp_profile.name], 3),
                round(outcome.normalized[scan_profile.name], 3),
            )

    # Additional experiment: projected-column sweep (2..13 columns).
    sweep_columns = (2, 4, 7, 10, 13) if not fast else (2, 13)
    for num_columns in sweep_columns:
        oltp = oltp_query_n_columns(num_columns)
        oltp_profile = oltp.profile(runner.calibration)
        for label, scan_mask in (
            ("off", None),
            ("on", runner.polluting_mask()),
        ):
            outcome = runner.pair(
                scan_profile,
                oltp_profile,
                first_mask=scan_mask,
                second_cores=OLTP_CORES,
            )
            result.add(
                "sweep",
                num_columns,
                label,
                round(outcome.normalized[oltp_profile.name], 3),
                round(outcome.normalized[scan_profile.name], 3),
            )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
