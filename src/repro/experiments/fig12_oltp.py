"""Fig. 12 — Query 1 (scan) concurrent with the S/4HANA OLTP query.

Two variants: the modified OLTP query projecting the 13 largest-
dictionary columns (panel a) and the unmodified query projecting 6
smaller-dictionary columns (panel b).  Paper findings: concurrent
execution drops the OLTP query to 66 % / 68 % while the scan barely
suffers (95-96 %); restricting the scan to 10 % of the LLC recovers
+13 % / +9 % for the OLTP query.

Also reproduces the paper's additional experiment (Sec. VI-E): sweeping
the projected-column count from 2 to 13, partitioning gains grow from
~8 % to ~13 %.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import query1
from ..workloads.s4hana import (
    oltp_query_13_columns,
    oltp_query_6_columns,
    oltp_query_n_columns,
)
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult, PairRequest

OLTP_CORES = 2


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    scan_profile = query1().profile(runner.calibration)
    result = FigureResult(
        figure_id="fig12",
        title=(
            "Fig. 12: Query 1 (scan) || S/4HANA OLTP query, "
            "partitioning off/on (scan -> 10% LLC)"
        ),
        headers=(
            "panel", "projected_columns", "partitioning",
            "oltp_normalized", "scan_normalized",
        ),
    )
    panels = (
        ("12a", oltp_query_13_columns()),
        ("12b", oltp_query_6_columns()),
    )
    # Phase 1: panel pairs, then the projected-column sweep (paper
    # Sec. VI-E), all described in sequential order.
    points = []
    requests = []
    for panel, oltp in panels:
        oltp_profile = oltp.profile(runner.calibration)
        for label, scan_mask in (
            ("off", None),
            ("on", runner.polluting_mask()),
        ):
            points.append(
                (panel, oltp.projected_columns, label, oltp_profile)
            )
            requests.append(
                PairRequest(
                    scan_profile,
                    oltp_profile,
                    first_mask=scan_mask,
                    second_cores=OLTP_CORES,
                )
            )
    sweep_columns = (2, 4, 7, 10, 13) if not fast else (2, 13)
    for num_columns in sweep_columns:
        oltp = oltp_query_n_columns(num_columns)
        oltp_profile = oltp.profile(runner.calibration)
        for label, scan_mask in (
            ("off", None),
            ("on", runner.polluting_mask()),
        ):
            points.append(
                ("sweep", num_columns, label, oltp_profile)
            )
            requests.append(
                PairRequest(
                    scan_profile,
                    oltp_profile,
                    first_mask=scan_mask,
                    second_cores=OLTP_CORES,
                )
            )

    # Phase 2: evaluate and assemble in order.
    outcomes = runner.pair_batch(requests)
    for (panel, columns, label, oltp_profile), outcome in zip(
        points, outcomes
    ):
        result.add(
            panel,
            columns,
            label,
            round(outcome.normalized[oltp_profile.name], 3),
            round(outcome.normalized[scan_profile.name], 3),
        )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
