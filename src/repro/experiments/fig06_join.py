"""Fig. 6 — Query 3 (foreign-key join) vs LLC size.

Sweeps the primary-key cardinality 10^6..10^9 (bit vectors of 0.125 MB
to 125 MB).  Paper finding: throughput degrades only 5-14 % except for
10^8 keys, where the 12.5 MB bit vector is comparable to the LLC and
degradation reaches ~33 %.
"""

from __future__ import annotations

from ..config import SystemSpec
from ..workloads.microbench import PRIMARY_KEY_SIZES, query3
from .reporting import format_table
from .runner import ExperimentRunner, FigureResult


def run(spec: SystemSpec | None = None, fast: bool = False) -> FigureResult:
    runner = ExperimentRunner(spec)
    result = FigureResult(
        figure_id="fig6",
        title=(
            "Fig. 6: Query 3 (foreign key join) normalized throughput "
            "at varying LLC sizes"
        ),
        headers=("primary_keys", "bit_vector_mb", "cache_mib", "ways",
                 "normalized_throughput"),
    )
    ways_sequence = runner.sweep_ways(fast)

    # Phase 1: one batch covering every key count's baseline + sweep,
    # in sequential solve order.
    combos = []
    requests: list[tuple] = []
    for pk_rows in PRIMARY_KEY_SIZES:
        config = query3(pk_rows)
        profile = config.profile(runner.workers, runner.calibration)
        vector_mb = config.bit_vector_bytes(runner.calibration) / 1e6
        combos.append((pk_rows, vector_mb))
        requests.append((profile, None, None))
        requests.extend(
            (profile, runner.mask_for_ways(ways), None)
            for ways in ways_sequence
        )

    # Phase 2: evaluate (pool fan-out when active), assemble in order.
    outcomes = iter(runner.experiment.isolated_batch(requests))
    for pk_rows, vector_mb in combos:
        baseline = next(outcomes)
        for ways in ways_sequence:
            point = next(outcomes)
            result.add(
                pk_rows,
                round(vector_mb, 3),
                round(runner.cache_mib(ways), 2),
                ways,
                round(
                    point.throughput_tuples_per_s
                    / baseline.throughput_tuples_per_s,
                    3,
                ),
            )
    return result


def main(fast: bool = False) -> FigureResult:
    result = run(fast=fast)
    print(format_table(result.headers, result.rows, title=result.title))
    return result


if __name__ == "__main__":
    main()
