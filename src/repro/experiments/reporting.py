"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    >>> print(format_table(("a", "b"), [(1, 2.5)]))
    a  b
    -  -----
    1  2.500
    """
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
