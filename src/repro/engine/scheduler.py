"""Job scheduler: dispatch, context switches, CAT programming.

Runs job graphs on worker pools.  For each dispatched job the scheduler

1. resolves the job's CUID to a bitmask and (through the
   :class:`~repro.engine.cache_control.CacheController`) associates the
   worker thread with it — skipping the kernel call when the thread
   already has that mask,
2. simulates the kernel context switch onto the worker's core, which
   programs the core's CLOS from the thread's resctrl group
   (paper Sec. V-A),
3. executes the job.

OLTP jobs are routed to the dedicated pool and never restricted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError
from ..obs import runtime
from .cache_control import CacheController
from .job import Job, JobGraph
from .threadpool import JobWorker, JobWorkerPool


@dataclass
class DispatchRecord:
    """Audit record of one job dispatch (inspected by tests)."""

    job_name: str
    worker_tid: int
    core: int
    mask: int
    pool: str


@dataclass
class JobScheduler:
    """Binds job graphs to worker pools with CAT-aware dispatch."""

    controller: CacheController
    olap_pool: JobWorkerPool
    oltp_pool: JobWorkerPool
    dispatch_log: list[DispatchRecord] = field(default_factory=list)

    def run_graph(self, graph: JobGraph, pool: str = "olap") -> list[object]:
        """Execute a job graph in dependency order; returns results."""
        results = []
        for job in graph.topological_order():
            results.append(self.run_job(job, pool=pool))
        return results

    def run_job(self, job: Job, pool: str = "olap") -> object:
        """Dispatch one job to a worker of the chosen pool."""
        worker = self._pool(pool).next_worker()
        return self._execute_on(job, worker)

    def _pool(self, pool: str) -> JobWorkerPool:
        if pool == "olap":
            return self.olap_pool
        if pool == "oltp":
            return self.oltp_pool
        raise SchedulerError(f"unknown pool {pool!r}")

    def _execute_on(self, job: Job, worker: JobWorker) -> object:
        if worker.pool == "oltp":
            # Dedicated OLTP pool: always full cache, no kernel calls
            # (paper Sec. V-C).
            mask = self.controller.thread_mask(worker.tid)
        else:
            mask = self.controller.prepare_thread(worker.tid, job)
        # Kernel context switch: the scheduler programs the core's CLOS
        # from the thread's resctrl group.
        filesystem = self.controller.resctrl.filesystem
        filesystem.on_context_switch(worker.core, worker.tid)
        self.dispatch_log.append(
            DispatchRecord(job.name, worker.tid, worker.core, mask,
                           worker.pool)
        )
        worker.jobs_run += 1
        metrics = runtime.metrics
        metrics.counter("scheduler.dispatches").inc()
        metrics.counter(f"scheduler.jobs.{job.cuid.value}").inc()
        metrics.counter(f"scheduler.pool.{worker.pool}.jobs").inc()
        with runtime.tracer.span("job", pool=worker.pool):
            return job.run()
