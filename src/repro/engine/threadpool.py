"""Job worker pools.

The engine owns a pool of *job workers* — one per physical core, like
the paper's prototype — plus a smaller dedicated pool for short-running
OLTP statements.  The OLTP pool's threads always keep full cache access
(paper Sec. V-C: "that thread pool always has access to the entire
cache"), so OLTP latency never pays the kernel-association cost.

Execution is deterministic (sequential in program order) because the
repository's goal is reproducible simulation, but the pool preserves the
real engine's structure: worker identity, thread ids, core binding and
per-worker statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError


@dataclass
class JobWorker:
    """One worker thread: an OS tid pinned to a core."""

    tid: int
    core: int
    pool: str
    jobs_run: int = 0


@dataclass
class JobWorkerPool:
    """A named set of workers round-robin-dispatching jobs."""

    name: str
    workers: list[JobWorker] = field(default_factory=list)
    _next: int = 0

    @classmethod
    def create(
        cls, name: str, cores: list[int], tid_base: int
    ) -> "JobWorkerPool":
        """One worker per core, with consecutive thread ids."""
        if not cores:
            raise SchedulerError(f"pool {name!r} needs at least one core")
        if tid_base < 0:
            raise SchedulerError(f"tid_base must be >= 0: {tid_base}")
        workers = [
            JobWorker(tid=tid_base + index, core=core, pool=name)
            for index, core in enumerate(cores)
        ]
        return cls(name=name, workers=workers)

    def next_worker(self) -> JobWorker:
        """Round-robin worker selection."""
        if not self.workers:
            raise SchedulerError(f"pool {self.name!r} has no workers")
        worker = self.workers[self._next % len(self.workers)]
        self._next += 1
        return worker

    def worker_by_tid(self, tid: int) -> JobWorker:
        for worker in self.workers:
            if worker.tid == tid:
                return worker
        raise SchedulerError(f"pool {self.name!r} has no worker tid {tid}")

    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def tids(self) -> list[int]:
        return [worker.tid for worker in self.workers]
