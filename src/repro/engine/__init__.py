"""Execution engine (the SAP HANA analogue).

Implements the integration layer the paper contributes (Sec. V-C):
*jobs* encapsulate operators, a pool of *job workers* executes them, and
every job carries a *cache usage identifier* (CUID).  When cache
partitioning is enabled, the engine maps the CUID to a CAT bitmask and
— only when the worker's current bitmask differs — asks the (emulated)
kernel to re-associate the worker thread, exactly mirroring the paper's
compare-before-set optimisation.  Short-running OLTP statements run in
a dedicated pool that always keeps full cache access.
"""

from .cache_control import CacheControlStats, CuidPolicy, CacheController
from .database import Database
from .job import Job, JobGraph
from .scheduler import JobScheduler
from .threadpool import JobWorker, JobWorkerPool

__all__ = [
    "CacheControlStats",
    "CacheController",
    "CuidPolicy",
    "Database",
    "Job",
    "JobGraph",
    "JobScheduler",
    "JobWorker",
    "JobWorkerPool",
]
