"""CUID-to-bitmask policy and the compare-before-set controller.

This is the core of the paper's integration (Sec. V-C):

* the engine maps each job's *cache usage identifier* to a capacity
  bitmask — ``0x3`` (10 %) for polluting jobs, the full mask for
  sensitive jobs, and for adaptive jobs either ``0x3`` or ``0xfff``
  (60 %) depending on the operator's data (bit-vector size heuristic),
* before running a job, the worker thread is associated with the
  bitmask via the kernel — but *only if it differs* from the thread's
  current bitmask, because each association costs a syscall (< 100 us
  measured in the paper).  The elision statistics are exposed so tests
  and benchmarks can quantify the optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemSpec
from ..errors import SchedulerError
from ..hardware.cat import mask_from_fraction
from ..obs import runtime
from ..operators.base import CacheUsage
from ..operators.join import ForeignKeyJoin
from ..resctrl.interface import ResctrlInterface
from .job import Job


@dataclass(frozen=True)
class CuidPolicy:
    """Bitmask per CUID category — the paper's scheme (Sec. V-B/V-C)."""

    polluting_mask: int
    sensitive_mask: int
    adaptive_sensitive_mask: int

    @classmethod
    def paper_default(cls, spec: SystemSpec) -> "CuidPolicy":
        """10 % for polluters, 100 % for sensitive, 60 % for adaptive-
        sensitive joins."""
        return cls(
            polluting_mask=mask_from_fraction(spec, 0.10),
            sensitive_mask=spec.full_mask,
            adaptive_sensitive_mask=mask_from_fraction(spec, 0.60),
        )

    def mask_for(self, job: Job) -> int:
        """Resolve a job's CUID (and data, for adaptive jobs) to a mask."""
        if job.cuid is CacheUsage.POLLUTING:
            return self.polluting_mask
        if job.cuid is CacheUsage.SENSITIVE:
            return self.sensitive_mask
        # Adaptive: resolve per operator instance.
        operator = job.operator
        if isinstance(operator, ForeignKeyJoin):
            resolved = operator.resolve_usage()
            if resolved is CacheUsage.POLLUTING:
                return self.polluting_mask
            return self.adaptive_sensitive_mask
        # Unknown adaptive operators fall back to the regression-safe
        # default: full access.
        return self.sensitive_mask


@dataclass
class CacheControlStats:
    """Associations requested vs. actually sent to the kernel.

    ``restores`` counts the kernel calls issued by :meth:`disable` when
    it returns restricted threads to the full mask; restores are *not*
    job associations and do not contribute to the elision rate.
    """

    associations_requested: int = 0
    kernel_calls: int = 0
    restores: int = 0

    @property
    def elided_calls(self) -> int:
        return self.associations_requested - self.kernel_calls

    @property
    def elision_rate(self) -> float:
        """Fraction of requested associations that needed no syscall."""
        if not self.associations_requested:
            return 0.0
        return self.elided_calls / self.associations_requested


class CacheController:
    """Applies the CUID policy to worker threads, eliding no-op calls."""

    def __init__(
        self,
        spec: SystemSpec,
        resctrl: ResctrlInterface,
        policy: CuidPolicy | None = None,
        enabled: bool = False,
        compare_before_set: bool = True,
    ) -> None:
        self._spec = spec
        self._resctrl = resctrl
        self._policy = policy if policy is not None else (
            CuidPolicy.paper_default(spec)
        )
        self._enabled = enabled
        self._compare_before_set = compare_before_set
        self._thread_masks: dict[int, int] = {}
        self.stats = CacheControlStats()

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def resctrl(self) -> ResctrlInterface:
        return self._resctrl

    @property
    def policy(self) -> CuidPolicy:
        return self._policy

    def enable(self, policy: CuidPolicy | None = None) -> None:
        if policy is not None:
            self._policy = policy
        self._enabled = True

    def disable(self) -> None:
        """Back to unpartitioned: every thread regains the full mask.

        Restores are maintenance, not job associations: they are
        tracked in ``stats.restores`` and leave
        ``stats.associations_requested`` (and therefore the elision
        rate reported by ``bench_overhead.py``) untouched.
        """
        self._enabled = False
        full = self._spec.full_mask
        for tid in list(self._thread_masks):
            if self._thread_masks[tid] == full:
                continue
            self._resctrl.assign_thread(tid, full)
            self._thread_masks[tid] = full
            self.stats.restores += 1
            runtime.metrics.counter("cache_control.restores").inc()

    def prepare_thread(self, tid: int, job: Job) -> int:
        """Associate a worker thread with the job's bitmask.

        Returns the effective mask.  When partitioning is disabled every
        job runs with full cache access and no kernel calls are made
        (beyond restoring a previously restricted thread).
        """
        if tid < 0:
            raise SchedulerError(f"thread id must be >= 0: {tid}")
        mask = (
            self._policy.mask_for(job)
            if self._enabled
            else self._spec.full_mask
        )
        self._apply(tid, mask)
        return mask

    def associate(self, tid: int, mask: int) -> int:
        """Associate a thread with an explicit bitmask (counted).

        Used when the caller has already resolved the mask (e.g. an
        experiment replaying a dispatch wave) rather than deriving it
        from a job's CUID.  Same compare-before-set semantics and
        statistics as :meth:`prepare_thread`.
        """
        if tid < 0:
            raise SchedulerError(f"thread id must be >= 0: {tid}")
        self._apply(tid, mask)
        return mask

    def _apply(self, tid: int, mask: int) -> None:
        self.stats.associations_requested += 1
        metrics = runtime.metrics
        metrics.counter("cache_control.associations_requested").inc()
        current = self._thread_masks.get(tid, self._spec.full_mask)
        if self._compare_before_set and current == mask:
            metrics.counter("cache_control.elided_calls").inc()
            return
        self._resctrl.assign_thread(tid, mask)
        self._thread_masks[tid] = mask
        self.stats.kernel_calls += 1
        metrics.counter("cache_control.kernel_calls").inc()

    def thread_mask(self, tid: int) -> int:
        """The bitmask the controller last applied to a thread."""
        return self._thread_masks.get(tid, self._spec.full_mask)
