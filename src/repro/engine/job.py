"""Jobs and job graphs.

A *job* encapsulates (at most) one operator; a parallelised operator is
a group of jobs (paper Sec. V-C).  Jobs are annotated with the cache
usage identifier of their operator so the scheduler can program the CAT
bitmask before running them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SchedulerError
from ..operators.base import CacheUsage, PhysicalOperator

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One schedulable unit of work.

    Either wraps a :class:`PhysicalOperator` (the normal case) or a bare
    callable (for engine-internal work).  ``cuid`` defaults to the
    operator's classification; jobs without an operator default to
    SENSITIVE — the paper's regression-safe default (Sec. V-C).
    """

    name: str
    operator: Optional[PhysicalOperator] = None
    callable: Optional[Callable[[], object]] = None
    cuid: Optional[CacheUsage] = None
    job_id: int = field(default_factory=lambda: next(_job_ids))
    result: object = None
    completed: bool = False

    def __post_init__(self) -> None:
        if (self.operator is None) == (self.callable is None):
            raise SchedulerError(
                f"job {self.name!r} needs exactly one of operator/callable"
            )
        if self.cuid is None:
            if self.operator is not None:
                self.cuid = self.operator.cache_usage()
            else:
                self.cuid = CacheUsage.SENSITIVE

    def run(self) -> object:
        """Execute the job's payload and record its result."""
        if self.operator is not None:
            self.result = self.operator.execute()
        else:
            self.result = self.callable()
        self.completed = True
        return self.result


@dataclass
class JobGraph:
    """Jobs plus dependency edges (dependents run after prerequisites)."""

    jobs: list[Job] = field(default_factory=list)
    _edges: dict[int, set[int]] = field(default_factory=dict)

    def add(self, job: Job, after: list[Job] | None = None) -> Job:
        """Add a job, optionally depending on earlier jobs."""
        known = {existing.job_id for existing in self.jobs}
        if job.job_id in known:
            raise SchedulerError(f"job {job.name!r} already in graph")
        for prerequisite in after or []:
            if prerequisite.job_id not in known:
                raise SchedulerError(
                    f"dependency {prerequisite.name!r} not in graph"
                )
            self._edges.setdefault(job.job_id, set()).add(
                prerequisite.job_id
            )
        self.jobs.append(job)
        return job

    def topological_order(self) -> list[Job]:
        """Jobs in a valid execution order; raises on cycles."""
        by_id = {job.job_id: job for job in self.jobs}
        in_degree = {job.job_id: 0 for job in self.jobs}
        dependents: dict[int, list[int]] = {
            job.job_id: [] for job in self.jobs
        }
        for job_id, prerequisites in self._edges.items():
            in_degree[job_id] = len(prerequisites)
            for prerequisite in prerequisites:
                dependents[prerequisite].append(job_id)
        ready = [job_id for job_id, deg in in_degree.items() if deg == 0]
        order: list[Job] = []
        while ready:
            ready.sort()  # determinism
            current = ready.pop(0)
            order.append(by_id[current])
            for dependent in dependents[current]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.jobs):
            raise SchedulerError("job graph contains a cycle")
        return order
