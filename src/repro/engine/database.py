"""Database facade.

The user-visible entry point: DDL, bulk load, SQL execution through the
CAT-aware engine, and the switch that enables the paper's cache
partitioning.  Wires together every substrate: column store, SQL front
end, job scheduler, cache controller, emulated resctrl and the
simulated CAT hardware.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import SystemSpec
from ..errors import SqlPlanError, StorageError
from ..hardware.cat import CatController
from ..model.calibration import DEFAULT_CALIBRATION, Calibration
from ..resctrl.filesystem import ResctrlFilesystem
from ..resctrl.interface import ResctrlInterface
from ..sql.ast import CreateTable, Select
from ..sql.parser import parse
from ..sql.planner import PlannedQuery, Planner
from ..storage.table import ColumnTable, Schema, SchemaColumn
from .cache_control import CacheController, CuidPolicy
from .job import Job
from .scheduler import JobScheduler
from .threadpool import JobWorkerPool


class Database:
    """An in-memory column-store DBMS with CAT-integrated execution.

    Example::

        db = Database()
        db.execute("CREATE COLUMN TABLE A ( X INT )")
        db.load("A", {"X": values})
        db.enable_cache_partitioning()
        count = db.execute("SELECT COUNT(*) FROM A WHERE A.X > ?", [500])
    """

    def __init__(
        self,
        spec: SystemSpec | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        oltp_cores: int = 2,
    ) -> None:
        self.spec = spec if spec is not None else SystemSpec()
        self.calibration = calibration
        if not 1 <= oltp_cores < self.spec.cores:
            raise StorageError(
                f"oltp_cores must be in [1, {self.spec.cores}): {oltp_cores}"
            )
        self.cat = CatController(self.spec)
        self.resctrl_fs = ResctrlFilesystem(self.cat)
        self.resctrl = ResctrlInterface(self.resctrl_fs)
        self.controller = CacheController(self.spec, self.resctrl)

        olap_cores = list(range(self.spec.cores - oltp_cores))
        oltp_core_ids = list(
            range(self.spec.cores - oltp_cores, self.spec.cores)
        )
        self.scheduler = JobScheduler(
            controller=self.controller,
            olap_pool=JobWorkerPool.create("olap", olap_cores, tid_base=1000),
            oltp_pool=JobWorkerPool.create(
                "oltp", oltp_core_ids, tid_base=9000
            ),
        )
        self.tables: dict[str, ColumnTable] = {}

    # ------------------------------------------------------------------
    # cache partitioning switch (the paper's feature)
    # ------------------------------------------------------------------

    def enable_cache_partitioning(
        self, policy: CuidPolicy | None = None
    ) -> None:
        """Turn on CUID-based CAT partitioning (paper Sec. V-C)."""
        self.controller.enable(policy)

    def disable_cache_partitioning(self) -> None:
        self.controller.disable()

    @property
    def cache_partitioning_enabled(self) -> bool:
        return self.controller.enabled

    # ------------------------------------------------------------------
    # DDL / load
    # ------------------------------------------------------------------

    def create_table(self, schema: Schema) -> ColumnTable:
        if schema.table_name in self.tables:
            raise StorageError(
                f"table {schema.table_name!r} already exists"
            )
        table = ColumnTable(schema)
        self.tables[schema.table_name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise StorageError(f"no such table: {name!r}")
        del self.tables[name]

    def load(self, table_name: str, data: dict[str, np.ndarray]) -> None:
        """Bulk-load a table created earlier."""
        try:
            table = self.tables[table_name]
        except KeyError:
            raise StorageError(f"no such table: {table_name!r}") from None
        table.load(data)

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()):
        """Parse, plan and run one SQL statement.

        DDL returns the created :class:`ColumnTable`; queries return the
        operator's result object (scan/join counts, aggregation rows,
        projected columns).
        """
        statement = parse(sql)
        if isinstance(statement, CreateTable):
            return self._execute_create(statement)
        return self._execute_select(statement, params)

    def explain(self, sql: str, params: Sequence[object] = ()) -> str:
        """Plan a query and describe the chosen physical operator."""
        statement = parse(sql)
        if isinstance(statement, CreateTable):
            return f"CreateTable({statement.name})"
        planned = self._plan(statement, params)
        mask = self.controller.policy.mask_for(
            Job(planned.root.name, operator=planned.root)
        )
        partitioned = (
            f", mask={mask:#x}" if self.cache_partitioning_enabled
            else ""
        )
        return f"{planned.description} [kind={planned.kind}{partitioned}]"

    def _execute_create(self, statement: CreateTable) -> ColumnTable:
        columns = tuple(
            SchemaColumn(
                column.name,
                column.data_type,
                primary_key=(column.name == statement.primary_key),
            )
            for column in statement.columns
        )
        return self.create_table(Schema(statement.name, columns))

    def _plan(
        self, statement: Select, params: Sequence[object]
    ) -> PlannedQuery:
        planner = Planner(
            self.tables, spec=self.spec, calibration=self.calibration
        )
        return planner.plan(statement, params)

    def _execute_select(self, statement: Select, params: Sequence[object]):
        planned = self._plan(statement, params)
        pool = "oltp" if planned.kind == "point_select" else "olap"
        job = Job(planned.root.name, operator=planned.root)
        return self.scheduler.run_job(job, pool=pool)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def table(self, name: str) -> ColumnTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SqlPlanError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)
