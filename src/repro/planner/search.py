"""Beam/local search over the blueprint space.

The enumerated family (:func:`~repro.planner.blueprint
.enumerate_blueprints`) is deliberately bounded: spreads, batch
isolation, full splits — at most 64 structurally interesting
candidates.  With scoring batched
(:meth:`~repro.planner.blueprint.BlueprintScorer.score_many`), a plan
tick can afford to *search*: start from the enumerated family as the
seed frontier, expand deterministic neighborhoods — move one group
replica, resize a group's replica count, swap two groups' homes,
split/merge co-located groups, change one node's scheme, grow/shrink
the fleet — and keep the best ``beam_width`` candidates per round.
The expanded space covers per-group replica counts and heterogeneous
per-node scheme assignments the enumerator never emits.

Determinism contract: neighborhoods are generated in canonical key
order, candidates are ranked by ``(round(score, 9),
blueprint.key())``, and the only randomness — subsampling when a
round's neighborhood exceeds the remaining ``max_candidates`` budget
— draws from a generator seeded by ``derive_from(seed,
"planner/search/<round>")``.  The same seed and rates always visit
the same candidates in the same order.  Because the seed frontier is
scored too, the search winner can never rank worse than the
enumerated best.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import seeding
from ..errors import PlannerError
from .blueprint import (
    BLUEPRINT_SCHEMES,
    BatchScores,
    Blueprint,
    BlueprintScore,
    BlueprintScorer,
)

#: Search strategies the planner accepts: the legacy bounded
#: enumeration and beam/local search seeded by it.
SEARCH_STRATEGIES = ("enum", "beam")


@dataclass(frozen=True)
class SearchConfig:
    """Beam-search knobs (part of the planner's determinism domain)."""

    strategy: str = "enum"
    beam_width: int = 16
    steps: int = 4
    max_candidates: int = 2000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in SEARCH_STRATEGIES:
            raise PlannerError(
                f"search strategy must be one of {SEARCH_STRATEGIES}: "
                f"{self.strategy!r}"
            )
        if self.beam_width < 1:
            raise PlannerError(
                f"beam width must be >= 1: {self.beam_width}"
            )
        if self.steps < 1:
            raise PlannerError(
                f"search steps must be >= 1: {self.steps}"
            )
        if self.max_candidates < 1:
            raise PlannerError(
                "search candidate budget must be >= 1: "
                f"{self.max_candidates}"
            )

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "beam_width": self.beam_width,
            "steps": self.steps,
            "max_candidates": self.max_candidates,
        }


@dataclass
class SearchStats:
    """One search invocation's accounting (report-safe: counts only,
    never wall time — wall time goes to the ``planner.search.*``
    metrics so reports stay byte-identical across machines)."""

    rounds: int = 0
    candidates_scored: int = 0
    frontier_improvements: int = 0
    truncated: int = 0

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "candidates_scored": self.candidates_scored,
            "frontier_improvements": self.frontier_improvements,
            "truncated": self.truncated,
        }


@dataclass(frozen=True)
class ScoredEntry:
    """One evaluated candidate: its ranking scalar plus a handle back
    into the batch it was scored in (full scores materialize lazily)."""

    blueprint: Blueprint
    score: float
    batch: BatchScores
    row: int

    def materialize(self) -> BlueprintScore:
        return self.batch.materialize(self.row)


@dataclass
class SearchResult:
    """Everything one search pass evaluated."""

    entries: dict = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)

    def get(self, blueprint: Blueprint) -> ScoredEntry | None:
        return self.entries.get(blueprint.key())


# -- neighborhoods -----------------------------------------------------
#
# Each generator emits only valid blueprints (every group keeps a
# non-empty home inside the node range; schemes stay in the registry)
# in a deterministic order.  ``neighborhood`` concatenates them,
# drops the origin and duplicates, and returns canonical key order.


def _rebuild(
    nodes: int, placement: dict, schemes: tuple
) -> Blueprint:
    return Blueprint.build(nodes, placement, schemes)


def scheme_moves(blueprint: Blueprint) -> list[Blueprint]:
    """Change one node's CAT scheme (heterogeneous assignments)."""
    moves = []
    placement = blueprint.placement_map()
    for node in range(blueprint.nodes):
        for scheme in sorted(BLUEPRINT_SCHEMES):
            if scheme == blueprint.schemes[node]:
                continue
            schemes = (
                blueprint.schemes[:node]
                + (scheme,)
                + blueprint.schemes[node + 1:]
            )
            moves.append(
                _rebuild(blueprint.nodes, placement, schemes)
            )
    return moves


def move_replica_moves(blueprint: Blueprint) -> list[Blueprint]:
    """Move one of a group's home nodes somewhere else (the
    move-one-tenant neighborhood at replica granularity)."""
    moves = []
    for group, home in blueprint.placement:
        home_set = set(home)
        for source in home:
            for target in range(blueprint.nodes):
                if target in home_set:
                    continue
                placement = blueprint.placement_map()
                placement[group] = tuple(
                    sorted(home_set - {source} | {target})
                )
                moves.append(_rebuild(
                    blueprint.nodes, placement, blueprint.schemes
                ))
    return moves


def resize_replica_moves(blueprint: Blueprint) -> list[Blueprint]:
    """Grow or shrink one group's replica count by one node."""
    moves = []
    for group, home in blueprint.placement:
        home_set = set(home)
        for target in range(blueprint.nodes):
            if target in home_set:
                continue
            placement = blueprint.placement_map()
            placement[group] = tuple(sorted(home_set | {target}))
            moves.append(_rebuild(
                blueprint.nodes, placement, blueprint.schemes
            ))
        if len(home) > 1:
            for source in home:
                placement = blueprint.placement_map()
                placement[group] = tuple(
                    sorted(home_set - {source})
                )
                moves.append(_rebuild(
                    blueprint.nodes, placement, blueprint.schemes
                ))
    return moves


def swap_pair_moves(blueprint: Blueprint) -> list[Blueprint]:
    """Exchange two groups' home sets."""
    moves = []
    groups = blueprint.placement
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            first, first_home = groups[i]
            second, second_home = groups[j]
            if first_home == second_home:
                continue
            placement = blueprint.placement_map()
            placement[first] = second_home
            placement[second] = first_home
            moves.append(_rebuild(
                blueprint.nodes, placement, blueprint.schemes
            ))
    return moves


def split_merge_moves(blueprint: Blueprint) -> list[Blueprint]:
    """Split two co-located groups across their shared home, or merge
    two separated groups onto their combined home."""
    moves = []
    groups = blueprint.placement
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            first, first_home = groups[i]
            second, second_home = groups[j]
            if first_home == second_home:
                if len(first_home) < 2:
                    continue
                half = len(first_home) // 2
                placement = blueprint.placement_map()
                placement[first] = first_home[:half]
                placement[second] = first_home[half:]
                moves.append(_rebuild(
                    blueprint.nodes, placement, blueprint.schemes
                ))
            else:
                merged = tuple(
                    sorted(set(first_home) | set(second_home))
                )
                placement = blueprint.placement_map()
                placement[first] = merged
                placement[second] = merged
                moves.append(_rebuild(
                    blueprint.nodes, placement, blueprint.schemes
                ))
    return moves


def node_count_moves(
    blueprint: Blueprint,
    min_nodes: int,
    max_nodes: int,
) -> list[Blueprint]:
    """Grow or shrink the fleet by one node (autoscaling candidates).

    Growing appends an idle node (later rounds migrate groups onto
    it) and a spread variant where every group adopts it immediately.
    Shrinking drops the last node from every home; a group homed only
    there falls back to a spread over the survivors.
    """
    moves = []
    if blueprint.nodes + 1 <= max_nodes:
        grown = blueprint.nodes + 1
        schemes = blueprint.schemes + ("paper",)
        moves.append(_rebuild(
            grown, blueprint.placement_map(), schemes
        ))
        adopted = {
            group: tuple(home) + (grown - 1,)
            for group, home in blueprint.placement
        }
        moves.append(_rebuild(grown, adopted, schemes))
    if blueprint.nodes - 1 >= max(1, min_nodes):
        shrunk = blueprint.nodes - 1
        dropped = blueprint.nodes - 1
        placement = {}
        for group, home in blueprint.placement:
            survivors = tuple(n for n in home if n != dropped)
            placement[group] = (
                survivors if survivors else tuple(range(shrunk))
            )
        moves.append(_rebuild(
            shrunk, placement, blueprint.schemes[:shrunk]
        ))
    return moves


def neighborhood(
    blueprint: Blueprint,
    min_nodes: int | None = None,
    max_nodes: int | None = None,
) -> tuple[Blueprint, ...]:
    """Every one-move neighbor of ``blueprint``, deduplicated and in
    canonical key order.  ``min_nodes``/``max_nodes`` bound the
    ±node-count moves (both default to the blueprint's own node
    count, i.e. no resizing)."""
    if min_nodes is None:
        min_nodes = blueprint.nodes
    if max_nodes is None:
        max_nodes = blueprint.nodes
    candidates: list[Blueprint] = []
    candidates.extend(scheme_moves(blueprint))
    candidates.extend(move_replica_moves(blueprint))
    candidates.extend(resize_replica_moves(blueprint))
    candidates.extend(swap_pair_moves(blueprint))
    candidates.extend(split_merge_moves(blueprint))
    candidates.extend(
        node_count_moves(blueprint, min_nodes, max_nodes)
    )
    origin = blueprint.key()
    unique: dict[tuple, Blueprint] = {}
    for candidate in candidates:
        key = candidate.key()
        if key != origin:
            unique.setdefault(key, candidate)
    return tuple(
        unique[key] for key in sorted(unique)
    )


# -- the search --------------------------------------------------------


def _rank(entry: ScoredEntry) -> tuple:
    return (round(entry.score, 9), entry.blueprint.key())


def beam_search(
    scorer: BlueprintScorer,
    rates: dict,
    seeds,
    config: SearchConfig,
    min_nodes: int | None = None,
    max_nodes: int | None = None,
    jobs: int | None = None,
) -> SearchResult:
    """Deterministic beam search seeded by ``seeds``.

    Scores the seeds (so the result can never rank worse than the
    best seed), then expands the top ``beam_width`` candidates'
    neighborhoods for up to ``steps`` rounds, stopping early when a
    round produces nothing new or the ``max_candidates`` budget is
    spent.  All scoring goes through the batched pipeline.
    """
    result = SearchResult()
    entries = result.entries
    stats = result.stats

    def evaluate(blueprints: list[Blueprint]) -> None:
        batch = scorer.score_many(blueprints, rates, jobs=jobs)
        for row, blueprint in enumerate(batch.blueprints):
            entries[blueprint.key()] = ScoredEntry(
                blueprint=blueprint,
                score=float(batch.scores[row]),
                batch=batch,
                row=row,
            )
        stats.candidates_scored += len(batch.blueprints)

    unique_seeds: dict[tuple, Blueprint] = {}
    for seed in seeds:
        unique_seeds.setdefault(seed.key(), seed)
    if not unique_seeds:
        raise PlannerError("beam search needs at least one seed")
    evaluate(list(unique_seeds.values()))
    best_rank = min(_rank(e) for e in entries.values())

    for round_index in range(config.steps):
        budget = config.max_candidates - stats.candidates_scored
        if budget <= 0:
            break
        frontier = sorted(entries.values(), key=_rank)
        frontier = frontier[:config.beam_width]
        fresh: list[Blueprint] = []
        pending: set[tuple] = set()
        for entry in frontier:
            for candidate in neighborhood(
                entry.blueprint, min_nodes, max_nodes
            ):
                key = candidate.key()
                if key in entries or key in pending:
                    continue
                pending.add(key)
                fresh.append(candidate)
        if not fresh:
            break
        if len(fresh) > budget:
            # Seeded subsample: keep the round inside the budget
            # without always biasing toward the first frontier
            # member's neighborhood.
            rng = np.random.default_rng(seeding.derive_from(
                config.seed, f"planner/search/{round_index}"
            ))
            chosen = sorted(rng.choice(
                len(fresh), size=budget, replace=False
            ).tolist())
            stats.truncated += len(fresh) - budget
            fresh = [fresh[index] for index in chosen]
        evaluate(fresh)
        stats.rounds += 1
        round_best = min(_rank(e) for e in entries.values())
        if round_best < best_rank:
            best_rank = round_best
            stats.frontier_improvements += 1
    return result
